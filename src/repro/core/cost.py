"""Plan cost models.

Implements the paper's three cost quantities plus the Section 2.4 extension:

- :func:`traversal_cost` — Equation 1: the acquisition cost a plan pays on
  one concrete tuple.
- :func:`dataset_execution` / :func:`empirical_cost` — Equation 4: the
  dataset-approximated expected cost (and, as a byproduct, the plan's
  verdict on every row — used to verify plans never change query answers).
- :func:`expected_cost` — Equation 3: the model-expected cost under any
  :class:`~repro.probability.base.Distribution`, computed by recursing over
  the plan tree while tracking the subproblem ranges each branch implies.
- :func:`cost_decomposition` — the same Equation 3 expectation, broken
  into one :class:`NodeCostContribution` per plan node (keyed by the
  verifier's node paths).  The verifier's cost-conservation rules and the
  observability layer's :func:`repro.obs.drift.predict_plan` both consume
  this single decomposition instead of re-walking Eq. 3 independently.
- :func:`combined_objective` — Section 2.4: ``C(P) + alpha * zeta(P)``,
  folding plan-dissemination cost into the optimization target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    VerdictLeaf,
)
from repro.core.predicates import Predicate
from repro.core.ranges import RangeVector
from repro.exceptions import PlanError
from repro.probability.base import Distribution

__all__ = [
    "traversal_cost",
    "dataset_execution",
    "empirical_cost",
    "expected_cost",
    "cost_decomposition",
    "NodeCostContribution",
    "combined_objective",
    "DatasetExecution",
    "ExecutionObserver",
    "predicate_mask",
]


class ExecutionObserver(Protocol):
    """Receives batched node-visit events from :func:`dataset_execution`.

    Node paths follow the verifier's addressing convention
    (:mod:`repro.verify.paths`): ``root``, ``root/below``, ``root/above``
    and so on, so profile rows join directly against static diagnostics.
    ``acquired`` flags whether the node's attribute was read (and
    charged) for the visiting rows — the acquired-so-far set is fully
    determined by the root-to-node path, so it is uniform across a
    batch.  The observer argument defaults to ``None`` everywhere and
    the walker skips all bookkeeping in that case, keeping the disabled
    path free of overhead; :class:`repro.obs.PlanProfile` is the
    standard implementation.
    """

    def on_condition(
        self,
        path: str,
        node: ConditionNode,
        visits: int,
        below: int,
        acquired: bool,
    ) -> None:
        """A condition node routed ``visits`` rows, ``below`` of them down."""

    def on_sequential(
        self, path: str, node: SequentialNode, visits: int
    ) -> None:
        """A sequential leaf was entered by ``visits`` rows."""

    def on_step(
        self,
        path: str,
        node: SequentialNode,
        step_index: int,
        evaluated: int,
        passed: int,
        acquired: bool,
    ) -> None:
        """One sequential step evaluated ``evaluated`` rows, passing ``passed``."""

    def on_verdict(self, path: str, node: VerdictLeaf, visits: int) -> None:
        """A verdict leaf decided ``visits`` rows."""


def predicate_mask(predicate: Predicate, values: np.ndarray) -> np.ndarray:
    """Vectorized predicate evaluation over an array of attribute values."""
    low = getattr(predicate, "low", None)
    high = getattr(predicate, "high", None)
    if low is not None and high is not None:
        inside = (values >= low) & (values <= high)
        return inside if predicate.satisfied_by(low) else ~inside
    return np.fromiter(
        (predicate.satisfied_by(int(value)) for value in values),
        dtype=bool,
        count=values.size,
    )


def traversal_cost(
    plan: PlanNode,
    values: Sequence[int],
    schema: Schema,
    cost_model: AcquisitionCostModel | None = None,
) -> float:
    """Equation 1: acquisition cost of running ``plan`` on one tuple.

    ``cost_model`` generalizes the flat per-attribute costs to the
    Section 7 conditional-cost setting; acquisitions fire in traversal
    order, so the model sees the correct acquired-so-far set.
    """
    costs = schema.costs
    total = 0.0
    acquired: set[int] = set()

    def on_acquire(index: int) -> None:
        nonlocal total
        if cost_model is None:
            total += costs[index]
        else:
            total += cost_model.cost(index, acquired)
        acquired.add(index)

    plan.evaluate(values, on_acquire=on_acquire)
    return total


@dataclass(frozen=True)
class DatasetExecution:
    """Per-row outcome of running a plan over a dataset."""

    costs: np.ndarray
    verdicts: np.ndarray

    @property
    def mean_cost(self) -> float:
        """Equation 4: the empirical expected plan cost."""
        if self.costs.size == 0:
            return 0.0
        return float(self.costs.mean())

    @property
    def total_cost(self) -> float:
        return float(self.costs.sum())

    @property
    def pass_fraction(self) -> float:
        return float(self.verdicts.mean())


def dataset_execution(
    plan: PlanNode,
    data: np.ndarray,
    schema: Schema,
    cost_model: AcquisitionCostModel | None = None,
    observer: ExecutionObserver | None = None,
) -> DatasetExecution:
    """Run a plan over every row of ``data`` with vectorized tree routing.

    Rows are pushed down the plan tree in batches: a condition node charges
    its attribute cost to every routed row that has not acquired the
    attribute on its path, then partitions the batch by the split test; a
    sequential node walks its predicate order with a shrinking "alive" set.
    The result carries per-row costs (Equation 1 applied to every tuple) and
    per-row verdicts.

    ``observer`` (when given) receives one event per visited node batch —
    see :class:`ExecutionObserver`; node batches with zero routed rows are
    skipped entirely and produce no events.
    """
    matrix = np.asarray(data)
    if matrix.ndim != 2 or matrix.shape[1] != len(schema):
        raise PlanError(
            f"data shape {matrix.shape} incompatible with schema of "
            f"{len(schema)} attributes"
        )
    attribute_costs = schema.costs
    row_costs = np.zeros(matrix.shape[0], dtype=np.float64)
    verdicts = np.zeros(matrix.shape[0], dtype=bool)

    def charge(index: int, acquired: frozenset[int] | set[int]) -> float:
        if cost_model is None:
            return attribute_costs[index]
        return cost_model.cost(index, acquired)

    def walk(
        node: PlanNode, rows: np.ndarray, acquired: frozenset[int], path: str
    ) -> None:
        if rows.size == 0:
            return
        if isinstance(node, VerdictLeaf):
            verdicts[rows] = node.verdict
            if observer is not None:
                observer.on_verdict(path, node, int(rows.size))
            return
        if isinstance(node, ConditionNode):
            index = node.attribute_index
            charged = index not in acquired
            if charged:
                row_costs[rows] += charge(index, acquired)
                acquired = acquired | {index}
            column = matrix[rows, index]
            below = column < node.split_value
            below_rows = rows[below]
            if observer is not None:
                observer.on_condition(
                    path, node, int(rows.size), int(below_rows.size), charged
                )
            walk(node.below, below_rows, acquired, path + "/below")
            walk(node.above, rows[~below], acquired, path + "/above")
            return
        if isinstance(node, SequentialNode):
            if observer is not None:
                observer.on_sequential(path, node, int(rows.size))
            alive = rows
            mutable_acquired = set(acquired)
            for position, step in enumerate(node.steps):
                if alive.size == 0:
                    break
                index = step.attribute_index
                charged = index not in mutable_acquired
                if charged:
                    row_costs[alive] += charge(index, mutable_acquired)
                    mutable_acquired.add(index)
                satisfied = predicate_mask(step.predicate, matrix[alive, index])
                surviving = alive[satisfied]
                if observer is not None:
                    observer.on_step(
                        path,
                        node,
                        position,
                        int(alive.size),
                        int(surviving.size),
                        charged,
                    )
                verdicts[alive[~satisfied]] = False
                alive = surviving
            verdicts[alive] = True
            return
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    walk(plan, np.arange(matrix.shape[0]), frozenset(), "root")
    return DatasetExecution(costs=row_costs, verdicts=verdicts)


def empirical_cost(
    plan: PlanNode,
    data: np.ndarray,
    schema: Schema,
    cost_model: AcquisitionCostModel | None = None,
) -> float:
    """Equation 4: mean traversal cost of ``plan`` over a dataset."""
    return dataset_execution(plan, data, schema, cost_model).mean_cost


def expected_cost(
    plan: PlanNode,
    distribution: Distribution,
    ranges: RangeVector | None = None,
    cost_model: AcquisitionCostModel | None = None,
) -> float:
    """Equation 3: model-expected cost of a plan.

    ``ranges`` carries the subproblem context reached so far (defaults to
    the full attribute space); condition nodes recurse with split ranges and
    branch probabilities from ``distribution``, and sequential leaves charge
    each step weighted by the probability that every earlier predicate in
    the order held.
    """
    schema = distribution.schema
    if ranges is None:
        ranges = RangeVector.full(schema)
    return _expected_cost(plan, distribution, ranges, schema, cost_model)


def _expected_cost(
    plan: PlanNode,
    distribution: Distribution,
    ranges: RangeVector,
    schema: Schema,
    cost_model: AcquisitionCostModel | None = None,
) -> float:
    if isinstance(plan, VerdictLeaf):
        return 0.0
    if isinstance(plan, ConditionNode):
        index = plan.attribute_index
        if ranges.is_acquired(index):
            acquisition = 0.0
        elif cost_model is None:
            acquisition = schema[index].cost
        else:
            acquisition = cost_model.cost(index, ranges.acquired_indices())
        interval = ranges[index]
        if not interval.low < plan.split_value <= interval.high:
            raise PlanError(
                f"plan splits {plan.attribute!r} at {plan.split_value} outside "
                f"the reachable range [{interval.low}, {interval.high}]"
            )
        probability_below = distribution.split_probability(
            index, plan.split_value, ranges
        )
        below_ranges, above_ranges = ranges.split(index, plan.split_value)
        total = acquisition
        if probability_below > 0.0:
            total += probability_below * _expected_cost(
                plan.below, distribution, below_ranges, schema, cost_model
            )
        if probability_below < 1.0:
            total += (1.0 - probability_below) * _expected_cost(
                plan.above, distribution, above_ranges, schema, cost_model
            )
        return total
    if isinstance(plan, SequentialNode):
        total = 0.0
        survival = 1.0
        conditioner = distribution.sequential_conditioner(ranges)
        acquired = set(ranges.acquired_indices())
        for step in plan.steps:
            if survival <= 0.0:
                break
            index = step.attribute_index
            if index not in acquired:
                if cost_model is None:
                    total += survival * schema[index].cost
                else:
                    total += survival * cost_model.cost(index, acquired)
                acquired.add(index)
            binding = (step.predicate, step.attribute_index)
            survival *= conditioner.pass_probability(binding)
            conditioner.condition_on(binding)
        return total
    raise PlanError(f"unknown plan node type {type(plan).__name__}")


@dataclass(frozen=True)
class NodeCostContribution:
    """One node's share of the Equation 3 expected-cost decomposition.

    ``reach`` is the probability a tuple entering the root reaches this
    node; ``cost`` is the node's reach-weighted contribution to the plan
    total, so summing ``cost`` over all records reproduces
    :func:`expected_cost`.  ``acquisition`` is the per-visit charge at a
    condition node (zero when the context already acquired the
    attribute).  ``probability_below`` is the raw model value for live
    condition nodes — it may fall outside ``[0, 1]`` when the model is
    inconsistent, which is exactly what the verifier's COST002 rule
    checks.  ``feasible`` is False when the node is structurally broken
    (attribute index out of range, split outside the reachable interval,
    unknown node type); ``detail`` then carries the reason.  ``is_leaf``
    marks records where the walk stopped: verdict/sequential leaves and
    broken nodes — their ``reach`` values partition the root context.
    Records inside zero-reach subtrees carry zero reach/cost and no
    probabilities; their range context is not tracked.
    """

    path: str
    kind: str  # "condition" | "sequential" | "verdict" | "unknown"
    reach: float
    acquisition: float
    cost: float
    probability_below: float | None = None
    step_passes: tuple[float, ...] = ()
    step_costs: tuple[float, ...] = ()
    feasible: bool = True
    is_leaf: bool = True
    detail: str = ""


def cost_decomposition(
    plan: PlanNode,
    distribution: Distribution,
    ranges: RangeVector | None = None,
    cost_model: AcquisitionCostModel | None = None,
) -> dict[str, NodeCostContribution]:
    """Per-node Equation 3 decomposition of ``plan`` under ``distribution``.

    Returns one record per plan node, keyed by the verifier's node-path
    convention (``root``, ``root/below``, ...), in pre-order.  The
    decomposition is exact: live-node ``cost`` values sum to the Eq. 3
    expectation, and leaf ``reach`` values sum to 1 for any plan whose
    splits partition the context.  Unlike :func:`expected_cost` this
    never raises on a broken plan — infeasible splits and out-of-range
    indices yield ``feasible=False`` records so verifier rules can turn
    them into diagnostics.
    """
    schema = distribution.schema
    context = ranges if ranges is not None else RangeVector.full(schema)
    records: dict[str, NodeCostContribution] = {}

    def dead(node: PlanNode, path: str) -> None:
        # Zero-reach subtree: record every node with zero contributions.
        if isinstance(node, ConditionNode):
            records[path] = NodeCostContribution(
                path=path, kind="condition", reach=0.0, acquisition=0.0,
                cost=0.0, is_leaf=False,
            )
            dead(node.below, path + "/below")
            dead(node.above, path + "/above")
        elif isinstance(node, SequentialNode):
            records[path] = NodeCostContribution(
                path=path, kind="sequential", reach=0.0, acquisition=0.0,
                cost=0.0, step_costs=tuple(0.0 for _ in node.steps),
            )
        else:
            kind = "verdict" if isinstance(node, VerdictLeaf) else "unknown"
            records[path] = NodeCostContribution(
                path=path, kind=kind, reach=0.0, acquisition=0.0, cost=0.0
            )

    def walk(
        node: PlanNode, node_ranges: RangeVector, reach: float, path: str
    ) -> None:
        if reach <= 0.0:
            dead(node, path)
            return
        if isinstance(node, VerdictLeaf):
            records[path] = NodeCostContribution(
                path=path, kind="verdict", reach=reach, acquisition=0.0, cost=0.0
            )
            return
        if isinstance(node, SequentialNode):
            records[path] = _sequential_contribution(
                node, node_ranges, reach, path, schema, distribution, cost_model
            )
            return
        if isinstance(node, ConditionNode):
            index = node.attribute_index
            if not 0 <= index < len(schema):
                records[path] = NodeCostContribution(
                    path=path, kind="condition", reach=reach, acquisition=0.0,
                    cost=0.0, feasible=False,
                    detail=f"condition node attribute index {index} out of "
                    f"range for a schema of {len(schema)} attributes",
                )
                return
            interval = node_ranges[index]
            if not interval.low < node.split_value <= interval.high:
                records[path] = NodeCostContribution(
                    path=path, kind="condition", reach=reach, acquisition=0.0,
                    cost=0.0, feasible=False,
                    detail=f"plan splits {node.attribute!r} at "
                    f"{node.split_value} outside the reachable range "
                    f"[{interval.low}, {interval.high}]",
                )
                return
            if node_ranges.is_acquired(index):
                acquisition = 0.0
            elif cost_model is None:
                acquisition = schema[index].cost
            else:
                acquisition = cost_model.cost(index, node_ranges.acquired_indices())
            probability = distribution.split_probability(
                index, node.split_value, node_ranges
            )
            records[path] = NodeCostContribution(
                path=path, kind="condition", reach=reach,
                acquisition=acquisition, cost=reach * acquisition,
                probability_below=probability, is_leaf=False,
            )
            below_ranges, above_ranges = node_ranges.split(index, node.split_value)
            walk(node.below, below_ranges, reach * probability, path + "/below")
            walk(
                node.above, above_ranges, reach * (1.0 - probability),
                path + "/above",
            )
            return
        records[path] = NodeCostContribution(
            path=path, kind="unknown", reach=reach, acquisition=0.0, cost=0.0,
            feasible=False,
            detail=f"unknown plan node type {type(node).__name__}",
        )

    walk(plan, context, 1.0, "root")
    return records


def _sequential_contribution(
    node: SequentialNode,
    ranges: RangeVector,
    reach: float,
    path: str,
    schema: Schema,
    distribution: Distribution,
    cost_model: AcquisitionCostModel | None,
) -> NodeCostContribution:
    """Live sequential leaf: per-step pass probabilities and costs."""
    conditioner = distribution.sequential_conditioner(ranges)
    acquired = set(ranges.acquired_indices())
    survival = 1.0
    passes: list[float] = []
    costs: list[float] = []
    feasible = True
    detail = ""
    for step in node.steps:
        index = step.attribute_index
        if not 0 <= index < len(schema):
            feasible = False
            detail = (
                f"sequential step attribute index {index} out of range "
                f"for a schema of {len(schema)} attributes"
            )
            costs.extend(0.0 for _ in range(len(node.steps) - len(costs)))
            break
        if survival > 0.0 and index not in acquired:
            if cost_model is None:
                costs.append(reach * survival * schema[index].cost)
            else:
                costs.append(reach * survival * cost_model.cost(index, acquired))
        else:
            costs.append(0.0)
        acquired.add(index)
        if survival > 0.0:
            binding = (step.predicate, step.attribute_index)
            passed = conditioner.pass_probability(binding)
            conditioner.condition_on(binding)
        else:
            passed = 0.0
        passes.append(passed)
        survival *= passed
    return NodeCostContribution(
        path=path, kind="sequential", reach=reach, acquisition=0.0,
        cost=sum(costs), step_passes=tuple(passes), step_costs=tuple(costs),
        feasible=feasible, detail=detail,
    )


def combined_objective(
    plan: PlanNode, distribution: Distribution, alpha: float
) -> float:
    """Section 2.4: expected execution cost plus dissemination cost.

    ``alpha`` is (cost to transmit a byte) / (number of tuples processed in
    the query's lifetime) — it amortizes sending ``zeta(P)`` bytes of plan
    into the network over the query's life.
    """
    if alpha < 0:
        raise PlanError(f"alpha must be >= 0, got {alpha}")
    return expected_cost(plan, distribution) + alpha * plan.size_bytes()
