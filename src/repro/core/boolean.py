"""General boolean queries: beyond conjunctions.

The paper's optimization problem is an instance of the minimum-cost
resolution strategy problem over an arbitrary boolean formula ``phi``
(Section 3.1), but its algorithms and evaluation focus on conjunctions of
unary predicates — noting that "if we were to include disjunctions the
complexity will usually not decrease" and deferring sequential planning
for arbitrary queries to the full version.

The *exhaustive* planner, however, only needs two things from a query:
three-valued truth under range knowledge, and the set of still-undecided
predicates.  This module provides AND/OR formula trees with exactly that
interface, so :class:`~repro.planning.ExhaustivePlanner` optimizes
arbitrary monotone boolean combinations (negation lives at the leaves via
:class:`~repro.core.predicates.NotRangePredicate`) without modification.

    formula = Or(
        And(Leaf(RangePredicate("temp", 9, 12)), Leaf(RangePredicate("light", 9, 12))),
        Leaf(NotRangePredicate("humidity", 1, 8)),
    )
    query = BooleanQuery(schema, formula)
    plan = ExhaustivePlanner(distribution).plan(query).plan
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.attributes import Schema
from repro.core.predicates import Predicate, Truth
from repro.core.ranges import RangeVector
from repro.exceptions import QueryError

__all__ = ["Formula", "Leaf", "And", "Or", "BooleanQuery"]


class Formula(ABC):
    """A monotone boolean combination of unary predicates."""

    @abstractmethod
    def evaluate(self, values: Sequence[int], schema: Schema) -> bool:
        """Ground-truth evaluation on a complete tuple."""

    @abstractmethod
    def truth_under(self, ranges: RangeVector, schema: Schema) -> Truth:
        """Three-valued truth given per-attribute range knowledge."""

    @abstractmethod
    def leaves(self) -> Iterator["Leaf"]:
        """All predicate leaves, left to right."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering."""


@dataclass(frozen=True)
class Leaf(Formula):
    """A single predicate."""

    predicate: Predicate

    def evaluate(self, values: Sequence[int], schema: Schema) -> bool:
        index = schema.index_of(self.predicate.attribute)
        return self.predicate.satisfied_by(values[index])

    def truth_under(self, ranges: RangeVector, schema: Schema) -> Truth:
        index = schema.index_of(self.predicate.attribute)
        return self.predicate.truth_under(ranges[index])

    def leaves(self) -> Iterator["Leaf"]:
        yield self

    def describe(self) -> str:
        return self.predicate.describe()


@dataclass(frozen=True)
class And(Formula):
    """Conjunction: FALSE dominates, TRUE requires all TRUE."""

    children: tuple[Formula, ...]

    def __init__(self, *children: Formula) -> None:
        if len(children) < 2:
            raise QueryError("And requires at least two children")
        object.__setattr__(self, "children", tuple(children))

    def evaluate(self, values: Sequence[int], schema: Schema) -> bool:
        return all(child.evaluate(values, schema) for child in self.children)

    def truth_under(self, ranges: RangeVector, schema: Schema) -> Truth:
        all_true = True
        for child in self.children:
            truth = child.truth_under(ranges, schema)
            if truth is Truth.FALSE:
                return Truth.FALSE
            if truth is not Truth.TRUE:
                all_true = False
        return Truth.TRUE if all_true else Truth.UNDETERMINED

    def leaves(self) -> Iterator[Leaf]:
        for child in self.children:
            yield from child.leaves()

    def describe(self) -> str:
        return "(" + " AND ".join(child.describe() for child in self.children) + ")"


@dataclass(frozen=True)
class Or(Formula):
    """Disjunction: TRUE dominates, FALSE requires all FALSE."""

    children: tuple[Formula, ...]

    def __init__(self, *children: Formula) -> None:
        if len(children) < 2:
            raise QueryError("Or requires at least two children")
        object.__setattr__(self, "children", tuple(children))

    def evaluate(self, values: Sequence[int], schema: Schema) -> bool:
        return any(child.evaluate(values, schema) for child in self.children)

    def truth_under(self, ranges: RangeVector, schema: Schema) -> Truth:
        all_false = True
        for child in self.children:
            truth = child.truth_under(ranges, schema)
            if truth is Truth.TRUE:
                return Truth.TRUE
            if truth is not Truth.FALSE:
                all_false = False
        return Truth.FALSE if all_false else Truth.UNDETERMINED

    def leaves(self) -> Iterator[Leaf]:
        for child in self.children:
            yield from child.leaves()

    def describe(self) -> str:
        return "(" + " OR ".join(child.describe() for child in self.children) + ")"


@dataclass(frozen=True)
class BooleanQuery:
    """A query over an arbitrary monotone formula.

    Exposes the same interface the exhaustive planner consumes from
    :class:`~repro.core.query.ConjunctiveQuery` (``truth_under``,
    ``undetermined_predicates``, ``evaluate``), so conditional plans for
    disjunctive queries come for free.  Sequential planners do not apply —
    the paper defers them to its full version — and the heuristic planner
    requires one, so use :class:`~repro.planning.ExhaustivePlanner`.
    """

    schema: Schema
    formula: Formula
    _indices: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        indices = {}
        for leaf in self.formula.leaves():
            indices[id(leaf)] = self.schema.index_of(leaf.predicate.attribute)
        if not indices:
            raise QueryError("formula contains no predicates")
        object.__setattr__(self, "_indices", indices)

    def evaluate(self, values: Sequence[int]) -> bool:
        return self.formula.evaluate(values, self.schema)

    def truth_under(self, ranges: RangeVector) -> Truth:
        return self.formula.truth_under(ranges, self.schema)

    def undetermined_predicates(
        self, ranges: RangeVector
    ) -> list[tuple[Predicate, int]]:
        """Predicate leaves still undecided under the range knowledge.

        Unlike the conjunctive case, the same attribute may appear in
        several leaves; duplicates are collapsed (deciding the attribute's
        value decides every leaf over it).
        """
        seen: set[int] = set()
        remaining = []
        for leaf in self.formula.leaves():
            index = self.schema.index_of(leaf.predicate.attribute)
            if index in seen:
                continue
            if leaf.predicate.truth_under(ranges[index]) is Truth.UNDETERMINED:
                seen.add(index)
                remaining.append((leaf.predicate, index))
        return remaining

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        """All leaf predicates (duplicates possible across Or branches)."""
        return tuple(leaf.predicate for leaf in self.formula.leaves())

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        """Schema index of each leaf predicate, parallel to ``predicates``."""
        return tuple(
            self.schema.index_of(leaf.predicate.attribute)
            for leaf in self.formula.leaves()
        )

    def describe(self) -> str:
        return self.formula.describe()
