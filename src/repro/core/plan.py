"""Conditional plan trees.

A *conditional plan* (Section 2.1) is a binary decision tree whose interior
nodes are conditioning predicates ``T(X_i >= x)`` and whose leaves either
declare the query verdict outright or run a short *sequential plan* — a fixed
predicate order — to finish the job.  Three node types cover every plan the
paper's algorithms produce:

- :class:`ConditionNode` — a binary split from ExhaustivePlan (Figure 5) or
  GreedyPlan (Figure 7);
- :class:`SequentialNode` — an ordered list of query predicates, the building
  block contributed by Naive / OptSeq / GreedySeq (Section 4.1);
- :class:`VerdictLeaf` — a branch whose outcome is already decided.

Plans also know their size :math:`\\zeta(P)` in nodes and in serialized bytes
(Section 2.4's dissemination-cost model), can round-trip through plain dicts
for storage, and render themselves in the style of the paper's Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.core.predicates import NotRangePredicate, Predicate, RangePredicate
from repro.exceptions import PlanError

__all__ = [
    "PlanNode",
    "VerdictLeaf",
    "SequentialStep",
    "SequentialNode",
    "ConditionNode",
    "plan_from_dict",
]

# Byte-size model for the compact on-mote plan encoding used by zeta(P):
# a condition node stores an attribute id (1 byte), a split value (2 bytes)
# and two child offsets (2 bytes each); a sequential step stores an attribute
# id, a low and a high bound and a negation flag; a verdict leaf is a tag
# byte.  The constants only matter relative to each other — the alpha scaling
# factor of Section 2.4 absorbs units.
_CONDITION_NODE_BYTES = 7
_SEQUENTIAL_STEP_BYTES = 6
_VERDICT_LEAF_BYTES = 1
_SEQUENTIAL_HEADER_BYTES = 2


class PlanNode:
    """Base class for plan-tree nodes."""

    __slots__ = ()

    def size_nodes(self) -> int:
        """Number of nodes in the subtree rooted here."""
        return sum(1 for _node in self.iter_nodes())

    def size_bytes(self) -> int:
        """Serialized size of the subtree under the byte model above."""
        raise NotImplementedError

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (a leaf has depth 0)."""
        raise NotImplementedError

    def condition_count(self) -> int:
        """Number of :class:`ConditionNode` splits in the subtree."""
        return sum(
            1 for node in self.iter_nodes() if isinstance(node, ConditionNode)
        )

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree."""
        raise NotImplementedError

    def evaluate(
        self, values: Sequence[int], on_acquire: Callable[[int], None] | None = None
    ) -> bool:
        """Run the plan on a concrete tuple and return the query verdict.

        ``on_acquire`` is invoked with the schema index of every attribute
        the traversal *reads* (the executor uses it for cost accounting and
        first-read caching; passing the same index twice is the caller's
        signal that an attribute was re-used, so the callback is only fired
        on first read within this call).
        """
        acquired: set[int] = set()

        def read(index: int) -> int:
            if index not in acquired:
                acquired.add(index)
                if on_acquire is not None:
                    on_acquire(index)
            return values[index]

        return self._evaluate(read)

    def _evaluate(self, read: Callable[[int], int]) -> bool:
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation for storage / transmission."""
        raise NotImplementedError

    def pretty(self, indent: str = "") -> str:
        """Figure 9-style text rendering of the subtree."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.pretty()


@dataclass(frozen=True, slots=True)
class VerdictLeaf(PlanNode):
    """A leaf whose branch already determines the query outcome."""

    verdict: bool

    def size_bytes(self) -> int:
        return _VERDICT_LEAF_BYTES

    def depth(self) -> int:
        return 0

    def iter_nodes(self) -> Iterator[PlanNode]:
        yield self

    def _evaluate(self, read: Callable[[int], int]) -> bool:
        return self.verdict

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "verdict", "verdict": self.verdict}

    def pretty(self, indent: str = "") -> str:
        return f"{indent}=> {'T' if self.verdict else 'F'}"


@dataclass(frozen=True, slots=True)
class SequentialStep:
    """One predicate evaluation inside a sequential plan."""

    predicate: Predicate
    attribute_index: int

    def to_dict(self) -> dict[str, Any]:
        predicate = self.predicate
        kind = "not_range" if isinstance(predicate, NotRangePredicate) else "range"
        return {
            "kind": kind,
            "attribute": predicate.attribute,
            "attribute_index": self.attribute_index,
            "low": predicate.low,  # type: ignore[attr-defined]
            "high": predicate.high,  # type: ignore[attr-defined]
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SequentialStep":
        predicate_cls = (
            NotRangePredicate if payload["kind"] == "not_range" else RangePredicate
        )
        predicate = predicate_cls(
            attribute=payload["attribute"],
            low=payload["low"],
            high=payload["high"],
        )
        return cls(predicate=predicate, attribute_index=payload["attribute_index"])


@dataclass(frozen=True, slots=True)
class SequentialNode(PlanNode):
    """Evaluate predicates in a fixed order; fail fast, pass when exhausted.

    The node implements conjunctive semantics: the first failing predicate
    yields ``False``; a tuple surviving every step yields ``True``.  An empty
    step list means every remaining predicate was already proven true, so
    the node behaves as a TRUE leaf.
    """

    steps: tuple[SequentialStep, ...]

    def size_bytes(self) -> int:
        return _SEQUENTIAL_HEADER_BYTES + _SEQUENTIAL_STEP_BYTES * len(self.steps)

    def depth(self) -> int:
        return 0

    def iter_nodes(self) -> Iterator[PlanNode]:
        yield self

    def _evaluate(self, read: Callable[[int], int]) -> bool:
        return all(
            step.predicate.satisfied_by(read(step.attribute_index))
            for step in self.steps
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "sequential",
            "steps": [step.to_dict() for step in self.steps],
        }

    def pretty(self, indent: str = "") -> str:
        if not self.steps:
            return f"{indent}=> T"
        chain = " -> ".join(step.predicate.describe() for step in self.steps)
        return f"{indent}seq: {chain}"


@dataclass(frozen=True, slots=True)
class ConditionNode(PlanNode):
    """A conditioning-predicate split ``T(X >= split_value)``.

    ``below`` is taken when the observed value is ``< split_value`` and
    ``above`` when it is ``>= split_value``.  Reading the attribute at this
    node costs :math:`C_i` unless an ancestor already acquired it
    (Section 2.2) — the executor's read cache implements that rule.
    """

    attribute: str
    attribute_index: int
    split_value: int
    below: PlanNode
    above: PlanNode

    def __post_init__(self) -> None:
        if self.split_value < 2:
            raise PlanError(
                f"split value must be >= 2 (got {self.split_value}); "
                "splitting at the domain minimum produces an empty branch"
            )

    def size_bytes(self) -> int:
        return (
            _CONDITION_NODE_BYTES + self.below.size_bytes() + self.above.size_bytes()
        )

    def depth(self) -> int:
        return 1 + max(self.below.depth(), self.above.depth())

    def iter_nodes(self) -> Iterator[PlanNode]:
        yield self
        yield from self.below.iter_nodes()
        yield from self.above.iter_nodes()

    def _evaluate(self, read: Callable[[int], int]) -> bool:
        branch = self.above if read(self.attribute_index) >= self.split_value else self.below
        return branch._evaluate(read)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "condition",
            "attribute": self.attribute,
            "attribute_index": self.attribute_index,
            "split_value": self.split_value,
            "below": self.below.to_dict(),
            "above": self.above.to_dict(),
        }

    def pretty(self, indent: str = "") -> str:
        child_indent = indent + "    "
        lines = [
            f"{indent}if {self.attribute} < {self.split_value}:",
            self.below.pretty(child_indent),
            f"{indent}else ({self.attribute} >= {self.split_value}):",
            self.above.pretty(child_indent),
        ]
        return "\n".join(lines)


def simplify_plan(plan: PlanNode) -> PlanNode:
    """Structurally simplify a plan without changing its behaviour.

    Deprecated shim: this is now the schema-free mode of
    :func:`repro.analysis.rewrite.optimize_plan`, kept for callers that
    have no schema at hand.  It collapses condition nodes whose branches
    are identical subtrees (the exhaustive DP produces such free-split
    ties) and rewrites empty sequential nodes as TRUE leaves.  Pass a
    schema (and query) to ``optimize_plan`` for the full dataflow
    rewrites — dead-branch elimination and predicate subsumption.
    """
    from repro.analysis.rewrite import optimize_plan  # avoid core->analysis cycle

    return optimize_plan(plan)


def plan_from_dict(payload: dict[str, Any]) -> PlanNode:
    """Reconstruct a plan tree from :meth:`PlanNode.to_dict` output."""
    kind = payload.get("kind")
    if kind == "verdict":
        return VerdictLeaf(verdict=bool(payload["verdict"]))
    if kind == "sequential":
        steps = tuple(SequentialStep.from_dict(step) for step in payload["steps"])
        return SequentialNode(steps=steps)
    if kind == "condition":
        return ConditionNode(
            attribute=payload["attribute"],
            attribute_index=payload["attribute_index"],
            split_value=payload["split_value"],
            below=plan_from_dict(payload["below"]),
            above=plan_from_dict(payload["above"]),
        )
    raise PlanError(f"unknown plan node kind {kind!r}")
