"""Plan analysis and reporting.

Everything a practitioner needs to *understand* a generated conditional
plan, in the spirit of the paper's Section 6.1.1 detailed plan study:

- :func:`plan_summary` — structural statistics (splits, depth, bytes,
  attributes conditioned on, distinct leaf orders);
- :func:`annotate_plan` — Figure 3-style rendering with branch
  probabilities and reach probabilities from a probability model;
- :func:`attribute_acquisition_rates` — how often each attribute is
  actually acquired when the plan runs over a dataset (the quantity that
  maps directly to per-sensor energy);
- :func:`plan_to_dot` — Graphviz export for papers and debugging;
- :func:`compare_plans` — side-by-side cost/size/behaviour diff of two
  plans over the same dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import Schema
from repro.core.cost import dataset_execution
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    VerdictLeaf,
)
from repro.core.ranges import RangeVector
from repro.exceptions import PlanError
from repro.probability.base import Distribution

__all__ = [
    "PlanSummary",
    "plan_summary",
    "annotate_plan",
    "attribute_acquisition_rates",
    "plan_to_dot",
    "PlanComparison",
    "compare_plans",
    "validate_plan",
]


@dataclass(frozen=True)
class PlanSummary:
    """Structural statistics of one plan tree."""

    nodes: int
    condition_nodes: int
    sequential_leaves: int
    verdict_leaves: int
    depth: int
    size_bytes: int
    conditioning_attributes: tuple[str, ...]
    distinct_leaf_orders: int

    def describe(self) -> str:
        attributes = ", ".join(self.conditioning_attributes) or "(none)"
        return (
            f"{self.nodes} nodes ({self.condition_nodes} splits, "
            f"{self.sequential_leaves} sequential leaves, "
            f"{self.verdict_leaves} verdict leaves), depth {self.depth}, "
            f"{self.size_bytes} bytes; conditions on: {attributes}; "
            f"{self.distinct_leaf_orders} distinct predicate orders"
        )


def plan_summary(plan: PlanNode) -> PlanSummary:
    """Collect structural statistics for a plan."""
    condition_nodes = 0
    sequential_leaves = 0
    verdict_leaves = 0
    conditioning: list[str] = []
    orders: set[tuple[str, ...]] = set()
    for node in plan.iter_nodes():
        if isinstance(node, ConditionNode):
            condition_nodes += 1
            if node.attribute not in conditioning:
                conditioning.append(node.attribute)
        elif isinstance(node, SequentialNode):
            sequential_leaves += 1
            if node.steps:
                orders.add(tuple(step.predicate.attribute for step in node.steps))
        elif isinstance(node, VerdictLeaf):
            verdict_leaves += 1
        else:
            raise PlanError(f"unknown plan node type {type(node).__name__}")
    return PlanSummary(
        nodes=plan.size_nodes(),
        condition_nodes=condition_nodes,
        sequential_leaves=sequential_leaves,
        verdict_leaves=verdict_leaves,
        depth=plan.depth(),
        size_bytes=plan.size_bytes(),
        conditioning_attributes=tuple(conditioning),
        distinct_leaf_orders=len(orders),
    )


def annotate_plan(
    plan: PlanNode, distribution: Distribution, indent: str = ""
) -> str:
    """Pretty-print a plan with branch and reach probabilities.

    Probabilities come from ``distribution`` conditioned on the ranges each
    branch implies — the numbers that appear on the edges of the paper's
    Figure 3.
    """
    lines: list[str] = []
    _annotate(
        plan,
        distribution,
        RangeVector.full(distribution.schema),
        reach=1.0,
        indent=indent,
        lines=lines,
    )
    return "\n".join(lines)


def _annotate(
    node: PlanNode,
    distribution: Distribution,
    ranges: RangeVector,
    reach: float,
    indent: str,
    lines: list[str],
) -> None:
    if isinstance(node, ConditionNode):
        probability_below = distribution.split_probability(
            node.attribute_index, node.split_value, ranges
        )
        below_ranges, above_ranges = ranges.split(
            node.attribute_index, node.split_value
        )
        lines.append(
            f"{indent}if {node.attribute} < {node.split_value}:  "
            f"[p={probability_below:.3f}, reach={reach:.3f}]"
        )
        _annotate(
            node.below,
            distribution,
            below_ranges,
            reach * probability_below,
            indent + "    ",
            lines,
        )
        lines.append(
            f"{indent}else ({node.attribute} >= {node.split_value}):  "
            f"[p={1 - probability_below:.3f}]"
        )
        _annotate(
            node.above,
            distribution,
            above_ranges,
            reach * (1.0 - probability_below),
            indent + "    ",
            lines,
        )
        return
    if isinstance(node, SequentialNode):
        if not node.steps:
            lines.append(f"{indent}=> T  [reach={reach:.3f}]")
            return
        survival = 1.0
        conditioner = distribution.sequential_conditioner(ranges)
        parts = []
        for step in node.steps:
            binding = (step.predicate, step.attribute_index)
            passed = conditioner.pass_probability(binding)
            parts.append(f"{step.predicate.describe()} [pass={passed:.2f}]")
            conditioner.condition_on(binding)
            survival *= passed
        lines.append(
            f"{indent}seq: "
            + " -> ".join(parts)
            + f"  [reach={reach:.3f}, all-pass={survival:.3f}]"
        )
        return
    if isinstance(node, VerdictLeaf):
        lines.append(
            f"{indent}=> {'T' if node.verdict else 'F'}  [reach={reach:.3f}]"
        )
        return
    raise PlanError(f"unknown plan node type {type(node).__name__}")


def attribute_acquisition_rates(
    plan: PlanNode, data: np.ndarray, schema: Schema
) -> dict[str, float]:
    """Fraction of tuples for which the plan acquires each attribute.

    The per-attribute analogue of Equation 4: multiplying each rate by the
    attribute's cost and summing recovers the plan's empirical cost.
    """
    matrix = np.asarray(data)
    counts = {name: 0 for name in schema.names}

    def walk(node: PlanNode, rows: np.ndarray, acquired: frozenset[int]) -> None:
        if rows.size == 0 or isinstance(node, VerdictLeaf):
            return
        if isinstance(node, ConditionNode):
            index = node.attribute_index
            if index not in acquired:
                counts[schema[index].name] += int(rows.size)
                acquired = acquired | {index}
            column = matrix[rows, index]
            below = column < node.split_value
            walk(node.below, rows[below], acquired)
            walk(node.above, rows[~below], acquired)
            return
        if isinstance(node, SequentialNode):
            from repro.core.cost import predicate_mask

            alive = rows
            local = set(acquired)
            for step in node.steps:
                if alive.size == 0:
                    break
                if step.attribute_index not in local:
                    counts[schema[step.attribute_index].name] += int(alive.size)
                    local.add(step.attribute_index)
                satisfied = predicate_mask(
                    step.predicate, matrix[alive, step.attribute_index]
                )
                alive = alive[satisfied]
            return
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    walk(plan, np.arange(matrix.shape[0]), frozenset())
    total = max(matrix.shape[0], 1)
    return {name: count / total for name, count in counts.items()}


def plan_to_dot(plan: PlanNode, name: str = "plan") -> str:
    """Graphviz DOT rendering of a plan tree."""
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=monospace];"]
    counter = [0]

    def emit(node: PlanNode) -> str:
        identifier = f"n{counter[0]}"
        counter[0] += 1
        if isinstance(node, ConditionNode):
            lines.append(
                f'  {identifier} [label="{node.attribute} >= {node.split_value}?",'
                " shape=diamond];"
            )
            below = emit(node.below)
            above = emit(node.above)
            lines.append(f'  {identifier} -> {below} [label="no"];')
            lines.append(f'  {identifier} -> {above} [label="yes"];')
        elif isinstance(node, SequentialNode):
            chain = (
                "\\n".join(step.predicate.describe() for step in node.steps)
                or "T"
            )
            lines.append(f'  {identifier} [label="{chain}"];')
        elif isinstance(node, VerdictLeaf):
            verdict = "T" if node.verdict else "F"
            lines.append(
                f'  {identifier} [label="{verdict}", shape=circle];'
            )
        else:
            raise PlanError(f"unknown plan node type {type(node).__name__}")
        return identifier

    emit(plan)
    lines.append("}")
    return "\n".join(lines)


def validate_plan(
    plan: PlanNode, schema: Schema, query=None
) -> list[str]:
    """Structural soundness check for a plan against a schema.

    Plans cross a trust boundary in the paper's architecture — they are
    deserialized on motes from bytes the basestation sent — so a deployed
    system must be able to reject malformed ones.  Returns a list of
    problem descriptions (empty = valid):

    - attribute indices out of schema range, or names disagreeing with the
      schema's name at that index;
    - split values outside ``[2, K_i]`` or outside the reachable range
      implied by ancestor splits (dead branches);
    - sequential-step predicate bounds outside the attribute's domain;
    - with ``query`` given: full semantic equivalence — predicates in
      leaves that are not the query's, dropped or duplicated conjuncts,
      verdict leaves unjustified by (or contradicting) their context.

    This is a thin wrapper over :func:`repro.verify.rules.check_tree`
    that keeps the historical string-list interface; use
    :func:`repro.verify.verify_plan` directly for structured diagnostics
    (error codes, severities, node paths) and the cost/bytecode rules.
    """
    from repro.verify.diagnostics import Severity
    from repro.verify.rules import check_tree

    return [
        finding.message
        for finding in check_tree(plan, schema, query=query)
        if finding.severity is Severity.ERROR
    ]


@dataclass(frozen=True)
class PlanComparison:
    """Behavioural and cost diff of two plans over the same dataset."""

    mean_cost_a: float
    mean_cost_b: float
    size_bytes_a: int
    size_bytes_b: int
    verdict_agreement: float
    cost_ratio: float

    def describe(self) -> str:
        return (
            f"cost {self.mean_cost_a:.2f} vs {self.mean_cost_b:.2f} "
            f"({self.cost_ratio:.2f}x), size {self.size_bytes_a} vs "
            f"{self.size_bytes_b} bytes, verdict agreement "
            f"{self.verdict_agreement:.4f}"
        )


def compare_plans(
    plan_a: PlanNode, plan_b: PlanNode, data: np.ndarray, schema: Schema
) -> PlanComparison:
    """Run two plans over the same rows and compare outcomes.

    ``verdict_agreement`` must be 1.0 whenever both plans answer the same
    query — the paper's correctness guarantee; anything less flags a bug.
    """
    outcome_a = dataset_execution(plan_a, data, schema)
    outcome_b = dataset_execution(plan_b, data, schema)
    mean_a = outcome_a.mean_cost
    mean_b = outcome_b.mean_cost
    return PlanComparison(
        mean_cost_a=mean_a,
        mean_cost_b=mean_b,
        size_bytes_a=plan_a.size_bytes(),
        size_bytes_b=plan_b.size_bytes(),
        verdict_agreement=float(
            np.mean(outcome_a.verdicts == outcome_b.verdicts)
        ),
        cost_ratio=mean_a / mean_b if mean_b > 0 else float("inf"),
    )
