"""Unary predicates over discretized attributes.

The paper's queries are conjunctions of unary range predicates
``l_i <= X_i <= r_i`` (Query 1, Section 1); the Garden workload additionally
uses negated ranges ``not(a <= X <= b)`` (Section 6.2).  Both are modelled
here, along with the three-valued *truth-under-range* test the planners rely
on: given only that ``X_i`` lies in some interval ``R_i``, a predicate may be
proven true, proven false, or remain undetermined.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.ranges import Range
from repro.exceptions import QueryError

__all__ = ["Truth", "Predicate", "RangePredicate", "NotRangePredicate"]


class Truth(enum.Enum):
    """Three-valued predicate outcome under partial (range) knowledge."""

    TRUE = "true"
    FALSE = "false"
    UNDETERMINED = "undetermined"


@dataclass(frozen=True)
class Predicate(ABC):
    """A unary predicate over a single named attribute.

    Subclasses implement point evaluation (:meth:`satisfied_by`) and
    range-level truth determination (:meth:`truth_under`).  Predicates are
    bound to attribute *names*; :class:`repro.core.query.ConjunctiveQuery`
    resolves names to schema indices.
    """

    attribute: str

    @abstractmethod
    def satisfied_by(self, value: int) -> bool:
        """Whether a concrete attribute value satisfies the predicate."""

    @abstractmethod
    def truth_under(self, interval: Range) -> Truth:
        """Predicate truth given only that the attribute lies in ``interval``."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering used by the plan pretty-printer."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """``low <= X <= high`` over the attribute's discretized domain."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(
                f"predicate on {self.attribute!r}: empty range "
                f"[{self.low}, {self.high}]"
            )

    def satisfied_by(self, value: int) -> bool:
        return self.low <= value <= self.high

    def truth_under(self, interval: Range) -> Truth:
        window = Range(self.low, self.high)
        if interval.is_subset_of(window):
            return Truth.TRUE
        if not interval.intersects(window):
            return Truth.FALSE
        return Truth.UNDETERMINED

    def describe(self) -> str:
        return f"{self.low} <= {self.attribute} <= {self.high}"


@dataclass(frozen=True)
class NotRangePredicate(Predicate):
    """``not (low <= X <= high)`` — the Garden workload's negated ranges."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise QueryError(
                f"predicate on {self.attribute!r}: empty range "
                f"[{self.low}, {self.high}]"
            )

    def satisfied_by(self, value: int) -> bool:
        return not self.low <= value <= self.high

    def truth_under(self, interval: Range) -> Truth:
        window = Range(self.low, self.high)
        if interval.is_subset_of(window):
            return Truth.FALSE
        if not interval.intersects(window):
            return Truth.TRUE
        return Truth.UNDETERMINED

    def describe(self) -> str:
        return f"not({self.low} <= {self.attribute} <= {self.high})"
