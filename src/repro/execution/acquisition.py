"""Acquisition sources: where attribute values (and their costs) come from.

In an acquisitional system the executor does not *have* the tuple — it must
pay to read each attribute (Section 1).  An :class:`AcquisitionSource`
models one tuple's worth of acquirable state: the executor calls
:meth:`acquire` as the plan demands and the source meters the cost.

Two cost models are provided:

- :class:`TupleSource` — the paper's model: a fixed per-attribute cost,
  charged once per attribute (repeat reads are free, matching the
  Section 2.2 semantics);
- :class:`SensorBoardSource` — the Section 7 "complex acquisition costs"
  extension: attributes live on sensor boards that must be powered up, so
  the first read on a board pays a shared power-up surcharge and further
  reads on the same board are cheap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.core.attributes import Schema
from repro.exceptions import AcquisitionError

__all__ = ["AcquisitionSource", "TupleSource", "SensorBoardSource"]


class AcquisitionSource(ABC):
    """One tuple's acquirable attributes with metered access."""

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._cache: dict[int, int] = {}
        self._total_cost = 0.0

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def total_cost(self) -> float:
        """Cost paid so far on this tuple."""
        return self._total_cost

    @property
    def acquired_indices(self) -> frozenset[int]:
        return frozenset(self._cache)

    def acquire(self, attribute_index: int) -> int:
        """Read one attribute, paying its cost on first access."""
        if not 0 <= attribute_index < len(self._schema):
            raise AcquisitionError(
                f"attribute index {attribute_index} out of range "
                f"[0, {len(self._schema) - 1}]"
            )
        cached = self._cache.get(attribute_index)
        if cached is not None:
            return cached
        value = self._read(attribute_index)
        self._total_cost += self._cost_of(attribute_index)
        self._cache[attribute_index] = value
        return value

    def reset(self) -> None:
        """Forget cached values and accumulated cost (new tuple)."""
        self._cache.clear()
        self._total_cost = 0.0

    @abstractmethod
    def _read(self, attribute_index: int) -> int:
        """Produce the attribute's value (uncached path)."""

    def _cost_of(self, attribute_index: int) -> float:
        """Cost of a first read; override for richer cost models."""
        return self._schema[attribute_index].cost


class TupleSource(AcquisitionSource):
    """Replay one dataset row with the paper's per-attribute costs."""

    def __init__(self, schema: Schema, values: Sequence[int]) -> None:
        super().__init__(schema)
        self._values = schema.validate_tuple(values)

    def _read(self, attribute_index: int) -> int:
        return self._values[attribute_index]


class SensorBoardSource(TupleSource):
    """Board-aware costs: shared power-up plus a small per-read cost.

    Parameters
    ----------
    schema, values:
        As for :class:`TupleSource`.
    boards:
        Maps attribute index to a board label; attributes absent from the
        mapping keep their plain per-attribute cost.
    power_up_cost:
        One-time cost the first read on each board adds.
    per_read_cost:
        Cost of each first-read on a board-resident attribute (replaces the
        attribute's schema cost, which is assumed to have modelled the
        monolithic read).
    """

    def __init__(
        self,
        schema: Schema,
        values: Sequence[int],
        boards: Mapping[int, str],
        power_up_cost: float,
        per_read_cost: float = 1.0,
    ) -> None:
        super().__init__(schema, values)
        if power_up_cost < 0 or per_read_cost < 0:
            raise AcquisitionError("board costs must be >= 0")
        self._boards = dict(boards)
        self._power_up_cost = float(power_up_cost)
        self._per_read_cost = float(per_read_cost)
        self._powered: set[str] = set()

    def reset(self) -> None:
        super().reset()
        self._powered.clear()

    def _cost_of(self, attribute_index: int) -> float:
        board = self._boards.get(attribute_index)
        if board is None:
            return self._schema[attribute_index].cost
        cost = self._per_read_cost
        if board not in self._powered:
            self._powered.add(board)
            cost += self._power_up_cost
        return cost
