"""Plan execution with acquisition-cost accounting.

The executor is the runtime half of the architecture (Section 2.5): plans
arrive pre-computed from the basestation and are evaluated per tuple with a
simple tree traversal — cheap enough for mote-class hardware.  This module
provides both a per-tuple executor over :class:`AcquisitionSource` objects
(arbitrary cost models) and dataset-scale helpers built on the vectorized
walker in :mod:`repro.core.cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import Schema
from repro.core.cost import DatasetExecution, ExecutionObserver, dataset_execution
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.execution.acquisition import AcquisitionSource, TupleSource
from repro.exceptions import PlanError

__all__ = ["ExecutionResult", "VerificationReport", "PlanExecutor"]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing a plan on one tuple."""

    verdict: bool
    cost: float
    acquired: frozenset[int]

    @property
    def reads(self) -> int:
        return len(self.acquired)


@dataclass(frozen=True)
class VerificationReport:
    """Comparison of a plan's verdicts against ground-truth evaluation.

    The paper's correctness guarantee (Section 8) is that conditional plans
    never change query answers — only acquisition order.  ``mismatches``
    must therefore always be empty; it is reported rather than asserted so
    tests can show *which* rows diverged when a planner is broken.
    """

    rows: int
    mismatches: tuple[int, ...]

    @property
    def correct(self) -> bool:
        return not self.mismatches


class PlanExecutor:
    """Executes plans against tuples, sources, and datasets.

    ``profile_sink`` (usually a :class:`repro.obs.PlanProfile`) receives
    per-node visit/branch/acquisition events from every execution this
    executor performs; when ``None`` (the default) no bookkeeping happens.
    Meaningful per-node counters assume the executor runs one plan — use
    one sink per plan, or a fresh executor per plan.
    """

    def __init__(
        self, schema: Schema, profile_sink: ExecutionObserver | None = None
    ) -> None:
        self._schema = schema
        self._profile_sink = profile_sink

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def profile_sink(self) -> ExecutionObserver | None:
        return self._profile_sink

    def execute(self, plan: PlanNode, values) -> ExecutionResult:
        """Run a plan on one concrete tuple with schema costs."""
        source = TupleSource(self._schema, values)
        return self.execute_source(plan, source)

    def execute_source(
        self, plan: PlanNode, source: AcquisitionSource
    ) -> ExecutionResult:
        """Run a plan against an acquisition source (custom cost models).

        The plan's reads are routed through :meth:`AcquisitionSource.acquire`
        so the source's cost model — including board power-up surcharges —
        is what gets metered, not the schema's flat costs.
        """
        if source.schema is not self._schema:
            raise PlanError("source schema differs from executor schema")
        values = _SourceView(source)
        if self._profile_sink is None:
            verdict = plan.evaluate(values)
        else:
            from repro.obs.profile import profiled_evaluate

            verdict = profiled_evaluate(plan, values, self._profile_sink)
        return ExecutionResult(
            verdict=verdict,
            cost=source.total_cost,
            acquired=frozenset(source.acquired_indices),
        )

    def run(self, plan: PlanNode, data: np.ndarray) -> DatasetExecution:
        """Vectorized execution over every row of a dataset (Equation 4)."""
        return dataset_execution(
            plan, data, self._schema, observer=self._profile_sink
        )

    def verify(
        self, plan: PlanNode, query: ConjunctiveQuery, data: np.ndarray
    ) -> VerificationReport:
        """Check that the plan answers ``query`` identically on every row."""
        outcome = self.run(plan, data)
        truth = np.fromiter(
            (query.evaluate(row) for row in np.asarray(data)),
            dtype=bool,
            count=len(data),
        )
        mismatches = tuple(int(i) for i in np.flatnonzero(outcome.verdicts != truth))
        return VerificationReport(rows=len(data), mismatches=mismatches)


class _SourceView:
    """Adapts an AcquisitionSource to the sequence protocol plans index."""

    __slots__ = ("_source",)

    def __init__(self, source: AcquisitionSource) -> None:
        self._source = source

    def __getitem__(self, index: int) -> int:
        return self._source.acquire(index)
