"""A discrete-epoch sensor-network simulator (Sections 2.4, 2.5, 7).

The paper's architecture generates conditional plans at a well-provisioned
basestation and ships them to motes, which execute the plan locally each
epoch and radio matching tuples back.  The paper costs plans on a
centralized PC ("we reserve implementing a plan executor that runs on
sensor network hardware for future work"); this simulator goes one step
further and provides the energy bookkeeping that makes the Section 2.4
trade-off concrete:

- **acquisition energy**: each mote pays the plan's traversal cost per
  epoch (Equation 1);
- **dissemination energy**: sending a plan of ``zeta(P)`` bytes into the
  network costs ``zeta(P) * radio_cost_per_byte`` per mote, amortized over
  the query lifetime — exactly the ``alpha`` factor of Section 2.4;
- **result energy**: each matching tuple costs ``result_bytes *
  radio_cost_per_byte`` to report.

The simulator also executes the Section 7 *existential* queries: the
basestation polls motes in descending historical match probability and
stops at the first hit, so strong cross-mote correlation translates into
fewer acquisitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.attributes import Schema
from repro.core.cost import dataset_execution
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery, ExistentialQuery, LimitQuery
from repro.exceptions import AcquisitionError

if TYPE_CHECKING:
    from repro.faults.model import FaultSchedule
    from repro.faults.policy import FaultPolicy

__all__ = [
    "Mote",
    "SimulationReport",
    "LifetimeReport",
    "SensorNetworkSimulator",
]


@dataclass(frozen=True)
class Mote:
    """One sensor node: an id and its stream of per-epoch readings."""

    mote_id: int
    readings: np.ndarray  # shape (epochs, n_attributes), discretized

    def __post_init__(self) -> None:
        matrix = np.asarray(self.readings)
        if matrix.ndim != 2:
            raise AcquisitionError(
                f"mote {self.mote_id}: readings must be 2-D, got {matrix.shape}"
            )

    @property
    def epochs(self) -> int:
        return self.readings.shape[0]


@dataclass
class SimulationReport:
    """Energy accounting for one simulated query deployment.

    The fault fields stay zero for fault-free runs; for
    :meth:`SensorNetworkSimulator.run_faulted` deployments they aggregate
    the per-mote injector counters, and ``retry_energy`` is the slice of
    acquisition energy spent on backed-off re-attempts.
    """

    epochs: int
    acquisition_energy: dict[int, float] = field(default_factory=dict)
    dissemination_energy: dict[int, float] = field(default_factory=dict)
    result_energy: dict[int, float] = field(default_factory=dict)
    matches: int = 0
    acquisitions_performed: int = 0
    acquisitions_failed: int = 0
    retries_total: int = 0
    tuples_degraded: int = 0
    tuples_abstained: int = 0
    retry_energy: float = 0.0

    def mote_energy(self, mote_id: int) -> float:
        return (
            self.acquisition_energy.get(mote_id, 0.0)
            + self.dissemination_energy.get(mote_id, 0.0)
            + self.result_energy.get(mote_id, 0.0)
        )

    @property
    def total_energy(self) -> float:
        mote_ids = (
            set(self.acquisition_energy)
            | set(self.dissemination_energy)
            | set(self.result_energy)
        )
        return sum(self.mote_energy(mote_id) for mote_id in mote_ids)

    @property
    def energy_per_epoch(self) -> float:
        if self.epochs == 0:
            return 0.0
        return self.total_energy / self.epochs


@dataclass(frozen=True)
class LifetimeReport:
    """Battery-lifetime projection for one plan deployment.

    The headline sensor-network metric: a network is useful until its
    first mote dies (coverage breaks), so ``network_lifetime_epochs`` is
    the minimum over motes of (battery after dissemination) / (mean energy
    per epoch).
    """

    battery_capacity: float
    per_mote_epochs: dict[int, float]
    mean_epoch_energy: dict[int, float]

    @property
    def network_lifetime_epochs(self) -> float:
        return min(self.per_mote_epochs.values())

    @property
    def bottleneck_mote(self) -> int:
        return min(self.per_mote_epochs, key=self.per_mote_epochs.get)


class SensorNetworkSimulator:
    """Runs plans over a fleet of motes with radio-cost accounting.

    Parameters
    ----------
    schema:
        Shared per-mote schema (each mote evaluates the plan on its own
        readings).
    motes:
        The fleet.  All motes must share an epoch count.
    radio_cost_per_byte:
        Energy per transmitted byte (dissemination and results).
    result_bytes:
        Size of one reported result tuple.
    """

    def __init__(
        self,
        schema: Schema,
        motes: list[Mote],
        radio_cost_per_byte: float = 0.5,
        result_bytes: int = 8,
    ) -> None:
        if not motes:
            raise AcquisitionError("simulator needs at least one mote")
        epochs = motes[0].epochs
        for mote in motes:
            if mote.readings.shape != (epochs, len(schema)):
                raise AcquisitionError(
                    f"mote {mote.mote_id} readings shape {mote.readings.shape} "
                    f"inconsistent with ({epochs}, {len(schema)})"
                )
        if radio_cost_per_byte < 0 or result_bytes < 0:
            raise AcquisitionError("radio costs must be >= 0")
        self._schema = schema
        self._motes = list(motes)
        self._radio_cost_per_byte = float(radio_cost_per_byte)
        self._result_bytes = int(result_bytes)

    @property
    def motes(self) -> list[Mote]:
        return list(self._motes)

    @property
    def epochs(self) -> int:
        return self._motes[0].epochs

    def dissemination_cost(self, plan: PlanNode) -> float:
        """Per-mote energy to ship the plan into the network."""
        return plan.size_bytes() * self._radio_cost_per_byte

    def effective_alpha(self, lifetime_epochs: int) -> float:
        """Section 2.4's plan-size weight for a given query lifetime."""
        if lifetime_epochs < 1:
            raise AcquisitionError(
                f"lifetime_epochs must be >= 1, got {lifetime_epochs}"
            )
        return self._radio_cost_per_byte / lifetime_epochs

    def run(self, plan: PlanNode, epochs: int | None = None) -> SimulationReport:
        """Deploy ``plan`` on every mote for ``epochs`` epochs.

        Each mote executes the plan on each of its readings; energy is the
        sum of acquisition costs, one plan dissemination, and per-match
        result transmissions.
        """
        horizon = self.epochs if epochs is None else min(int(epochs), self.epochs)
        report = SimulationReport(epochs=horizon)
        dissemination = self.dissemination_cost(plan)
        result_cost = self._result_bytes * self._radio_cost_per_byte
        for mote in self._motes:
            window = mote.readings[:horizon]
            outcome = dataset_execution(plan, window, self._schema)
            matches = int(outcome.verdicts.sum())
            report.acquisition_energy[mote.mote_id] = outcome.total_cost
            report.dissemination_energy[mote.mote_id] = dissemination
            report.result_energy[mote.mote_id] = matches * result_cost
            report.matches += matches
            report.acquisitions_performed += horizon
        return report

    def run_faulted(
        self,
        plan: PlanNode,
        schedule: "FaultSchedule",
        rng: np.random.Generator,
        query: ConjunctiveQuery | None = None,
        policy: "FaultPolicy | None" = None,
        epochs: int | None = None,
    ) -> SimulationReport:
        """Deploy ``plan`` on every mote with fault injection.

        Each mote gets its own fault stream (its sensors fail
        independently), deterministically child-seeded from the single
        ``rng`` so the whole deployment replays from one seed.  Abstained
        tuples are withdrawn — they cost acquisition energy but are never
        radioed back — and the report's fault counters aggregate the
        per-mote injectors.  ``query`` is required for SKIP/IMPUTE
        degradation (the fallback path evaluates it directly).
        """
        from repro.faults.executor import FaultTolerantExecutor
        from repro.faults.policy import FaultPolicy

        effective = policy if policy is not None else FaultPolicy()
        horizon = self.epochs if epochs is None else min(int(epochs), self.epochs)
        report = SimulationReport(epochs=horizon)
        dissemination = self.dissemination_cost(plan)
        result_cost = self._result_bytes * self._radio_cost_per_byte
        executor = FaultTolerantExecutor(self._schema, effective, query=query)
        for mote in self._motes:
            window = mote.readings[:horizon]
            mote_rng = np.random.default_rng(
                int(rng.integers(0, np.iinfo(np.int64).max))
            )
            outcome = executor.run(plan, window, schedule, mote_rng)
            matches = len(outcome.selected)
            report.acquisition_energy[mote.mote_id] = float(outcome.costs.sum())
            report.dissemination_energy[mote.mote_id] = dissemination
            report.result_energy[mote.mote_id] = matches * result_cost
            report.matches += matches
            report.acquisitions_performed += horizon
            report.acquisitions_failed += outcome.acquisitions_failed
            report.retries_total += outcome.retries_total
            report.tuples_degraded += outcome.tuples_degraded
            report.tuples_abstained += outcome.tuples_abstained
            report.retry_energy += outcome.retry_cost
        return report

    def estimate_lifetime(
        self,
        plan: PlanNode,
        battery_capacity: float,
        pilot_epochs: int | None = None,
    ) -> LifetimeReport:
        """Project how long each mote's battery sustains ``plan``.

        Runs a pilot window over the motes' readings to estimate mean
        energy per epoch (acquisition plus result reporting), charges one
        plan dissemination up front, and extrapolates:

            lifetime_i = (capacity - dissemination) / mean_epoch_energy_i

        A cheaper plan therefore translates directly into a longer network
        lifetime — the claim the paper's energy argument rests on.
        """
        if battery_capacity <= 0:
            raise AcquisitionError(
                f"battery_capacity must be > 0, got {battery_capacity}"
            )
        report = self.run(plan, epochs=pilot_epochs)
        dissemination = self.dissemination_cost(plan)
        if battery_capacity <= dissemination:
            raise AcquisitionError(
                "battery cannot even afford plan dissemination "
                f"({dissemination} > {battery_capacity})"
            )
        per_mote_epochs: dict[int, float] = {}
        mean_energy: dict[int, float] = {}
        for mote in self._motes:
            acquisition = report.acquisition_energy[mote.mote_id]
            results = report.result_energy.get(mote.mote_id, 0.0)
            epoch_energy = (acquisition + results) / max(report.epochs, 1)
            mean_energy[mote.mote_id] = epoch_energy
            if epoch_energy <= 0.0:
                per_mote_epochs[mote.mote_id] = float("inf")
            else:
                per_mote_epochs[mote.mote_id] = (
                    battery_capacity - dissemination
                ) / epoch_energy
        return LifetimeReport(
            battery_capacity=battery_capacity,
            per_mote_epochs=per_mote_epochs,
            mean_epoch_energy=mean_energy,
        )

    def run_existential(
        self,
        plan: PlanNode,
        query: ExistentialQuery,
        training_match_rates: dict[int, float] | None = None,
        epochs: int | None = None,
    ) -> SimulationReport:
        """Answer an EXISTS query each epoch, stopping at the first match.

        Motes are polled in descending historical match rate (supplied or
        estimated from the fleet's own readings), so in correlated
        deployments most epochs touch only the most promising mote —
        Section 7's acquisition-saving generalization.
        """
        horizon = self.epochs if epochs is None else min(int(epochs), self.epochs)
        rates = training_match_rates or self._estimate_match_rates(query.inner)
        order = sorted(
            self._motes,
            key=lambda mote: rates.get(mote.mote_id, 0.0),
            reverse=True,
        )
        report = SimulationReport(epochs=horizon)
        dissemination = self.dissemination_cost(plan)
        result_cost = self._result_bytes * self._radio_cost_per_byte
        for mote in order:
            report.dissemination_energy[mote.mote_id] = dissemination

        # Pre-compute per-mote verdicts and costs; the polling loop then only
        # charges the motes actually consulted each epoch.
        executions = {
            mote.mote_id: dataset_execution(
                plan, mote.readings[:horizon], self._schema
            )
            for mote in order
        }
        for epoch in range(horizon):
            for mote in order:
                outcome = executions[mote.mote_id]
                report.acquisition_energy[mote.mote_id] = (
                    report.acquisition_energy.get(mote.mote_id, 0.0)
                    + float(outcome.costs[epoch])
                )
                report.acquisitions_performed += 1
                if outcome.verdicts[epoch]:
                    report.matches += 1
                    report.result_energy[mote.mote_id] = (
                        report.result_energy.get(mote.mote_id, 0.0) + result_cost
                    )
                    break
        return report

    def run_limit(
        self,
        plan: PlanNode,
        query: LimitQuery,
        training_match_rates: dict[int, float] | None = None,
        epochs: int | None = None,
    ) -> SimulationReport:
        """Answer a LIMIT-k query each epoch with early termination.

        Like :meth:`run_existential`, motes are polled in descending
        historical match rate, but polling continues until ``k`` matches
        are collected (or the fleet is exhausted) — the Section 7 "LIMIT
        clause" generalization.
        """
        horizon = self.epochs if epochs is None else min(int(epochs), self.epochs)
        rates = training_match_rates or self._estimate_match_rates(query.inner)
        order = sorted(
            self._motes,
            key=lambda mote: rates.get(mote.mote_id, 0.0),
            reverse=True,
        )
        report = SimulationReport(epochs=horizon)
        dissemination = self.dissemination_cost(plan)
        result_cost = self._result_bytes * self._radio_cost_per_byte
        for mote in order:
            report.dissemination_energy[mote.mote_id] = dissemination
        executions = {
            mote.mote_id: dataset_execution(
                plan, mote.readings[:horizon], self._schema
            )
            for mote in order
        }
        for epoch in range(horizon):
            collected = 0
            for mote in order:
                outcome = executions[mote.mote_id]
                report.acquisition_energy[mote.mote_id] = (
                    report.acquisition_energy.get(mote.mote_id, 0.0)
                    + float(outcome.costs[epoch])
                )
                report.acquisitions_performed += 1
                if outcome.verdicts[epoch]:
                    collected += 1
                    report.matches += 1
                    report.result_energy[mote.mote_id] = (
                        report.result_energy.get(mote.mote_id, 0.0) + result_cost
                    )
                    if collected >= query.limit:
                        break
        return report

    def _estimate_match_rates(self, query: ConjunctiveQuery) -> dict[int, float]:
        rates = {}
        for mote in self._motes:
            verdicts = np.fromiter(
                (query.evaluate(row) for row in mote.readings),
                dtype=bool,
                count=mote.epochs,
            )
            rates[mote.mote_id] = float(verdicts.mean())
        return rates
