"""Adaptive planning over data streams (Section 7, "Queries over data
streams").

When query evaluation runs over a continuous stream whose distribution
drifts, a plan trained once can decay.  The paper sketches the remedy:
maintain statistics over a sliding window and periodically re-run the
(greedy) planner against them.  :class:`AdaptiveStreamExecutor` implements
that loop:

- tuples are processed with the current plan, costs metered per tuple;
- a sliding window of the most recent tuples is retained;
- every ``replan_interval`` tuples — or earlier, when the observed mean
  cost exceeds the plan's predicted cost by ``drift_threshold`` — the
  planner is re-invoked on the window and the plan swapped in-place.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.attributes import Schema
from repro.core.cost import dataset_execution
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.exceptions import PlanningError
from repro.planning.base import Planner
from repro.probability.empirical import EmpiricalDistribution

__all__ = ["ReplanEvent", "StreamReport", "AdaptiveStreamExecutor"]

# A factory building a planner for a freshly-fitted window distribution.
PlannerFactory = Callable[[EmpiricalDistribution], Planner]


@dataclass(frozen=True)
class ReplanEvent:
    """One plan swap: when it happened and what the new plan promised."""

    position: int
    expected_cost: float
    reason: str  # "interval" or "drift"


@dataclass(frozen=True)
class StreamReport:
    """Outcome of streaming execution."""

    costs: np.ndarray
    verdicts: np.ndarray
    replans: tuple[ReplanEvent, ...]

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean()) if self.costs.size else 0.0


class AdaptiveStreamExecutor:
    """Sliding-window replanning executor.

    Parameters
    ----------
    schema, query:
        The continuous query being evaluated.
    planner_factory:
        Builds a planner from an :class:`EmpiricalDistribution` fitted on
        the current window (e.g. ``lambda dist:
        GreedyConditionalPlanner(dist, CorrSeqPlanner(dist), max_splits=5)``).
    window:
        Sliding-window length (tuples) used to fit statistics.
    replan_interval:
        Re-plan after this many tuples since the last plan swap.
    drift_threshold:
        Re-plan early when the observed mean cost since the last swap
        exceeds the plan's predicted expected cost by this multiplicative
        factor.  ``None`` disables drift-triggered replanning.
    smoothing:
        Laplace smoothing for the window distributions (small windows make
        raw counts noisy).
    on_replan:
        Optional callback invoked with each :class:`ReplanEvent` as the
        plan is swapped — serving layers hook this to invalidate cached
        plans the moment the stream's statistics move.
    """

    def __init__(
        self,
        schema: Schema,
        query: ConjunctiveQuery,
        planner_factory: PlannerFactory,
        window: int = 4_000,
        replan_interval: int = 1_000,
        drift_threshold: float | None = 1.5,
        smoothing: float = 0.5,
        on_replan: Callable[[ReplanEvent], None] | None = None,
    ) -> None:
        if window < 2:
            raise PlanningError(f"window must be >= 2, got {window}")
        if replan_interval < 1:
            raise PlanningError(
                f"replan_interval must be >= 1, got {replan_interval}"
            )
        if drift_threshold is not None and drift_threshold <= 1.0:
            raise PlanningError(
                f"drift_threshold must exceed 1.0, got {drift_threshold}"
            )
        self._schema = schema
        self._query = query
        self._factory = planner_factory
        self._window = int(window)
        self._replan_interval = int(replan_interval)
        self._drift_threshold = drift_threshold
        self._smoothing = float(smoothing)
        self._on_replan = on_replan

    def process(self, stream: np.ndarray) -> StreamReport:
        """Run the query over ``stream`` (rows in arrival order)."""
        matrix = np.asarray(stream)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise PlanningError(
                f"stream shape {matrix.shape} incompatible with schema of "
                f"{len(self._schema)} attributes"
            )
        total = matrix.shape[0]
        costs = np.zeros(total, dtype=np.float64)
        verdicts = np.zeros(total, dtype=bool)
        replans: list[ReplanEvent] = []

        window: deque = deque(maxlen=self._window)
        plan: PlanNode | None = None
        predicted = 0.0
        since_replan = 0
        cost_since_replan = 0.0

        # Bootstrap: collect an initial window before the first plan.
        warmup = min(self._window, self._replan_interval, total)
        for position in range(total):
            row = matrix[position]
            if plan is None:
                # During warm-up, acquire every query attribute (the
                # plan-less baseline) and record statistics.
                cost = sum(
                    self._schema[index].cost
                    for index in self._query.attribute_indices
                )
                costs[position] = cost
                verdicts[position] = self._query.evaluate(row)
                window.append(row)
                if position + 1 >= warmup:
                    plan, predicted = self._replan(window)
                    self._record(
                        replans, ReplanEvent(position + 1, predicted, "interval")
                    )
                    since_replan = 0
                    cost_since_replan = 0.0
                continue

            outcome = dataset_execution(plan, row[None, :], self._schema)
            costs[position] = outcome.costs[0]
            verdicts[position] = outcome.verdicts[0]
            window.append(row)
            since_replan += 1
            cost_since_replan += float(outcome.costs[0])

            drifted = (
                self._drift_threshold is not None
                and since_replan >= 50  # need a stable estimate first
                and predicted > 0.0
                and cost_since_replan / since_replan
                > self._drift_threshold * predicted
            )
            if since_replan >= self._replan_interval or drifted:
                plan, predicted = self._replan(window)
                self._record(
                    replans,
                    ReplanEvent(
                        position + 1,
                        predicted,
                        "drift" if drifted else "interval",
                    ),
                )
                since_replan = 0
                cost_since_replan = 0.0

        return StreamReport(
            costs=costs, verdicts=verdicts, replans=tuple(replans)
        )

    def _record(
        self, replans: list[ReplanEvent], event: ReplanEvent
    ) -> None:
        replans.append(event)
        if self._on_replan is not None:
            self._on_replan(event)

    def _replan(self, window: deque) -> tuple[PlanNode, float]:
        snapshot = np.asarray(list(window), dtype=np.int64)
        distribution = EmpiricalDistribution(
            self._schema, snapshot, smoothing=self._smoothing
        )
        planner = self._factory(distribution)
        result = planner.plan(self._query)
        return result.plan, result.expected_cost
