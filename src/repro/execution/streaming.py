"""Adaptive planning over data streams (Section 7, "Queries over data
streams").

When query evaluation runs over a continuous stream whose distribution
drifts, a plan trained once can decay.  The paper sketches the remedy:
maintain statistics over a sliding window and periodically re-run the
(greedy) planner against them.  :class:`AdaptiveStreamExecutor` implements
that loop:

- tuples are processed with the current plan, costs metered per tuple;
- a sliding window of the most recent tuples is retained;
- every ``replan_interval`` tuples — or earlier, when the observed mean
  cost exceeds the plan's predicted cost by ``drift_threshold`` — the
  planner is re-invoked on the window and the plan swapped in-place.

With ``profile_drift_threshold`` set, the executor additionally keeps a
per-plan :class:`~repro.obs.PlanProfile` and a
:class:`~repro.obs.DriftMonitor` scoring observed branch/pass frequencies
against the plan's Eq. 3 predictions — catching *shape* drift (the
distribution moved but the plan's mean cost barely did) that the
cost-ratio trigger cannot see.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.attributes import Schema
from repro.core.cost import ExecutionObserver, dataset_execution
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.exceptions import AcquisitionFailure, FaultConfigError, PlanningError
from repro.planning.base import Planner
from repro.probability.empirical import EmpiricalDistribution

if TYPE_CHECKING:
    from repro.faults.model import FaultSchedule
    from repro.faults.policy import FaultPolicy

__all__ = [
    "ReplanEvent",
    "StreamFaultStats",
    "StreamReport",
    "AdaptiveStreamExecutor",
]

# A factory building a planner for a freshly-fitted window distribution.
PlannerFactory = Callable[[EmpiricalDistribution], Planner]


@dataclass(frozen=True)
class ReplanEvent:
    """One plan swap: when it happened and what the new plan promised.

    ``drift_score`` carries the normalized chi-square score that fired a
    ``"profile-drift"`` replan; it is ``None`` for the other reasons.
    """

    position: int
    expected_cost: float
    reason: str  # "interval", "drift", "profile-drift", or "outage"
    drift_score: float | None = None


@dataclass(frozen=True)
class StreamFaultStats:
    """Run-wide fault accounting for a fault-injected stream."""

    acquisitions_failed: int = 0
    retries_total: int = 0
    tuples_degraded: int = 0
    tuples_abstained: int = 0
    corruptions: int = 0
    retry_cost: float = 0.0


@dataclass(frozen=True)
class StreamReport:
    """Outcome of streaming execution.

    ``abstained`` and ``faults`` are populated only for fault-injected
    runs; an abstained position carries ``verdicts == False`` (the tuple
    is not selected) with ``abstained == True`` marking the withdrawal.
    """

    costs: np.ndarray
    verdicts: np.ndarray
    replans: tuple[ReplanEvent, ...]
    abstained: np.ndarray | None = None
    faults: StreamFaultStats | None = None

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean()) if self.costs.size else 0.0


class AdaptiveStreamExecutor:
    """Sliding-window replanning executor.

    Parameters
    ----------
    schema, query:
        The continuous query being evaluated.
    planner_factory:
        Builds a planner from an :class:`EmpiricalDistribution` fitted on
        the current window (e.g. ``lambda dist:
        GreedyConditionalPlanner(dist, CorrSeqPlanner(dist), max_splits=5)``).
    window:
        Sliding-window length (tuples) used to fit statistics.
    replan_interval:
        Re-plan after this many tuples since the last plan swap.
    drift_threshold:
        Re-plan early when the observed mean cost since the last swap
        exceeds the plan's predicted expected cost by this multiplicative
        factor.  ``None`` disables drift-triggered replanning.
    smoothing:
        Laplace smoothing for the window distributions (small windows make
        raw counts noisy).
    on_replan:
        Optional callback invoked with each :class:`ReplanEvent` as the
        plan is swapped — serving layers hook this to invalidate cached
        plans the moment the stream's statistics move.
    profile_drift_threshold:
        Enables per-node profile-drift replanning: the current plan's
        observed split/pass frequencies are scored against its Eq. 3
        predictions (see :class:`repro.obs.DriftMonitor`), and a
        normalized score above this threshold triggers a
        ``"profile-drift"`` replan.  ``None`` (default) disables the
        profile machinery entirely.
    profile_check_every:
        Assess drift every this many tuples (scoring walks the whole
        profile, so per-tuple assessment would dominate).
    profile_min_tuples:
        Do not assess until the current plan has profiled at least this
        many tuples (small samples make the chi-square score noisy).
    profile_sink:
        Optional extra :class:`~repro.core.cost.ExecutionObserver` that
        receives every execution event across all plans (on top of the
        internal per-plan profiles).
    fault_schedule:
        When given, every acquisition flows through a seeded
        :class:`~repro.faults.FaultInjector` replaying this schedule, the
        plan is executed with :class:`~repro.faults.FaultTolerantExecutor`
        degradation, and sustained outages (per the policy's
        ``outage_replan_threshold`` over ``outage_window`` recent tuples)
        become an ``"outage"`` replan trigger.  Requires ``fault_rng``;
        incompatible with ``profile_drift_threshold`` (per-node profiling
        needs the vectorized executor).
    fault_policy:
        Retry/degradation policy for fault-injected runs; defaults to the
        :class:`~repro.faults.FaultPolicy` defaults (retry twice, then
        abstain).
    fault_rng:
        The single seeded generator all fault randomness flows from.
    """

    def __init__(
        self,
        schema: Schema,
        query: ConjunctiveQuery,
        planner_factory: PlannerFactory,
        window: int = 4_000,
        replan_interval: int = 1_000,
        drift_threshold: float | None = 1.5,
        smoothing: float = 0.5,
        on_replan: Callable[[ReplanEvent], None] | None = None,
        profile_drift_threshold: float | None = None,
        profile_check_every: int = 128,
        profile_min_tuples: int = 256,
        profile_sink: ExecutionObserver | None = None,
        fault_schedule: "FaultSchedule | None" = None,
        fault_policy: "FaultPolicy | None" = None,
        fault_rng: np.random.Generator | None = None,
    ) -> None:
        if window < 2:
            raise PlanningError(f"window must be >= 2, got {window}")
        if replan_interval < 1:
            raise PlanningError(
                f"replan_interval must be >= 1, got {replan_interval}"
            )
        if drift_threshold is not None and drift_threshold <= 1.0:
            raise PlanningError(
                f"drift_threshold must exceed 1.0, got {drift_threshold}"
            )
        if profile_drift_threshold is not None and profile_drift_threshold <= 0:
            raise PlanningError(
                "profile_drift_threshold must be positive, got "
                f"{profile_drift_threshold}"
            )
        if profile_check_every < 1:
            raise PlanningError(
                f"profile_check_every must be >= 1, got {profile_check_every}"
            )
        if profile_min_tuples < 1:
            raise PlanningError(
                f"profile_min_tuples must be >= 1, got {profile_min_tuples}"
            )
        self._schema = schema
        self._query = query
        self._factory = planner_factory
        self._window = int(window)
        self._replan_interval = int(replan_interval)
        self._drift_threshold = drift_threshold
        self._smoothing = float(smoothing)
        self._on_replan = on_replan
        self._profile_drift_threshold = profile_drift_threshold
        self._profile_check_every = int(profile_check_every)
        self._profile_min_tuples = int(profile_min_tuples)
        self._profile_sink = profile_sink
        if fault_schedule is not None:
            if fault_rng is None:
                raise FaultConfigError(
                    "fault_schedule requires fault_rng: fault injection is "
                    "deterministic and seeds flow from a single generator"
                )
            if profile_drift_threshold is not None:
                raise FaultConfigError(
                    "profile_drift_threshold is unsupported under fault "
                    "injection (per-node profiling needs the vectorized "
                    "executor); use outage_replan_threshold instead"
                )
            fault_schedule.validated(schema)
        self._fault_schedule = fault_schedule
        self._fault_policy = fault_policy
        self._fault_rng = fault_rng

    def process(self, stream: np.ndarray) -> StreamReport:
        """Run the query over ``stream`` (rows in arrival order)."""
        matrix = np.asarray(stream)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise PlanningError(
                f"stream shape {matrix.shape} incompatible with schema of "
                f"{len(self._schema)} attributes"
            )
        if self._fault_schedule is not None:
            return self._process_faulted(matrix)
        total = matrix.shape[0]
        costs = np.zeros(total, dtype=np.float64)
        verdicts = np.zeros(total, dtype=bool)
        replans: list[ReplanEvent] = []

        window: deque = deque(maxlen=self._window)
        plan: PlanNode | None = None
        predicted = 0.0
        since_replan = 0
        cost_since_replan = 0.0
        profile: "PlanProfile | None" = None
        monitor: "DriftMonitor | None" = None
        observer: ExecutionObserver | None = self._profile_sink

        def swap_plan() -> None:
            nonlocal plan, predicted, profile, monitor, observer
            plan, predicted, distribution = self._replan(window)
            if self._profile_drift_threshold is not None:
                from repro.obs.drift import DriftMonitor
                from repro.obs.profile import PlanProfile, TeeSink

                profile = PlanProfile(self._schema)
                monitor = DriftMonitor(
                    plan,
                    distribution,
                    expected=predicted,
                    threshold=self._profile_drift_threshold,
                )
                observer = (
                    profile
                    if self._profile_sink is None
                    else TeeSink(profile, self._profile_sink)
                )

        # Bootstrap: collect an initial window before the first plan.
        warmup = min(self._window, self._replan_interval, total)
        for position in range(total):
            row = matrix[position]
            if plan is None:
                # During warm-up, acquire every query attribute (the
                # plan-less baseline) and record statistics.
                cost = sum(
                    self._schema[index].cost
                    for index in self._query.attribute_indices
                )
                costs[position] = cost
                verdicts[position] = self._query.evaluate(row)
                window.append(row)
                if position + 1 >= warmup:
                    swap_plan()
                    self._record(
                        replans, ReplanEvent(position + 1, predicted, "interval")
                    )
                    since_replan = 0
                    cost_since_replan = 0.0
                continue

            outcome = dataset_execution(
                plan, row[None, :], self._schema, observer=observer
            )
            costs[position] = outcome.costs[0]
            verdicts[position] = outcome.verdicts[0]
            window.append(row)
            since_replan += 1
            cost_since_replan += float(outcome.costs[0])

            drifted = (
                self._drift_threshold is not None
                and since_replan >= 50  # need a stable estimate first
                and predicted > 0.0
                and cost_since_replan / since_replan
                > self._drift_threshold * predicted
            )
            profile_score: float | None = None
            if (
                not drifted
                and monitor is not None
                and profile is not None
                and since_replan % self._profile_check_every == 0
                and profile.tuples >= self._profile_min_tuples
            ):
                assessment = monitor.assess(profile)
                if assessment.drifted:
                    profile_score = assessment.normalized
            if (
                since_replan >= self._replan_interval
                or drifted
                or profile_score is not None
            ):
                if drifted:
                    reason = "drift"
                elif profile_score is not None:
                    reason = "profile-drift"
                else:
                    reason = "interval"
                swap_plan()
                self._record(
                    replans,
                    ReplanEvent(
                        position + 1,
                        predicted,
                        reason,
                        drift_score=profile_score,
                    ),
                )
                since_replan = 0
                cost_since_replan = 0.0

        return StreamReport(
            costs=costs, verdicts=verdicts, replans=tuple(replans)
        )

    def _record(
        self, replans: list[ReplanEvent], event: ReplanEvent
    ) -> None:
        replans.append(event)
        if self._on_replan is not None:
            self._on_replan(event)

    def _replan(
        self, window: deque
    ) -> tuple[PlanNode, float, EmpiricalDistribution]:
        snapshot = np.asarray(list(window), dtype=np.int64)
        distribution = EmpiricalDistribution(
            self._schema, snapshot, smoothing=self._smoothing
        )
        planner = self._factory(distribution)
        result = planner.plan(self._query)
        return result.plan, result.expected_cost, distribution

    def _process_faulted(self, matrix: np.ndarray) -> StreamReport:
        """The fault-injected twin of :meth:`process`.

        One :class:`~repro.faults.FaultInjector` serves the whole stream
        (outages span tuples, budgets deplete run-wide); degradation runs
        through :class:`~repro.faults.FaultTolerantExecutor`, rebuilt at
        each replan so IMPUTE marginals track the window distribution.
        Sustained outages — a fraction of recent tuples with at least one
        failed acquisition above the policy's threshold — trigger an
        ``"outage"`` replan.
        """
        from repro.execution.acquisition import TupleSource
        from repro.faults.executor import FaultTolerantExecutor
        from repro.faults.injector import FaultInjector
        from repro.faults.policy import FaultPolicy

        assert self._fault_schedule is not None
        assert self._fault_rng is not None
        policy = (
            self._fault_policy if self._fault_policy is not None else FaultPolicy()
        )
        total = matrix.shape[0]
        costs = np.zeros(total, dtype=np.float64)
        verdicts = np.zeros(total, dtype=bool)
        abstained = np.zeros(total, dtype=bool)
        replans: list[ReplanEvent] = []
        tuples_degraded = 0

        window: deque = deque(maxlen=self._window)
        fail_window: deque = deque(maxlen=policy.outage_window)
        plan: PlanNode | None = None
        predicted = 0.0
        since_replan = 0
        cost_since_replan = 0.0
        executor = FaultTolerantExecutor(self._schema, policy, query=self._query)
        injector: FaultInjector | None = None

        def swap_plan() -> None:
            nonlocal plan, predicted, executor
            plan, predicted, distribution = self._replan(window)
            executor = FaultTolerantExecutor(
                self._schema, policy, query=self._query, distribution=distribution
            )

        warmup = min(self._window, self._replan_interval, total)
        for position in range(total):
            row = matrix[position]
            source = TupleSource(self._schema, row)
            if injector is None:
                injector = FaultInjector(
                    source,
                    self._fault_schedule,
                    self._fault_rng,
                    retry_policy=policy.retry,
                )
            else:
                injector.rebind(source)

            if plan is None:
                verdict, failed = self._warmup_acquire(injector, policy)
                costs[position] = injector.total_cost
                verdicts[position] = verdict is True
                abstained[position] = verdict is None
                fail_window.append(failed)
                if failed:
                    tuples_degraded += 1
                window.append(row)
                if position + 1 >= warmup:
                    swap_plan()
                    self._record(
                        replans, ReplanEvent(position + 1, predicted, "interval")
                    )
                    since_replan = 0
                    cost_since_replan = 0.0
                continue

            result = executor.execute_source(plan, injector)
            costs[position] = result.cost
            verdicts[position] = result.verdict is True
            abstained[position] = result.abstained
            fail_window.append(bool(result.failed))
            if result.degraded:
                tuples_degraded += 1
            window.append(row)
            since_replan += 1
            cost_since_replan += float(result.cost)

            drifted = (
                self._drift_threshold is not None
                and since_replan >= 50
                and predicted > 0.0
                and cost_since_replan / since_replan
                > self._drift_threshold * predicted
            )
            outage = (
                policy.outage_replan_threshold is not None
                and len(fail_window) >= policy.outage_window
                and sum(fail_window) / len(fail_window)
                >= policy.outage_replan_threshold
            )
            if since_replan >= self._replan_interval or drifted or outage:
                if outage:
                    reason = "outage"
                elif drifted:
                    reason = "drift"
                else:
                    reason = "interval"
                swap_plan()
                self._record(
                    replans, ReplanEvent(position + 1, predicted, reason)
                )
                since_replan = 0
                cost_since_replan = 0.0
                if outage:
                    fail_window.clear()

        stats = StreamFaultStats(
            acquisitions_failed=(
                injector.acquisitions_failed if injector is not None else 0
            ),
            retries_total=injector.retries_total if injector is not None else 0,
            tuples_degraded=tuples_degraded,
            tuples_abstained=int(abstained.sum()),
            corruptions=injector.corruptions if injector is not None else 0,
            retry_cost=injector.run_retry_cost if injector is not None else 0.0,
        )
        return StreamReport(
            costs=costs,
            verdicts=verdicts,
            replans=tuple(replans),
            abstained=abstained,
            faults=stats,
        )

    def _warmup_acquire(
        self, injector: "FaultInjector", policy: "FaultPolicy"
    ) -> tuple[bool | None, bool]:
        """Plan-less warm-up read of every query attribute through faults.

        Mirrors the plain warm-up (acquire all query attributes, evaluate
        the query) so a zero schedule reproduces it exactly; under real
        faults a falsified predicate still decides False, otherwise any
        failed read abstains the tuple.
        """
        from repro.faults.policy import DegradationMode

        verdict: bool | None = True
        failed = False
        for predicate, index in zip(
            self._query.predicates, self._query.attribute_indices
        ):
            try:
                value = injector.acquire(index)
            except AcquisitionFailure:
                failed = True
                if policy.degradation is DegradationMode.ABSTAIN:
                    return None, True
                if verdict is True:
                    verdict = None
                continue
            if not predicate.satisfied_by(value):
                verdict = False
        return verdict, failed
