"""Adaptive planning over data streams (Section 7, "Queries over data
streams").

When query evaluation runs over a continuous stream whose distribution
drifts, a plan trained once can decay.  The paper sketches the remedy:
maintain statistics over a sliding window and periodically re-run the
(greedy) planner against them.  :class:`AdaptiveStreamExecutor` implements
that loop:

- tuples are processed with the current plan, costs metered per tuple;
- a sliding window of the most recent tuples is retained;
- every ``replan_interval`` tuples — or earlier, when the observed mean
  cost exceeds the plan's predicted cost by ``drift_threshold`` — the
  planner is re-invoked on the window and the plan swapped in-place.

With ``profile_drift_threshold`` set, the executor additionally keeps a
per-plan :class:`~repro.obs.PlanProfile` and a
:class:`~repro.obs.DriftMonitor` scoring observed branch/pass frequencies
against the plan's Eq. 3 predictions — catching *shape* drift (the
distribution moved but the plan's mean cost barely did) that the
cost-ratio trigger cannot see.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.attributes import Schema
from repro.core.cost import ExecutionObserver, dataset_execution
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.exceptions import PlanningError
from repro.planning.base import Planner
from repro.probability.empirical import EmpiricalDistribution

__all__ = ["ReplanEvent", "StreamReport", "AdaptiveStreamExecutor"]

# A factory building a planner for a freshly-fitted window distribution.
PlannerFactory = Callable[[EmpiricalDistribution], Planner]


@dataclass(frozen=True)
class ReplanEvent:
    """One plan swap: when it happened and what the new plan promised.

    ``drift_score`` carries the normalized chi-square score that fired a
    ``"profile-drift"`` replan; it is ``None`` for the other reasons.
    """

    position: int
    expected_cost: float
    reason: str  # "interval", "drift", or "profile-drift"
    drift_score: float | None = None


@dataclass(frozen=True)
class StreamReport:
    """Outcome of streaming execution."""

    costs: np.ndarray
    verdicts: np.ndarray
    replans: tuple[ReplanEvent, ...]

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean()) if self.costs.size else 0.0


class AdaptiveStreamExecutor:
    """Sliding-window replanning executor.

    Parameters
    ----------
    schema, query:
        The continuous query being evaluated.
    planner_factory:
        Builds a planner from an :class:`EmpiricalDistribution` fitted on
        the current window (e.g. ``lambda dist:
        GreedyConditionalPlanner(dist, CorrSeqPlanner(dist), max_splits=5)``).
    window:
        Sliding-window length (tuples) used to fit statistics.
    replan_interval:
        Re-plan after this many tuples since the last plan swap.
    drift_threshold:
        Re-plan early when the observed mean cost since the last swap
        exceeds the plan's predicted expected cost by this multiplicative
        factor.  ``None`` disables drift-triggered replanning.
    smoothing:
        Laplace smoothing for the window distributions (small windows make
        raw counts noisy).
    on_replan:
        Optional callback invoked with each :class:`ReplanEvent` as the
        plan is swapped — serving layers hook this to invalidate cached
        plans the moment the stream's statistics move.
    profile_drift_threshold:
        Enables per-node profile-drift replanning: the current plan's
        observed split/pass frequencies are scored against its Eq. 3
        predictions (see :class:`repro.obs.DriftMonitor`), and a
        normalized score above this threshold triggers a
        ``"profile-drift"`` replan.  ``None`` (default) disables the
        profile machinery entirely.
    profile_check_every:
        Assess drift every this many tuples (scoring walks the whole
        profile, so per-tuple assessment would dominate).
    profile_min_tuples:
        Do not assess until the current plan has profiled at least this
        many tuples (small samples make the chi-square score noisy).
    profile_sink:
        Optional extra :class:`~repro.core.cost.ExecutionObserver` that
        receives every execution event across all plans (on top of the
        internal per-plan profiles).
    """

    def __init__(
        self,
        schema: Schema,
        query: ConjunctiveQuery,
        planner_factory: PlannerFactory,
        window: int = 4_000,
        replan_interval: int = 1_000,
        drift_threshold: float | None = 1.5,
        smoothing: float = 0.5,
        on_replan: Callable[[ReplanEvent], None] | None = None,
        profile_drift_threshold: float | None = None,
        profile_check_every: int = 128,
        profile_min_tuples: int = 256,
        profile_sink: ExecutionObserver | None = None,
    ) -> None:
        if window < 2:
            raise PlanningError(f"window must be >= 2, got {window}")
        if replan_interval < 1:
            raise PlanningError(
                f"replan_interval must be >= 1, got {replan_interval}"
            )
        if drift_threshold is not None and drift_threshold <= 1.0:
            raise PlanningError(
                f"drift_threshold must exceed 1.0, got {drift_threshold}"
            )
        if profile_drift_threshold is not None and profile_drift_threshold <= 0:
            raise PlanningError(
                "profile_drift_threshold must be positive, got "
                f"{profile_drift_threshold}"
            )
        if profile_check_every < 1:
            raise PlanningError(
                f"profile_check_every must be >= 1, got {profile_check_every}"
            )
        if profile_min_tuples < 1:
            raise PlanningError(
                f"profile_min_tuples must be >= 1, got {profile_min_tuples}"
            )
        self._schema = schema
        self._query = query
        self._factory = planner_factory
        self._window = int(window)
        self._replan_interval = int(replan_interval)
        self._drift_threshold = drift_threshold
        self._smoothing = float(smoothing)
        self._on_replan = on_replan
        self._profile_drift_threshold = profile_drift_threshold
        self._profile_check_every = int(profile_check_every)
        self._profile_min_tuples = int(profile_min_tuples)
        self._profile_sink = profile_sink

    def process(self, stream: np.ndarray) -> StreamReport:
        """Run the query over ``stream`` (rows in arrival order)."""
        matrix = np.asarray(stream)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise PlanningError(
                f"stream shape {matrix.shape} incompatible with schema of "
                f"{len(self._schema)} attributes"
            )
        total = matrix.shape[0]
        costs = np.zeros(total, dtype=np.float64)
        verdicts = np.zeros(total, dtype=bool)
        replans: list[ReplanEvent] = []

        window: deque = deque(maxlen=self._window)
        plan: PlanNode | None = None
        predicted = 0.0
        since_replan = 0
        cost_since_replan = 0.0
        profile: "PlanProfile | None" = None
        monitor: "DriftMonitor | None" = None
        observer: ExecutionObserver | None = self._profile_sink

        def swap_plan() -> None:
            nonlocal plan, predicted, profile, monitor, observer
            plan, predicted, distribution = self._replan(window)
            if self._profile_drift_threshold is not None:
                from repro.obs.drift import DriftMonitor
                from repro.obs.profile import PlanProfile, TeeSink

                profile = PlanProfile(self._schema)
                monitor = DriftMonitor(
                    plan,
                    distribution,
                    expected=predicted,
                    threshold=self._profile_drift_threshold,
                )
                observer = (
                    profile
                    if self._profile_sink is None
                    else TeeSink(profile, self._profile_sink)
                )

        # Bootstrap: collect an initial window before the first plan.
        warmup = min(self._window, self._replan_interval, total)
        for position in range(total):
            row = matrix[position]
            if plan is None:
                # During warm-up, acquire every query attribute (the
                # plan-less baseline) and record statistics.
                cost = sum(
                    self._schema[index].cost
                    for index in self._query.attribute_indices
                )
                costs[position] = cost
                verdicts[position] = self._query.evaluate(row)
                window.append(row)
                if position + 1 >= warmup:
                    swap_plan()
                    self._record(
                        replans, ReplanEvent(position + 1, predicted, "interval")
                    )
                    since_replan = 0
                    cost_since_replan = 0.0
                continue

            outcome = dataset_execution(
                plan, row[None, :], self._schema, observer=observer
            )
            costs[position] = outcome.costs[0]
            verdicts[position] = outcome.verdicts[0]
            window.append(row)
            since_replan += 1
            cost_since_replan += float(outcome.costs[0])

            drifted = (
                self._drift_threshold is not None
                and since_replan >= 50  # need a stable estimate first
                and predicted > 0.0
                and cost_since_replan / since_replan
                > self._drift_threshold * predicted
            )
            profile_score: float | None = None
            if (
                not drifted
                and monitor is not None
                and profile is not None
                and since_replan % self._profile_check_every == 0
                and profile.tuples >= self._profile_min_tuples
            ):
                assessment = monitor.assess(profile)
                if assessment.drifted:
                    profile_score = assessment.normalized
            if (
                since_replan >= self._replan_interval
                or drifted
                or profile_score is not None
            ):
                if drifted:
                    reason = "drift"
                elif profile_score is not None:
                    reason = "profile-drift"
                else:
                    reason = "interval"
                swap_plan()
                self._record(
                    replans,
                    ReplanEvent(
                        position + 1,
                        predicted,
                        reason,
                        drift_score=profile_score,
                    ),
                )
                since_replan = 0
                cost_since_replan = 0.0

        return StreamReport(
            costs=costs, verdicts=verdicts, replans=tuple(replans)
        )

    def _record(
        self, replans: list[ReplanEvent], event: ReplanEvent
    ) -> None:
        replans.append(event)
        if self._on_replan is not None:
            self._on_replan(event)

    def _replan(
        self, window: deque
    ) -> tuple[PlanNode, float, EmpiricalDistribution]:
        snapshot = np.asarray(list(window), dtype=np.int64)
        distribution = EmpiricalDistribution(
            self._schema, snapshot, smoothing=self._smoothing
        )
        planner = self._factory(distribution)
        result = planner.plan(self._query)
        return result.plan, result.expected_cost, distribution
