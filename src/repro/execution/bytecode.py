"""Compilation of plans to the compact on-mote byte format.

The architecture of Section 2.5 ships plans from the basestation into the
network, and Section 2.4's dissemination cost ``zeta(P)`` prices them by
the byte.  :meth:`~repro.core.plan.PlanNode.size_bytes` documents the
encoding this module actually implements, so

    len(compile_plan(plan)) == plan.size_bytes()

holds exactly — the cost model's unit is a real wire format, not a guess.
A matching :class:`ByteCodeInterpreter` executes compiled plans with the
same tiny state machine a mote would run (sequential reads, no recursion
beyond the tree walk), and :func:`decompile_plan` reconstructs the plan
tree, giving a lossless round-trip.

Wire format (big-endian):

- every node starts with a *kind/attr* byte: the top 2 bits select the
  node kind, the low 6 bits carry a small payload;
- ``CONDITION`` (kind 0): low bits = attribute index (< 64), then split
  value ``u16``, absolute offsets of the below and above children
  ``u16 u16`` — 7 bytes;
- ``SEQUENTIAL`` (kind 1): low bits unused, then step count ``u8`` —
  2 bytes of header — followed by 6-byte steps: attribute ``u8``, low
  ``u16``, high ``u16``, flags ``u8`` (bit 0 = negated);
- ``VERDICT`` (kind 2): low bit 0 = verdict — 1 byte.
"""

from __future__ import annotations

import struct
from typing import Callable, Sequence

from repro.core.attributes import Schema
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.core.predicates import NotRangePredicate, RangePredicate
from repro.exceptions import PlanError

__all__ = ["compile_plan", "decompile_plan", "ByteCodeInterpreter"]

_KIND_CONDITION = 0
_KIND_SEQUENTIAL = 1
_KIND_VERDICT = 2

_MAX_CONDITION_ATTR = 0x3F  # 6 payload bits
_MAX_OFFSET = 0xFFFF
_MAX_STEPS = 0xFF
_FLAG_NEGATED = 0x01


def compile_plan(plan: PlanNode) -> bytes:
    """Serialize a plan to the compact dissemination format.

    The output length equals ``plan.size_bytes()`` by construction; the
    compiler raises :class:`~repro.exceptions.PlanError` for plans that
    exceed the format's limits (attribute index >= 64 at condition nodes,
    offsets beyond 64 KiB, more than 255 steps in one leaf).
    """
    total = plan.size_bytes()
    if total > _MAX_OFFSET:
        raise PlanError(
            f"plan of {total} bytes exceeds the 64 KiB dissemination format"
        )
    buffer = bytearray(total)
    _emit(plan, buffer, 0)
    return bytes(buffer)


def _emit(node: PlanNode, buffer: bytearray, address: int) -> int:
    """Write ``node`` at ``address``; return the next free address."""
    if isinstance(node, VerdictLeaf):
        buffer[address] = (_KIND_VERDICT << 6) | int(node.verdict)
        return address + 1
    if isinstance(node, SequentialNode):
        steps = node.steps
        if len(steps) > _MAX_STEPS:
            raise PlanError(f"sequential leaf with {len(steps)} steps (max 255)")
        buffer[address] = _KIND_SEQUENTIAL << 6
        buffer[address + 1] = len(steps)
        cursor = address + 2
        for step in steps:
            predicate = step.predicate
            low = getattr(predicate, "low", None)
            high = getattr(predicate, "high", None)
            if low is None or high is None:
                raise PlanError(
                    f"cannot compile predicate {predicate.describe()!r}: "
                    "only (negated) range predicates have a wire encoding"
                )
            if step.attribute_index > 0xFF:
                raise PlanError("step attribute index exceeds u8")
            flags = (
                _FLAG_NEGATED
                if isinstance(predicate, NotRangePredicate)
                else 0
            )
            struct.pack_into(
                ">BHHB", buffer, cursor, step.attribute_index, low, high, flags
            )
            cursor += 6
        return cursor
    if isinstance(node, ConditionNode):
        if node.attribute_index > _MAX_CONDITION_ATTR:
            raise PlanError(
                f"condition attribute index {node.attribute_index} exceeds "
                f"the format's 6-bit field"
            )
        below_address = address + 7
        above_address = below_address + node.below.size_bytes()
        if above_address > _MAX_OFFSET:
            raise PlanError("child offset exceeds the 64 KiB format")
        buffer[address] = (_KIND_CONDITION << 6) | node.attribute_index
        struct.pack_into(
            ">HHH",
            buffer,
            address + 1,
            node.split_value,
            below_address,
            above_address,
        )
        end = _emit(node.below, buffer, below_address)
        if end != above_address:
            raise PlanError(
                "internal compiler error: size model and emitted bytes disagree"
            )
        return _emit(node.above, buffer, above_address)
    raise PlanError(f"unknown plan node type {type(node).__name__}")


def decompile_plan(bytecode: bytes, schema: Schema) -> PlanNode:
    """Reconstruct a plan tree from :func:`compile_plan` output."""
    node, _end = _parse(bytecode, 0, schema)
    return node


def _parse(bytecode: bytes, address: int, schema: Schema) -> tuple[PlanNode, int]:
    if address >= len(bytecode):
        raise PlanError(f"bytecode truncated at offset {address}")
    head = bytecode[address]
    kind = head >> 6
    if kind == _KIND_VERDICT:
        return VerdictLeaf(verdict=bool(head & 0x01)), address + 1
    if kind == _KIND_SEQUENTIAL:
        count = bytecode[address + 1]
        cursor = address + 2
        steps = []
        for _step_number in range(count):
            attribute_index, low, high, flags = struct.unpack_from(
                ">BHHB", bytecode, cursor
            )
            predicate_cls = (
                NotRangePredicate if flags & _FLAG_NEGATED else RangePredicate
            )
            predicate = predicate_cls(
                attribute=schema[attribute_index].name, low=low, high=high
            )
            steps.append(
                SequentialStep(
                    predicate=predicate, attribute_index=attribute_index
                )
            )
            cursor += 6
        return SequentialNode(steps=tuple(steps)), cursor
    if kind == _KIND_CONDITION:
        attribute_index = head & _MAX_CONDITION_ATTR
        split_value, below_address, above_address = struct.unpack_from(
            ">HHH", bytecode, address + 1
        )
        below, _below_end = _parse(bytecode, below_address, schema)
        above, end = _parse(bytecode, above_address, schema)
        return (
            ConditionNode(
                attribute=schema[attribute_index].name,
                attribute_index=attribute_index,
                split_value=split_value,
                below=below,
                above=above,
            ),
            end,
        )
    raise PlanError(f"unknown node kind {kind} at offset {address}")


class ByteCodeInterpreter:
    """Executes compiled plans the way a mote would.

    The interpreter walks the byte format directly — no tree objects — so
    its memory footprint is the bytecode plus a handful of registers,
    matching the constrained-device story of Section 2.5.
    """

    def __init__(self, bytecode: bytes) -> None:
        if not bytecode:
            raise PlanError("empty bytecode")
        self._code = bytes(bytecode)

    @property
    def size_bytes(self) -> int:
        return len(self._code)

    def execute(
        self,
        values: Sequence[int],
        on_acquire: Callable[[int], None] | None = None,
    ) -> bool:
        """Run the plan on one tuple; returns the query verdict.

        ``on_acquire`` fires on each *first* read of an attribute, exactly
        like :meth:`~repro.core.plan.PlanNode.evaluate` — the two must agree
        on every input (tested property).
        """
        code = self._code
        acquired: set[int] = set()

        def read(index: int) -> int:
            if index not in acquired:
                acquired.add(index)
                if on_acquire is not None:
                    on_acquire(index)
            return values[index]

        address = 0
        while True:
            head = code[address]
            kind = head >> 6
            if kind == _KIND_VERDICT:
                return bool(head & 0x01)
            if kind == _KIND_CONDITION:
                attribute_index = head & _MAX_CONDITION_ATTR
                split_value, below_address, above_address = struct.unpack_from(
                    ">HHH", code, address + 1
                )
                if read(attribute_index) >= split_value:
                    address = above_address
                else:
                    address = below_address
                continue
            if kind == _KIND_SEQUENTIAL:
                count = code[address + 1]
                cursor = address + 2
                for _step_number in range(count):
                    attribute_index, low, high, flags = struct.unpack_from(
                        ">BHHB", code, cursor
                    )
                    inside = low <= read(attribute_index) <= high
                    satisfied = not inside if flags & _FLAG_NEGATED else inside
                    if not satisfied:
                        return False
                    cursor += 6
                return True
            raise PlanError(f"unknown node kind {kind} at offset {address}")
