"""Execution substrate: per-tuple executors, cost models, the
sensor-network simulator, and streaming/adaptive replanning."""

from repro.execution.acquisition import (
    AcquisitionSource,
    SensorBoardSource,
    TupleSource,
)
from repro.execution.bytecode import (
    ByteCodeInterpreter,
    compile_plan,
    decompile_plan,
)
from repro.execution.executor import (
    ExecutionResult,
    PlanExecutor,
    VerificationReport,
)
from repro.execution.simulator import (
    LifetimeReport,
    Mote,
    SensorNetworkSimulator,
    SimulationReport,
)
from repro.execution.streaming import (
    AdaptiveStreamExecutor,
    ReplanEvent,
    StreamFaultStats,
    StreamReport,
)

__all__ = [
    "AcquisitionSource",
    "TupleSource",
    "SensorBoardSource",
    "PlanExecutor",
    "compile_plan",
    "decompile_plan",
    "ByteCodeInterpreter",
    "ExecutionResult",
    "VerificationReport",
    "Mote",
    "LifetimeReport",
    "SensorNetworkSimulator",
    "SimulationReport",
    "AdaptiveStreamExecutor",
    "ReplanEvent",
    "StreamFaultStats",
    "StreamReport",
]
