"""CorrSeq: the evaluation's correlation-aware sequential baseline.

Section 6 defines CorrSeq as "sequential plan chosen by considering data
correlations": OptSeq when the number of predicates is small enough for the
``O(m * 2**m)`` DP (the Lab dataset), GreedySeq otherwise (Garden and the
larger synthetic settings).  This wrapper encodes that dispatch so
benchmarks and the conditional heuristic can use one base planner across
datasets of any size.
"""

from __future__ import annotations

from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.planning.base import SequentialPlanner
from repro.planning.greedy_sequential import GreedySequentialPlanner
from repro.planning.optimal_sequential import OptimalSequentialPlanner
from repro.probability.base import Distribution

__all__ = ["CorrSeqPlanner"]


class CorrSeqPlanner(SequentialPlanner):
    """OptSeq for small queries, GreedySeq beyond ``optimal_threshold``."""

    name = "corr-seq"

    def __init__(
        self,
        distribution: Distribution,
        optimal_threshold: int = 10,
        cost_model=None,
    ) -> None:
        super().__init__(distribution, cost_model)
        self._optimal_threshold = int(optimal_threshold)
        self._optimal = OptimalSequentialPlanner(distribution, cost_model)
        self._greedy = GreedySequentialPlanner(distribution, cost_model)

    @property
    def optimal_threshold(self) -> int:
        return self._optimal_threshold

    def plan_sequence(
        self, query: ConjunctiveQuery, ranges: RangeVector
    ) -> tuple[float, PlanNode]:
        undetermined = len(query.undetermined_predicates(ranges))
        if undetermined <= self._optimal_threshold:
            return self._optimal.plan_sequence(query, ranges)
        return self._greedy.plan_sequence(query, ranges)
