"""ExhaustivePlan: the optimal conditional planner (Section 3.2, Figure 5).

A depth-first dynamic program over range subproblems.  Splitting on
``T(X_i >= x)`` divides ``Subproblem(phi, R_1..R_n)`` into two independent
subproblems whose optimal costs combine by Equation 5:

    J(R) = min over (i, x) of  C'_i + P(X_i < x | R) * J(R with [a, x-1])
                                    + P(X_i >= x | R) * J(R with [x, b])

with base case ``J = 0`` once the ranges determine the truth of ``phi``.
Subproblem results are memoized (the ranges *are* the DP key) and branches
whose partial cost already exceeds the best-known bound are pruned.

Deviation from Figure 5's pseudo-code, documented in DESIGN.md: when
recursing into a branch taken with probability ``p`` we pass the bound
``(limit - partial) / p`` rather than ``limit - partial``.  Since the branch
contributes ``p * J_child`` to the total, a child can only improve the
candidate when ``J_child < (limit - partial) / p``; the undivided bound of
the pseudo-code can prune children that are still viable (for ``p < 1`` it
is *tighter* than necessary), making the search potentially sub-optimal.
The divided bound is the sound version of the same idea.  Pruned results are
never cached, exactly as the pseudo-code prescribes.

The worst-case complexity is ``O(n*K*K**(2n))`` subproblem expansions
(Section 3.2), so this planner is only feasible for small attribute counts
and domains — the paper draws the same conclusion and uses it as the gold
standard that the greedy heuristic is measured against (Figure 8).
"""

from __future__ import annotations

import math

from repro.analysis.certificates import CostCertificate, certify_plan
from repro.analysis.rewrite import optimize_plan
from repro.core.cost import expected_cost
from repro.core.plan import ConditionNode, PlanNode, VerdictLeaf
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanningError
from repro.planning.base import (
    Planner,
    PlannerStats,
    PlanningResult,
    effective_cost,
    resolved_leaf,
    sequential_node_from_order,
    split_probabilities,
)
from repro.planning.split_points import SplitPointPolicy
from repro.probability.base import Distribution

__all__ = ["ExhaustivePlanner"]


class ExhaustivePlanner(Planner):
    """Optimal conditional plans via exhaustive dynamic programming.

    Parameters
    ----------
    distribution:
        Probability model supplying Equation 5's conditionals.
    split_policy:
        Candidate split points (Section 4.3).  Defaults to every interior
        domain value; either way, query predicate boundaries are merged in
        at planning time so every predicate remains decidable.
    max_subproblems:
        Safety valve: the search aborts with
        :class:`~repro.exceptions.PlanningError` after expanding this many
        distinct subproblems, since the state space is exponential.
    """

    name = "exhaustive"

    def __init__(
        self,
        distribution: Distribution,
        split_policy: SplitPointPolicy | None = None,
        max_subproblems: int = 2_000_000,
        cost_model=None,
    ) -> None:
        super().__init__(distribution, cost_model)
        self._split_policy = split_policy
        self._max_subproblems = int(max_subproblems)

    def plan(self, query: ConjunctiveQuery) -> PlanningResult:
        schema = self.schema
        policy = self._split_policy or SplitPointPolicy.full(schema)
        policy = policy.with_query_boundaries(query)
        search = _Search(
            query=query,
            distribution=self.distribution,
            policy=policy,
            max_subproblems=self._max_subproblems,
            cost_model=self.cost_model,
        )
        full = RangeVector.full(schema)
        result = search.run(full)
        if result is None:
            raise PlanningError("exhaustive search failed to produce a plan")
        cost, plan = result
        certificate = search.certificate(plan, full)
        optimized = optimize_plan(plan, schema, query=query)
        if optimized != plan:
            # The rewriter only ever shrinks (free-split ties, subsumed
            # fallback steps); re-derive the cost and certificate for the
            # new shape so both stay verifier-exact.
            plan = optimized
            cost = expected_cost(plan, self.distribution, cost_model=self.cost_model)
            certificate = certify_plan(
                plan, self.distribution, cost_model=self.cost_model
            )
        return PlanningResult(
            plan=plan,
            expected_cost=cost,
            planner=self.name,
            stats=search.stats,
            certificate=certificate,
        )


class _Search:
    """One exhaustive planning run: memo cache, stats, and the DFS itself."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        distribution: Distribution,
        policy: SplitPointPolicy,
        max_subproblems: int,
        cost_model=None,
    ) -> None:
        self._query = query
        self._distribution = distribution
        self._policy = policy
        self._cost_model = cost_model
        self._max_subproblems = max_subproblems
        self._schema = distribution.schema
        self._cache: dict[RangeVector, tuple[float, PlanNode]] = {}
        # Figure 5 caches only optimal results; pruned searches would
        # otherwise be repeated from scratch on every revisit.  We
        # additionally remember the *certificate* a pruned search produces
        # (optimal cost >= bound), which lets later visits with an equal or
        # smaller bound prune instantly without weakening optimality.
        self._lower_bounds: dict[RangeVector, float] = {}
        self.stats = PlannerStats()

    def run(self, ranges: RangeVector) -> tuple[float, PlanNode] | None:
        return self._search(ranges, math.inf)

    def certificate(self, plan: PlanNode, ranges: RangeVector) -> CostCertificate:
        """Export Eq. 5 cost bounds for ``plan`` straight from the DP cache.

        Every live subtree the search emitted is the cached optimum for
        its subproblem, so its cached cost doubles as a *certified*
        expected-cost claim.  Verdict leaves claim zero; the
        zero-probability fallback subtrees (never searched) claim
        nothing.
        """
        bounds: dict[str, float] = {}

        def walk(node: PlanNode, node_ranges: RangeVector, path: str) -> None:
            if isinstance(node, VerdictLeaf):
                bounds[path] = 0.0
            else:
                cached = self._cache.get(node_ranges)
                if cached is not None and cached[1] == node:
                    bounds[path] = cached[0]
            if isinstance(node, ConditionNode):
                below_ranges, above_ranges = node_ranges.split(
                    node.attribute_index, node.split_value
                )
                walk(node.below, below_ranges, path + "/below")
                walk(node.above, above_ranges, path + "/above")

        walk(plan, ranges, "root")
        return CostCertificate(bounds=bounds, source="exhaustive-dp")

    def _search(
        self, ranges: RangeVector, bound: float
    ) -> tuple[float, PlanNode] | None:
        """Optimal (cost, plan) for the subproblem, or None when its optimal
        cost is provably >= ``bound``."""
        leaf = resolved_leaf(self._query, ranges)
        if leaf is not None:
            return (0.0, leaf) if bound > 0.0 else None

        cached = self._cache.get(ranges)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached if cached[0] < bound else None
        lower_bound = self._lower_bounds.get(ranges)
        if lower_bound is not None and lower_bound >= bound:
            self.stats.pruned += 1
            return None

        self.stats.subproblems += 1
        if self.stats.subproblems > self._max_subproblems:
            raise PlanningError(
                f"exhaustive search exceeded {self._max_subproblems} "
                "subproblems; shrink the domains or use the greedy heuristic"
            )

        best_cost = bound
        best_plan: PlanNode | None = None
        schema = self._schema
        for index in range(len(schema)):
            acquisition = effective_cost(schema, ranges, index, self._cost_model)
            if acquisition >= best_cost:
                continue
            candidates = self._policy.candidates(index, ranges)
            probabilities = split_probabilities(
                self._distribution, index, candidates, ranges
            )
            for split_value, probability_below in zip(candidates, probabilities):
                self.stats.splits_considered += 1
                candidate = self._evaluate_split(
                    ranges, index, split_value, probability_below,
                    acquisition, best_cost,
                )
                if candidate is not None and candidate[0] < best_cost:
                    best_cost, best_plan = candidate

        if best_plan is None:
            self.stats.pruned += 1
            if bound != math.inf:
                previous = self._lower_bounds.get(ranges, 0.0)
                if bound > previous:
                    self._lower_bounds[ranges] = bound
            return None
        # best_cost < bound here, so every skipped candidate was proven to
        # cost at least best_cost: the result is the true optimum and safe
        # to cache (Figure 5 caches only optimal, never pruned, results).
        self._cache[ranges] = (best_cost, best_plan)
        return best_cost, best_plan

    def _evaluate_split(
        self,
        ranges: RangeVector,
        index: int,
        split_value: int,
        probability_below: float,
        acquisition: float,
        limit: float,
    ) -> tuple[float, PlanNode] | None:
        """Cost and plan of splitting at (index, split_value), or None when
        the split provably cannot beat ``limit``."""
        below_ranges, above_ranges = ranges.split(index, split_value)
        partial = acquisition

        below_plan = self._branch_plan(below_ranges, probability_below)
        if probability_below > 0.0:
            child_bound = (limit - partial) / probability_below
            result = self._search(below_ranges, child_bound)
            if result is None:
                return None
            partial += probability_below * result[0]
            below_plan = result[1]
            if partial >= limit:
                return None

        probability_above = 1.0 - probability_below
        above_plan = self._branch_plan(above_ranges, probability_above)
        if probability_above > 0.0:
            child_bound = (limit - partial) / probability_above
            result = self._search(above_ranges, child_bound)
            if result is None:
                return None
            partial += probability_above * result[0]
            above_plan = result[1]
            if partial >= limit:
                return None

        attribute = self._schema[index]
        plan = ConditionNode(
            attribute=attribute.name,
            attribute_index=index,
            split_value=split_value,
            below=below_plan,
            above=above_plan,
        )
        return partial, plan

    def _branch_plan(self, ranges: RangeVector, probability: float) -> PlanNode:
        """Placeholder plan for a branch the model says is unreachable.

        Zero-probability branches contribute nothing to expected cost, but a
        deployed plan may still reach them when the live distribution drifts
        from the training data; a fallback that evaluates the remaining
        predicates keeps execution *correct* in all cases (the paper's
        correctness guarantee, Section 8).  Conjunctive queries get a
        cheapest-first sequential plan; arbitrary boolean queries get a
        deterministic resolution tree, since sequential (fail-fast) leaves
        carry conjunctive semantics only.
        """
        if probability > 0.0:
            # The real subplan is computed by the caller; this value is a
            # placeholder that is always overwritten.
            return resolved_leaf(self._query, ranges) or sequential_node_from_order([])
        leaf = resolved_leaf(self._query, ranges)
        if leaf is not None:
            return leaf
        if isinstance(self._query, ConjunctiveQuery):
            remaining = query_order_by_cost(self._query, ranges, self._schema)
            return sequential_node_from_order(remaining)
        return deterministic_resolution_tree(self._query, ranges, self._schema)


def query_order_by_cost(query: ConjunctiveQuery, ranges: RangeVector, schema):
    """Undetermined predicates ordered cheapest-attribute-first."""
    remaining = query.undetermined_predicates(ranges)
    remaining.sort(key=lambda binding: effective_cost(schema, ranges, binding[1]))
    return remaining


def deterministic_resolution_tree(query, ranges: RangeVector, schema) -> PlanNode:
    """A condition-node tree that decides ``query`` with no statistics.

    Repeatedly splits the cheapest undetermined predicate's attribute at
    its decision boundary until the ranges determine the query — a
    probability-free safety net for branches the training data claims are
    unreachable.  Works for any query exposing ``truth_under`` and
    ``undetermined_predicates`` (conjunctive or boolean).
    """
    leaf = resolved_leaf(query, ranges)
    if leaf is not None:
        return leaf
    remaining = query.undetermined_predicates(ranges)
    remaining.sort(key=lambda binding: effective_cost(schema, ranges, binding[1]))
    predicate, index = remaining[0]
    interval = ranges[index]
    split_value = _resolution_split(predicate, interval)
    below_ranges, above_ranges = ranges.split(index, split_value)
    return ConditionNode(
        attribute=schema[index].name,
        attribute_index=index,
        split_value=split_value,
        below=deterministic_resolution_tree(query, below_ranges, schema),
        above=deterministic_resolution_tree(query, above_ranges, schema),
    )


def _resolution_split(predicate, interval) -> int:
    """A split value that makes progress towards deciding ``predicate``."""
    low = getattr(predicate, "low", None)
    high = getattr(predicate, "high", None)
    if low is not None and interval.low < low <= interval.high:
        return low
    if high is not None and interval.low < high + 1 <= interval.high:
        return high + 1
    # Generic predicate (or boundaries outside the range): peel one value.
    return interval.low + 1
