"""Planner interfaces and shared helpers.

Two planner shapes exist in the paper:

- *sequential* planners (Section 4.1) produce a fixed predicate order for a
  subproblem — they implement :class:`SequentialPlanner.plan_sequence` and
  double as the leaf builders inside the conditional planners;
- *conditional* planners (Sections 3.2 and 4.2) produce full decision trees
  and implement only :class:`Planner.plan`.

Both report a :class:`PlanningResult` carrying the plan, its expected cost
under the planner's probability model, and search statistics.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import PlanNode, SequentialNode, SequentialStep, VerdictLeaf
from repro.core.predicates import Truth
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanningError
from repro.probability.base import Distribution, PredicateBinding

if TYPE_CHECKING:
    from repro.analysis.certificates import CostCertificate
    from repro.learn.bandit import LearnedProvenance

__all__ = [
    "PlannerStats",
    "PlanningResult",
    "Planner",
    "SequentialPlanner",
    "effective_cost",
    "resolved_leaf",
    "sequential_node_from_order",
    "require_conjunctive",
    "split_probabilities",
]


@dataclass
class PlannerStats:
    """Search-effort counters populated while planning."""

    subproblems: int = 0
    cache_hits: int = 0
    pruned: int = 0
    splits_considered: int = 0
    sequential_plans_built: int = 0

    def merge(self, other: "PlannerStats") -> None:
        self.subproblems += other.subproblems
        self.cache_hits += other.cache_hits
        self.pruned += other.pruned
        self.splits_considered += other.splits_considered
        self.sequential_plans_built += other.sequential_plans_built


@dataclass(frozen=True)
class PlanningResult:
    """The outcome of one planning run.

    ``planning_seconds`` is the wall-clock cost of producing the plan —
    zero unless the run went through :meth:`Planner.plan_timed`.  Serving
    layers use it to report planning-vs-execution latency and to decide
    whether a plan is worth caching.  ``certificate`` (when the planner
    issues one) carries per-subtree Eq. 3 cost-bound claims the verifier
    re-derives independently (``DF101``); the exhaustive planner exports
    it straight from its DP cache.  ``provenance`` is populated by the
    learned planner (:class:`repro.learn.BanditPlanner`): the arm
    posteriors and regret-ledger snapshot behind the emitted plan, which
    the verifier's ``LRN`` rule family audits.
    """

    plan: PlanNode
    expected_cost: float
    planner: str
    stats: PlannerStats = field(default_factory=PlannerStats)
    planning_seconds: float = 0.0
    certificate: "CostCertificate | None" = None
    provenance: "LearnedProvenance | None" = None


class Planner(ABC):
    """A query planner bound to a probability model.

    ``cost_model`` optionally replaces the schema's flat per-attribute
    costs with a Section 7 conditional cost model (e.g. shared sensor-board
    power-up); ``None`` keeps the paper's base model.
    """

    name = "planner"

    def __init__(
        self,
        distribution: Distribution,
        cost_model: AcquisitionCostModel | None = None,
    ) -> None:
        self._distribution = distribution
        self._cost_model = cost_model

    @property
    def distribution(self) -> Distribution:
        return self._distribution

    @property
    def cost_model(self) -> AcquisitionCostModel | None:
        return self._cost_model

    @property
    def schema(self):
        return self._distribution.schema

    @abstractmethod
    def plan(self, query: ConjunctiveQuery) -> PlanningResult:
        """Produce a plan for ``query`` over the full attribute space."""

    def plan_timed(self, query: ConjunctiveQuery) -> PlanningResult:
        """:meth:`plan`, with wall-clock planning cost stamped on the result."""
        start = time.perf_counter()
        result = self.plan(query)
        return replace(
            result, planning_seconds=time.perf_counter() - start
        )


class SequentialPlanner(Planner):
    """A planner whose plans are predicate orders (no conditioning splits)."""

    @abstractmethod
    def plan_sequence(
        self, query: ConjunctiveQuery, ranges: RangeVector
    ) -> tuple[float, PlanNode]:
        """Best sequential plan for the subproblem ``ranges``.

        Returns ``(expected_cost, plan)`` where the cost is conditioned on
        the subproblem (Equation 3 evaluated under the planner's
        distribution) and the plan is a :class:`SequentialNode` — or a
        :class:`VerdictLeaf` when the ranges already determine the query.
        """

    def plan(self, query: ConjunctiveQuery) -> PlanningResult:
        require_conjunctive(query)
        ranges = RangeVector.full(self.schema)
        cost, node = self.plan_sequence(query, ranges)
        stats = PlannerStats(sequential_plans_built=1)
        return PlanningResult(
            plan=node, expected_cost=cost, planner=self.name, stats=stats
        )


def require_conjunctive(query) -> None:
    """Reject non-conjunctive queries where fail-fast semantics apply.

    Sequential plans reject a tuple at the first failing predicate, which
    is only sound for conjunctions; boolean formulas must go through the
    exhaustive planner (Section 3.1 vs Section 4.1).
    """
    if not isinstance(query, ConjunctiveQuery):
        raise PlanningError(
            f"{type(query).__name__} is not conjunctive; sequential and "
            "heuristic planners require ConjunctiveQuery — use "
            "ExhaustivePlanner for boolean formulas"
        )


def effective_cost(
    schema,
    ranges: RangeVector,
    attribute_index: int,
    cost_model: AcquisitionCostModel | None = None,
) -> float:
    """Acquisition cost ``C'_i`` within a subproblem (Section 3.2).

    Zero when the attribute was already acquired (its range is narrowed);
    otherwise the schema cost ``C_i`` — or, under a conditional cost model,
    the cost given the attributes the subproblem has acquired so far.
    """
    if ranges.is_acquired(attribute_index):
        return 0.0
    if cost_model is None:
        return schema[attribute_index].cost
    return cost_model.cost(attribute_index, ranges.acquired_indices())


def resolved_leaf(query: ConjunctiveQuery, ranges: RangeVector) -> VerdictLeaf | None:
    """A verdict leaf when ``ranges`` already determine the query, else None."""
    truth = query.truth_under(ranges)
    if truth is Truth.UNDETERMINED:
        return None
    return VerdictLeaf(verdict=truth is Truth.TRUE)


def sequential_node_from_order(
    order: list[PredicateBinding],
) -> SequentialNode:
    """Wrap an ordered list of predicate bindings as a plan node."""
    steps = tuple(
        SequentialStep(predicate=predicate, attribute_index=index)
        for predicate, index in order
    )
    return SequentialNode(steps=steps)


def split_probabilities(
    distribution: Distribution,
    attribute_index: int,
    candidates: list[int],
    ranges: RangeVector,
) -> list[float]:
    """``P(X_i < x | R)`` for every candidate split, from one histogram.

    This is exactly Equation 7: a single per-subproblem histogram yields
    every range probability incrementally via its cumulative sums, instead
    of one counting pass per candidate.
    """
    if not candidates:
        return []
    interval = ranges[attribute_index]
    histogram = distribution.attribute_histogram(attribute_index, ranges)
    total = float(histogram.sum())
    if total <= 0.0:
        # Unreachable subproblem: uniform fallback, matching
        # Distribution.split_probability.
        return [(value - interval.low) / len(interval) for value in candidates]
    cumulative = np.cumsum(histogram)
    return [
        float(cumulative[value - interval.low - 1]) / total for value in candidates
    ]
