"""Candidate split-point selection (Section 4.3).

Conditional planners choose conditioning predicates ``T(X_i >= x)``; the set
of ``x`` values they may consider per attribute is the *split-point policy*.
The paper restricts candidates by dividing each domain into equal-width
ranges and keeping only the endpoints, quantified by the Split Point
Selection Factor ``SPSF = prod_i r_i`` where ``r_i`` is the number of
candidates for attribute ``X_i``.

Two practical refinements:

- query predicate boundaries can be force-included
  (:meth:`SplitPointPolicy.with_extra_points`): the exhaustive planner needs
  them to be able to *decide* each predicate, and the heuristic benefits for
  the same reason;
- candidates are filtered to the interior of the current subproblem's range
  at lookup time.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanningError

__all__ = ["SplitPointPolicy"]


class SplitPointPolicy:
    """Per-attribute candidate split values for conditional planning.

    A split value ``x`` for attribute ``X_i`` denotes the conditioning
    predicate ``T(X_i >= x)`` and must lie in ``2 .. K_i`` (splitting at the
    domain minimum would create an empty branch).
    """

    def __init__(
        self, schema: Schema, points: Mapping[int, Iterable[int]]
    ) -> None:
        self._schema = schema
        validated: dict[int, tuple[int, ...]] = {}
        for index, attribute in enumerate(schema):
            values = sorted(set(points.get(index, ())))
            for value in values:
                if not 2 <= value <= attribute.domain_size:
                    raise PlanningError(
                        f"split value {value} out of bounds [2, "
                        f"{attribute.domain_size}] for {attribute.name!r}"
                    )
            validated[index] = tuple(values)
        self._points = validated

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def full(cls, schema: Schema) -> "SplitPointPolicy":
        """Every interior domain value is a candidate (maximum SPSF)."""
        points = {
            index: range(2, attribute.domain_size + 1)
            for index, attribute in enumerate(schema)
        }
        return cls(schema, points)

    @classmethod
    def equal_width(
        cls, schema: Schema, points_per_attribute: Sequence[int]
    ) -> "SplitPointPolicy":
        """``r_i`` equally spaced candidates per attribute (Section 4.3)."""
        if len(points_per_attribute) != len(schema):
            raise PlanningError(
                f"{len(points_per_attribute)} point counts for "
                f"{len(schema)} attributes"
            )
        points: dict[int, tuple[int, ...]] = {}
        for index, (attribute, requested) in enumerate(
            zip(schema, points_per_attribute)
        ):
            available = attribute.domain_size - 1
            count = max(0, min(int(requested), available))
            if count == 0:
                points[index] = ()
                continue
            # Spread candidates evenly over the interior values 2 .. K_i.
            positions = np.linspace(2, attribute.domain_size, count)
            points[index] = tuple(sorted({int(round(p)) for p in positions}))
        return cls(schema, points)

    @classmethod
    def from_spsf(cls, schema: Schema, spsf: float) -> "SplitPointPolicy":
        """Equal per-attribute budget targeting a total SPSF.

        The paper reports SPSF as the product of per-attribute candidate
        counts; this constructor takes the geometric mean, giving each
        attribute ``round(spsf ** (1/n))`` candidates (capped by its domain).
        """
        if spsf < 1:
            raise PlanningError(f"spsf must be >= 1, got {spsf}")
        per_attribute = max(1, int(round(spsf ** (1.0 / len(schema)))))
        return cls.equal_width(schema, [per_attribute] * len(schema))

    def with_extra_points(
        self, extra: Mapping[int, Iterable[int]]
    ) -> "SplitPointPolicy":
        """A copy with additional candidate values merged in."""
        merged: dict[int, list[int]] = {
            index: list(values) for index, values in self._points.items()
        }
        for index, values in extra.items():
            merged.setdefault(index, []).extend(values)
        return SplitPointPolicy(self._schema, merged)

    def with_query_boundaries(self, query: ConjunctiveQuery) -> "SplitPointPolicy":
        """Force-include each predicate's decision boundaries.

        For a predicate over ``[low, high]`` the splits ``T(X >= low)`` and
        ``T(X >= high + 1)`` are exactly what a plan needs to decide it, so
        they are always worth considering (and the exhaustive planner cannot
        terminate without them).
        """
        extra: dict[int, list[int]] = {}
        for predicate, index in zip(query.predicates, query.attribute_indices):
            domain = self._schema[index].domain_size
            low = getattr(predicate, "low", None)
            high = getattr(predicate, "high", None)
            # Accumulate — boolean queries may carry several predicates
            # over the same attribute.
            bounds = extra.setdefault(index, [])
            if low is not None and low >= 2:
                bounds.append(low)
            if high is not None and high + 1 <= domain:
                bounds.append(high + 1)
        return self.with_extra_points(extra)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def candidates(self, attribute_index: int, ranges: RangeVector) -> list[int]:
        """Allowed split values interior to the subproblem's range."""
        interval = ranges[attribute_index]
        return [
            value
            for value in self._points[attribute_index]
            if interval.low < value <= interval.high
        ]

    def points_for(self, attribute_index: int) -> tuple[int, ...]:
        """All candidate split values for one attribute."""
        return self._points[attribute_index]

    @property
    def spsf(self) -> float:
        """The Split Point Selection Factor ``prod_i r_i`` (Section 4.3).

        Attributes with no candidates contribute a factor of 1 (they simply
        cannot be split on).
        """
        return float(
            math.prod(max(1, len(values)) for values in self._points.values())
        )
