"""Planning algorithms: sequential baselines, the exhaustive optimum, and
the greedy conditional heuristic."""

from repro.planning.bounded import SizeAwareConditionalPlanner, plan_for_lifetime
from repro.planning.base import (
    Planner,
    PlannerStats,
    PlanningResult,
    SequentialPlanner,
)
from repro.planning.corrseq import CorrSeqPlanner
from repro.planning.exhaustive import ExhaustivePlanner
from repro.planning.greedy_conditional import GreedyConditionalPlanner
from repro.planning.greedy_sequential import GreedySequentialPlanner
from repro.planning.greedy_split import SplitChoice, greedy_split
from repro.planning.naive import NaivePlanner
from repro.planning.optimal_sequential import OptimalSequentialPlanner
from repro.planning.split_points import SplitPointPolicy

__all__ = [
    "Planner",
    "SequentialPlanner",
    "PlannerStats",
    "PlanningResult",
    "NaivePlanner",
    "GreedySequentialPlanner",
    "OptimalSequentialPlanner",
    "CorrSeqPlanner",
    "ExhaustivePlanner",
    "GreedyConditionalPlanner",
    "SizeAwareConditionalPlanner",
    "plan_for_lifetime",
    "SplitChoice",
    "greedy_split",
    "SplitPointPolicy",
]
