"""OptSeq: the optimal sequential planner (Section 4.1.2).

Any conjunctive query can be *rediscretized* onto binary attributes
``X'_i = 1 iff predicate phi_i holds``; the optimal order in which to
evaluate the predicates then follows from a dynamic program over the lattice
of satisfied-predicate sets.  Because evaluation stops at the first failing
predicate, the only states that matter are "the predicates in S all held",
giving the recursion

    J(S) = min over j not in S of  C'_j + P(phi_j | S) * J(S + {j})

with ``J(all) = 0``.  The conditionals come from one joint pmf over
predicate-outcome bitmasks (``Distribution.predicate_joint``) turned into
superset sums (:mod:`repro.probability.joint`), so each planning call costs
``O(m * 2**m)`` DP work plus one pass over the subproblem's rows — exactly
the complexity the paper reports.

Finding the optimal sequential plan is NP-hard in general (Munagala et al.),
so this planner guards against large ``m``; the evaluation uses it for small
queries (Lab) and GreedySeq elsewhere.
"""

from __future__ import annotations

import math

from repro.core.cost import expected_cost
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanningError
from repro.planning.base import (
    SequentialPlanner,
    effective_cost,
    resolved_leaf,
    sequential_node_from_order,
)
from repro.probability.joint import conditional_from_superset_sums, superset_sums

__all__ = ["OptimalSequentialPlanner"]

# 2**m DP states; past this the joint table and DP are impractical and the
# caller should switch to GreedySeq (the paper does the same).
_MAX_PREDICATES = 18


class OptimalSequentialPlanner(SequentialPlanner):
    """Exact sequential ordering via subset DP on rediscretized predicates."""

    name = "opt-seq"

    def plan_sequence(
        self, query: ConjunctiveQuery, ranges: RangeVector
    ) -> tuple[float, PlanNode]:
        leaf = resolved_leaf(query, ranges)
        if leaf is not None:
            return 0.0, leaf

        bindings = query.undetermined_predicates(ranges)
        count = len(bindings)
        if count > _MAX_PREDICATES:
            raise PlanningError(
                f"OptSeq over {count} predicates needs 2**{count} DP states; "
                "use GreedySequentialPlanner for large queries"
            )
        schema = self.schema
        distribution = self.distribution
        cost_model = self.cost_model
        static_costs = [
            effective_cost(schema, ranges, binding[1]) for binding in bindings
        ]
        base_acquired = ranges.acquired_indices()
        attribute_of = [binding[1] for binding in bindings]
        joint = distribution.predicate_joint(bindings, ranges)
        sums = superset_sums(joint)

        def state_cost(j: int, state: int) -> float:
            """C'_j at DP state ``state`` (set of predicates already held).

            Under a conditional cost model (Section 7) the acquired set is
            exactly the base acquisitions plus the state's attributes, so
            the DP remains exact.
            """
            if cost_model is None or ranges.is_acquired(attribute_of[j]):
                return static_costs[j]
            acquired = set(base_acquired)
            for k in range(count):
                if state & (1 << k):
                    acquired.add(attribute_of[k])
            return cost_model.cost(attribute_of[j], acquired)

        full_mask = (1 << count) - 1
        best_cost = [0.0] * (1 << count)
        best_choice = [-1] * (1 << count)
        # J(S) depends only on J(S | bit) — numerically larger masks — so a
        # single descending sweep evaluates states in a valid order.
        for state in range(full_mask - 1, -1, -1):
            minimum = math.inf
            choice = -1
            for j in range(count):
                bit = 1 << j
                if state & bit:
                    continue
                passed = conditional_from_superset_sums(sums, state, bit)
                value = state_cost(j, state) + passed * best_cost[state | bit]
                if value < minimum:
                    minimum = value
                    choice = j
            best_cost[state] = minimum
            best_choice[state] = choice

        order = []
        state = 0
        while state != full_mask:
            j = best_choice[state]
            order.append(bindings[j])
            state |= 1 << j

        node = sequential_node_from_order(order)
        # Report the cost under the planner's distribution (same yardstick
        # as every other planner) rather than the raw DP value; the two
        # agree exactly when the distribution is unsmoothed.
        return expected_cost(node, distribution, ranges, self.cost_model), node
