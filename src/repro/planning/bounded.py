"""Size-aware conditional planning: the Section 2.4 joint objective.

Besides bounding plan size outright (Heuristic-k's MAXSIZE), the paper
sketches a second option: fold dissemination cost into the optimization,

    argmin_P  C(P) + alpha * zeta(P),

with ``alpha = (cost to transmit a byte) / (tuples processed in the query
lifetime)``, and notes "this joint optimization problem could be addressed
with an extension of our approach".  :class:`SizeAwareConditionalPlanner`
is that extension for the greedy heuristic: it grows the plan exactly like
GreedyPlan (Figure 7) but only applies a split while the expected
execution saving exceeds the dissemination cost of the bytes the split
adds — so the plan stops growing exactly where the combined objective
stops improving.

Because leaf priorities in GreedyPlan are processed in decreasing saving
order, stopping at the first unprofitable split is optimal within the
greedy trajectory: later splits would save even less per byte.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.plan import ConditionNode, PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanningError
from repro.planning.base import (
    require_conjunctive,
    Planner,
    PlannerStats,
    PlanningResult,
    SequentialPlanner,
)
from repro.planning.greedy_conditional import _Frontier, _TreeNode
from repro.planning.greedy_split import greedy_split
from repro.planning.split_points import SplitPointPolicy
from repro.probability import Distribution

__all__ = ["SizeAwareConditionalPlanner"]

# Serialized growth per applied split: one condition node plus one extra
# sequential leaf (the split's two leaves replace the one it expanded).
# Computed per split from the actual subplans, but this floor guards the
# degenerate case of two verdict leaves.
_MIN_SPLIT_BYTES = 8


class SizeAwareConditionalPlanner(Planner):
    """GreedyPlan driven by the combined objective C(P) + alpha * zeta(P).

    Parameters
    ----------
    distribution:
        Probability model.
    base_planner:
        Sequential planner for leaf plans (same distribution required).
    alpha:
        Dissemination weight: transmission cost per byte divided by the
        number of tuples the plan will process in its lifetime.  ``0``
        reduces to an unbounded GreedyPlan.
    split_policy:
        Candidate split points; query boundaries merged automatically.
    max_splits:
        Hard safety cap on top of the objective-driven stopping rule.
    """

    name = "size-aware"

    def __init__(
        self,
        distribution: Distribution,
        base_planner: SequentialPlanner,
        alpha: float,
        split_policy: SplitPointPolicy | None = None,
        max_splits: int = 64,
        cost_model=None,
    ) -> None:
        super().__init__(distribution, cost_model)
        if base_planner.distribution is not distribution:
            raise PlanningError(
                "base planner must share the conditional planner's distribution"
            )
        if base_planner.cost_model is not cost_model:
            raise PlanningError(
                "base planner must share the conditional planner's cost model"
            )
        if alpha < 0:
            raise PlanningError(f"alpha must be >= 0, got {alpha}")
        if max_splits < 0:
            raise PlanningError(f"max_splits must be >= 0, got {max_splits}")
        self._base = base_planner
        self._alpha = float(alpha)
        self._split_policy = split_policy
        self._max_splits = int(max_splits)

    @property
    def alpha(self) -> float:
        return self._alpha

    def plan(self, query: ConjunctiveQuery) -> PlanningResult:
        require_conjunctive(query)
        schema = self.schema
        policy = self._split_policy or SplitPointPolicy.full(schema)
        policy = policy.with_query_boundaries(query)
        stats = PlannerStats()

        full = RangeVector.full(schema)
        root_cost, root_plan = self._base.plan_sequence(query, full)
        stats.sequential_plans_built += 1
        root = _TreeNode(root_plan)
        counter = itertools.count()
        queue: list[tuple[float, int, _Frontier]] = []
        self._push(
            queue,
            counter,
            _Frontier(
                node=root,
                ranges=full,
                sequential_cost=root_cost,
                split=greedy_split(
                    query,
                    full,
                    self.distribution,
                    self._base,
                    policy,
                    stats,
                    self.cost_model,
                ),
                reach_probability=1.0,
            ),
        )

        execution_cost = root_cost
        splits_used = 0
        while queue and splits_used < self._max_splits:
            negative_priority, _tie, leaf = heapq.heappop(queue)
            saving = -negative_priority
            if leaf.split is None or saving <= 0.0:
                break
            split = leaf.split
            added_bytes = max(
                _MIN_SPLIT_BYTES,
                split.below_plan.size_bytes()
                + split.above_plan.size_bytes()
                + ConditionNode(
                    attribute=schema[split.attribute_index].name,
                    attribute_index=split.attribute_index,
                    split_value=split.split_value,
                    below=split.below_plan,
                    above=split.above_plan,
                ).size_bytes()
                - leaf.node.freeze().size_bytes(),
            )
            # The Section 2.4 stopping rule: apply the split only while its
            # expected execution saving pays for the extra plan bytes.
            if saving <= self._alpha * added_bytes:
                break

            stats.subproblems += 1
            below_ranges, above_ranges = leaf.ranges.split(
                split.attribute_index, split.split_value
            )
            below_node = _TreeNode(split.below_plan)
            above_node = _TreeNode(split.above_plan)
            leaf.node.expand(
                attribute=schema[split.attribute_index].name,
                attribute_index=split.attribute_index,
                split_value=split.split_value,
                below=below_node,
                above=above_node,
            )
            for node, ranges, cost, probability in (
                (
                    below_node,
                    below_ranges,
                    split.below_cost,
                    leaf.reach_probability * split.probability_below,
                ),
                (
                    above_node,
                    above_ranges,
                    split.above_cost,
                    leaf.reach_probability * (1.0 - split.probability_below),
                ),
            ):
                self._push(
                    queue,
                    counter,
                    _Frontier(
                        node=node,
                        ranges=ranges,
                        sequential_cost=cost,
                        split=greedy_split(
                            query,
                            ranges,
                            self.distribution,
                            self._base,
                            policy,
                            stats,
                            self.cost_model,
                        ),
                        reach_probability=probability,
                    ),
                )
            execution_cost -= saving
            splits_used += 1

        plan = root.freeze()
        combined = execution_cost + self._alpha * plan.size_bytes()
        return PlanningResult(
            plan=plan,
            expected_cost=combined,
            planner=f"{self.name}(alpha={self._alpha:g})",
            stats=stats,
        )

    @staticmethod
    def _push(queue, counter, leaf: _Frontier) -> None:
        if leaf.split is None or leaf.priority <= 0.0:
            return
        heapq.heappush(queue, (-leaf.priority, next(counter), leaf))


def plan_for_lifetime(
    distribution: Distribution,
    base_planner: SequentialPlanner,
    query: ConjunctiveQuery,
    radio_cost_per_byte: float,
    lifetime_tuples: int,
    split_policy: SplitPointPolicy | None = None,
) -> PlanningResult:
    """Convenience wrapper: derive alpha from the deployment parameters.

    ``alpha = radio_cost_per_byte / lifetime_tuples`` per Section 2.4.
    """
    if lifetime_tuples < 1:
        raise PlanningError(f"lifetime_tuples must be >= 1, got {lifetime_tuples}")
    if radio_cost_per_byte < 0:
        raise PlanningError(
            f"radio_cost_per_byte must be >= 0, got {radio_cost_per_byte}"
        )
    planner = SizeAwareConditionalPlanner(
        distribution,
        base_planner,
        alpha=radio_cost_per_byte / lifetime_tuples,
        split_policy=split_policy,
    )
    return planner.plan(query)
