"""The Naive sequential planner (Section 4.1.1).

Traditional optimizers order conjunctive predicates by rank
``cost / rejection-probability`` computed from *marginal* statistics — no
correlations, no conditioning.  The paper's evaluation uses this as the
baseline every other algorithm is measured against.

Note on conventions: the paper states the rank as ``cost/(1 - selectivity)``
with "selectivity = the marginal probability that the predicate does not
output a tuple".  Read literally that divides by the *pass* probability,
which contradicts both the classical expensive-predicate rule and the
paper's own GreedySeq (Section 4.1.3), which explicitly minimizes
``C_j / (1 - p_j)`` with ``p_j = P(satisfied)``.  We implement the reading
consistent with GreedySeq: rank ascending by ``C_i / P(reject)`` — buy the
most rejection probability per unit cost first.
"""

from __future__ import annotations

import math

from repro.core.cost import expected_cost
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.planning.base import (
    SequentialPlanner,
    effective_cost,
    resolved_leaf,
    sequential_node_from_order,
)

__all__ = ["NaivePlanner"]


class NaivePlanner(SequentialPlanner):
    """Rank-ordering by marginal selectivity, correlation-blind."""

    name = "naive"

    def plan_sequence(
        self, query: ConjunctiveQuery, ranges: RangeVector
    ) -> tuple[float, PlanNode]:
        leaf = resolved_leaf(query, ranges)
        if leaf is not None:
            return 0.0, leaf

        distribution = self.distribution
        schema = self.schema
        full = RangeVector.full(schema)
        ranked = []
        for position, binding in enumerate(query.undetermined_predicates(ranges)):
            cost = effective_cost(schema, ranges, binding[1], self.cost_model)
            # Marginal pass probability over the full space: Naive never
            # conditions on anything, even inside a subproblem.
            pass_probability = distribution.conjunction_probability([binding], full)
            reject_probability = 1.0 - pass_probability
            if reject_probability <= 0.0:
                rank = math.inf  # never rejects: evaluate last
            else:
                rank = cost / reject_probability
            ranked.append((rank, position, binding))
        ranked.sort(key=lambda entry: (entry[0], entry[1]))

        node = sequential_node_from_order([binding for _r, _p, binding in ranked])
        return expected_cost(node, distribution, ranges, self.cost_model), node
