"""GreedyPlan: the polynomial conditional-planning heuristic
(Section 4.2.2, Figure 7) — "Heuristic-k" in the paper's evaluation.

The algorithm grows a decision tree from a single leaf holding the base
sequential plan for the whole problem.  Every frontier leaf carries:

- the subproblem ranges it covers,
- the base sequential plan (and cost) for that subproblem,
- the locally optimal :func:`~repro.planning.greedy_split.greedy_split`,
- a priority = P(reaching the leaf) * (sequential cost - split cost),
  i.e. the expected saving from applying the split at that leaf.

A max-priority queue decides which leaf to expand next; expansion turns the
leaf into a condition node whose children become new frontier leaves.  The
loop stops after ``max_splits`` expansions (the Section 2.4 plan-size bound)
or when no remaining leaf's split offers positive savings.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.analysis.certificates import certify_plan
from repro.analysis.rewrite import optimize_plan
from repro.core.cost import expected_cost
from repro.core.plan import ConditionNode, PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanningError
from repro.planning.base import (
    require_conjunctive,
    Planner,
    PlannerStats,
    PlanningResult,
    SequentialPlanner,
)
from repro.planning.greedy_split import SplitChoice, greedy_split
from repro.planning.split_points import SplitPointPolicy
from repro.probability.base import Distribution

__all__ = ["GreedyConditionalPlanner"]


class _TreeNode:
    """Mutable node of the plan under construction.

    Starts life as a leaf wrapping a sequential plan; expansion converts it
    in place into an internal split node.  :meth:`freeze` emits the final
    immutable plan tree.
    """

    __slots__ = (
        "plan",
        "attribute",
        "attribute_index",
        "split_value",
        "below",
        "above",
    )

    def __init__(self, plan: PlanNode) -> None:
        self.plan: PlanNode | None = plan
        self.attribute = ""
        self.attribute_index = -1
        self.split_value = 0
        self.below: "_TreeNode | None" = None
        self.above: "_TreeNode | None" = None

    def expand(
        self,
        attribute: str,
        attribute_index: int,
        split_value: int,
        below: "_TreeNode",
        above: "_TreeNode",
    ) -> None:
        self.plan = None
        self.attribute = attribute
        self.attribute_index = attribute_index
        self.split_value = split_value
        self.below = below
        self.above = above

    def freeze(self) -> PlanNode:
        if self.plan is not None:
            return self.plan
        assert self.below is not None and self.above is not None
        return ConditionNode(
            attribute=self.attribute,
            attribute_index=self.attribute_index,
            split_value=self.split_value,
            below=self.below.freeze(),
            above=self.above.freeze(),
        )


@dataclass
class _Frontier:
    """A frontier leaf plus the bookkeeping Figure 7 stores per queue entry."""

    node: _TreeNode
    ranges: RangeVector
    sequential_cost: float
    split: SplitChoice | None
    reach_probability: float

    @property
    def priority(self) -> float:
        """Expected saving of applying the stored split at this leaf."""
        if self.split is None:
            return 0.0
        return self.reach_probability * (self.sequential_cost - self.split.cost)


class GreedyConditionalPlanner(Planner):
    """The paper's Heuristic-k conditional planner.

    Parameters
    ----------
    distribution:
        Probability model for split probabilities and leaf priorities.
    base_planner:
        Sequential planner used for leaf plans (OptSeq or GreedySeq; the
        evaluation's CorrSeq wrapper also fits).  Must share this planner's
        distribution so all costs are measured with the same yardstick.
    max_splits:
        The ``k`` in Heuristic-k: maximum number of condition nodes added.
        ``0`` reproduces the base sequential plan exactly.
    split_policy:
        Candidate split points (Section 4.3).  Query predicate boundaries
        are merged in automatically.
    """

    name = "heuristic"

    def __init__(
        self,
        distribution: Distribution,
        base_planner: SequentialPlanner,
        max_splits: int = 5,
        split_policy: SplitPointPolicy | None = None,
        cost_model=None,
    ) -> None:
        super().__init__(distribution, cost_model)
        if base_planner.distribution is not distribution:
            raise PlanningError(
                "base planner must share the conditional planner's distribution"
            )
        if base_planner.cost_model is not cost_model:
            raise PlanningError(
                "base planner must share the conditional planner's cost model"
            )
        if max_splits < 0:
            raise PlanningError(f"max_splits must be >= 0, got {max_splits}")
        self._base = base_planner
        self._max_splits = int(max_splits)
        self._split_policy = split_policy

    @property
    def max_splits(self) -> int:
        return self._max_splits

    def plan(self, query: ConjunctiveQuery) -> PlanningResult:
        require_conjunctive(query)
        schema = self.schema
        policy = self._split_policy or SplitPointPolicy.full(schema)
        policy = policy.with_query_boundaries(query)
        stats = PlannerStats()

        full = RangeVector.full(schema)
        root_cost, root_plan = self._base.plan_sequence(query, full)
        stats.sequential_plans_built += 1
        root = _TreeNode(root_plan)
        frontier = _Frontier(
            node=root,
            ranges=full,
            sequential_cost=root_cost,
            split=self._split_for(query, full, policy, stats),
            reach_probability=1.0,
        )

        counter = itertools.count()
        queue: list[tuple[float, int, _Frontier]] = []
        self._push(queue, counter, frontier)

        splits_used = 0
        expected_total = root_cost
        while queue and splits_used < self._max_splits:
            negative_priority, _tie, leaf = heapq.heappop(queue)
            saving = -negative_priority
            if saving <= 0.0 or leaf.split is None:
                break  # no remaining leaf offers a positive expected saving
            split = leaf.split
            stats.subproblems += 1
            below_ranges, above_ranges = leaf.ranges.split(
                split.attribute_index, split.split_value
            )
            below_node = _TreeNode(split.below_plan)
            above_node = _TreeNode(split.above_plan)
            leaf.node.expand(
                attribute=schema[split.attribute_index].name,
                attribute_index=split.attribute_index,
                split_value=split.split_value,
                below=below_node,
                above=above_node,
            )
            self._push(
                queue,
                counter,
                _Frontier(
                    node=below_node,
                    ranges=below_ranges,
                    sequential_cost=split.below_cost,
                    split=self._split_for(query, below_ranges, policy, stats),
                    reach_probability=leaf.reach_probability
                    * split.probability_below,
                ),
            )
            self._push(
                queue,
                counter,
                _Frontier(
                    node=above_node,
                    ranges=above_ranges,
                    sequential_cost=split.above_cost,
                    split=self._split_for(query, above_ranges, policy, stats),
                    reach_probability=leaf.reach_probability
                    * (1.0 - split.probability_below),
                ),
            )
            expected_total -= saving
            splits_used += 1

        plan = root.freeze()
        optimized = optimize_plan(plan, schema, query=query)
        if optimized != plan:
            plan = optimized
            expected_total = expected_cost(
                plan, self.distribution, cost_model=self.cost_model
            )
        return PlanningResult(
            plan=plan,
            expected_cost=expected_total,
            planner=f"{self.name}-{self._max_splits}",
            stats=stats,
            certificate=certify_plan(
                plan, self.distribution, cost_model=self.cost_model
            ),
        )

    def _split_for(
        self,
        query: ConjunctiveQuery,
        ranges: RangeVector,
        policy: SplitPointPolicy,
        stats: PlannerStats,
    ) -> SplitChoice | None:
        return greedy_split(
            query,
            ranges,
            self.distribution,
            self._base,
            policy,
            stats,
            self.cost_model,
        )

    @staticmethod
    def _push(queue, counter, leaf: _Frontier) -> None:
        if leaf.split is None or leaf.priority <= 0.0:
            return
        heapq.heappush(queue, (-leaf.priority, next(counter), leaf))
