"""GreedySeq: the greedy correlation-aware sequential planner (Section 4.1.3).

Proposed by Munagala et al. for the pipelined set-cover problem and
4-approximate for conjunctive queries, the heuristic repeatedly appends the
predicate minimizing ``C_j / (1 - p_j)`` where ``p_j`` is the probability the
predicate holds *given that every already-chosen predicate held* — unlike
Naive, each step conditions on the survivors so far, so correlations between
predicates are exploited even though the plan never branches.

The paper uses GreedySeq both standalone ("CorrSeq" on the larger datasets)
and as the base sequential planner inside the conditional heuristic when the
predicate count makes OptSeq's ``O(m * 2**m)`` DP impractical.
"""

from __future__ import annotations

import math

from repro.core.cost import expected_cost
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.planning.base import (
    SequentialPlanner,
    resolved_leaf,
    sequential_node_from_order,
)
from repro.probability.base import PredicateBinding

__all__ = ["GreedySequentialPlanner"]


class GreedySequentialPlanner(SequentialPlanner):
    """Correlation-aware greedy predicate ordering (Munagala et al.)."""

    name = "greedy-seq"

    def plan_sequence(
        self, query: ConjunctiveQuery, ranges: RangeVector
    ) -> tuple[float, PlanNode]:
        leaf = resolved_leaf(query, ranges)
        if leaf is not None:
            return 0.0, leaf

        distribution = self.distribution
        schema = self.schema
        cost_model = self.cost_model
        remaining = query.undetermined_predicates(ranges)
        chosen: list[PredicateBinding] = []
        acquired = set(ranges.acquired_indices())
        conditioner = distribution.sequential_conditioner(ranges)
        while remaining:
            pass_probabilities = conditioner.pass_probabilities(remaining)
            best_rank = math.inf
            best_position = 0
            for position, binding in enumerate(remaining):
                index = binding[1]
                if index in acquired:
                    cost = 0.0
                elif cost_model is None:
                    cost = schema[index].cost
                else:
                    # Conditional costs (Section 7): the price may drop once
                    # a board-mate has been acquired earlier in the order.
                    cost = cost_model.cost(index, acquired)
                reject_probability = 1.0 - float(pass_probabilities[position])
                if reject_probability <= 0.0:
                    rank = math.inf if cost > 0.0 else 0.0
                else:
                    rank = cost / reject_probability
                if rank < best_rank:
                    best_rank = rank
                    best_position = position
            pick = remaining.pop(best_position)
            chosen.append(pick)
            acquired.add(pick[1])
            conditioner.condition_on(pick)

        node = sequential_node_from_order(chosen)
        return expected_cost(node, distribution, ranges, self.cost_model), node
