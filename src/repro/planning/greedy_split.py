"""GreedySplit: locally optimal binary splits (Section 4.2.1, Figure 6).

For a subproblem, the locally optimal split is the conditioning predicate
``T(X_i >= x)`` minimizing

    C'_i + P(X_i < x | R) * SeqCost(R with [a, x-1])
         + P(X_i >= x | R) * SeqCost(R with [x, b])

where ``SeqCost`` is the expected cost of the *base sequential planner*'s
plan for each side (OptSeq in the paper's small-query experiments, GreedySeq
for the larger ones).  The split is compared against simply running the
sequential plan without splitting; GreedyPlan (Figure 7) uses the difference
as its expansion priority.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.planning.base import (
    PlannerStats,
    SequentialPlanner,
    effective_cost,
    split_probabilities,
)
from repro.planning.split_points import SplitPointPolicy
from repro.probability.base import Distribution

__all__ = ["SplitChoice", "greedy_split"]


@dataclass(frozen=True)
class SplitChoice:
    """The locally optimal split for one subproblem."""

    cost: float
    attribute_index: int
    split_value: int
    probability_below: float
    below_cost: float
    below_plan: PlanNode
    above_cost: float
    above_plan: PlanNode


def greedy_split(
    query: ConjunctiveQuery,
    ranges: RangeVector,
    distribution: Distribution,
    base_planner: SequentialPlanner,
    policy: SplitPointPolicy,
    stats: PlannerStats | None = None,
    cost_model=None,
) -> SplitChoice | None:
    """Find the locally optimal binary split, or None when no split exists.

    Implements Figure 6 including its pruning: an attribute whose
    acquisition cost alone reaches the best total so far is skipped, and the
    second side of a split is only planned when the first side leaves room.
    """
    schema = distribution.schema
    best: SplitChoice | None = None
    side_cache: dict[RangeVector, tuple[float, PlanNode]] = {}

    def side_plan(side: RangeVector) -> tuple[float, PlanNode]:
        cached = side_cache.get(side)
        if cached is None:
            cached = base_planner.plan_sequence(query, side)
            side_cache[side] = cached
            if stats is not None:
                stats.sequential_plans_built += 1
        return cached

    for index in range(len(schema)):
        acquisition = effective_cost(schema, ranges, index, cost_model)
        if best is not None and acquisition >= best.cost:
            continue
        candidates = policy.candidates(index, ranges)
        below_probabilities = split_probabilities(
            distribution, index, candidates, ranges
        )
        for split_value, probability_below in zip(candidates, below_probabilities):
            if stats is not None:
                stats.splits_considered += 1
            below_ranges, above_ranges = ranges.split(index, split_value)
            below_cost, below_plan = side_plan(below_ranges)
            total = acquisition + probability_below * below_cost
            if best is not None and total >= best.cost:
                continue
            above_cost, above_plan = side_plan(above_ranges)
            total += (1.0 - probability_below) * above_cost
            if best is None or total < best.cost:
                best = SplitChoice(
                    cost=total,
                    attribute_index=index,
                    split_value=split_value,
                    probability_below=probability_below,
                    below_cost=below_cost,
                    below_plan=below_plan,
                    above_cost=above_cost,
                    above_plan=above_plan,
                )
    return best
