"""Serving layer: plan caching, batching, and metrics over the engine.

The paper's engine plans a statement from historical statistics and then
reuses the plan per-tuple; this package scales that amortization across
a *workload*.  :class:`AcquisitionalService` canonicalizes statements to
:class:`QueryFingerprint` slots, caches prepared plans in a
statistics-versioned :class:`PlanCache`, batches same-shape requests
into single vectorized passes, and meters everything through
:class:`MetricsRegistry`.
"""

from repro.service.cache import CacheStats, PlanCache
from repro.service.fingerprint import (
    QueryFingerprint,
    fingerprint_parsed,
    fingerprint_statement,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    LabeledCounter,
    LatencyHistogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.service.service import AcquisitionalService

__all__ = [
    "AcquisitionalService",
    "PlanCache",
    "CacheStats",
    "QueryFingerprint",
    "fingerprint_parsed",
    "fingerprint_statement",
    "Counter",
    "Gauge",
    "LabeledCounter",
    "LatencyHistogram",
    "MetricsRegistry",
    "merge_snapshots",
]
