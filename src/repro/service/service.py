"""The multi-query serving runtime.

:class:`AcquisitionalService` sits above an
:class:`~repro.engine.AcquisitionalEngine` and serves a *workload* of
statements rather than one statement at a time:

- statements are canonicalized and fingerprinted, so every spelling of
  the same query shares one plan-cache slot;
- plans are cached in a bounded LRU/LFU :class:`~repro.service.cache.PlanCache`
  keyed by (fingerprint, statistics version) — refitting the engine's
  distribution or an adaptive-stream replan bumps the version and
  invalidates every old-generation plan;
- same-fingerprint requests can be admitted as a batch and pushed
  through the plan in one vectorized pass over the stacked live tuples;
- counters and latency histograms are recorded throughout and exposed
  via :meth:`stats`.

The paper's architecture makes this cheap to get right: plans are
trained *once* on historical statistics and reused per-tuple, so the
only cache-coherence event is a statistics change — exactly what the
version stamp tracks.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.engine.engine import AcquisitionalEngine, PreparedQuery, QueryResult
from repro.engine.language import ParsedQuery, parse_query
from repro.exceptions import QueryError, ServiceError
from repro.execution.streaming import AdaptiveStreamExecutor
from repro.service.cache import PlanCache
from repro.service.fingerprint import QueryFingerprint, fingerprint_parsed
from repro.service.metrics import MetricsRegistry
from repro.verify import verify_plan

__all__ = ["AcquisitionalService"]


class AcquisitionalService:
    """Serve many acquisitional queries through one shared plan cache.

    Parameters
    ----------
    engine:
        The underlying engine (owns schema, statistics, and planners).
    cache_capacity:
        Maximum number of cached plans.
    cache_policy:
        ``"lru"`` (recency) or ``"lfu"`` (frequency — the right choice
        for heavily skewed workloads).
    cache_enabled:
        ``False`` plans every statement from scratch; useful as the
        baseline when measuring what the cache buys.
    verify_admission:
        ``True`` (the default) runs the static plan verifier
        (:func:`repro.verify.verify_plan`) as the cache's admission
        gate: a plan with ERROR-severity diagnostics is served once but
        never cached, and the rejection is counted in :meth:`stats`
        (``plans_rejected`` and the cache's ``rejections``).
    """

    def __init__(
        self,
        engine: AcquisitionalEngine,
        cache_capacity: int = 256,
        cache_policy: str = "lru",
        cache_enabled: bool = True,
        verify_admission: bool = True,
    ) -> None:
        self._engine = engine
        self._verify_admission = bool(verify_admission)
        admission = self._admit_plan if self._verify_admission else None
        self._cache: PlanCache[QueryFingerprint, PreparedQuery] = PlanCache(
            capacity=cache_capacity, policy=cache_policy, admission=admission
        )
        self._cache_enabled = bool(cache_enabled)
        self._metrics = MetricsRegistry()
        engine.add_statistics_listener(self._on_statistics_version)

    def _admit_plan(
        self, _fingerprint: QueryFingerprint, prepared: PreparedQuery
    ) -> bool:
        """Cache-admission gate: statically verify the prepared plan."""
        report = verify_plan(
            prepared.plan,
            self._engine.schema,
            query=prepared.parsed.query,
            distribution=self._engine.distribution,
            claimed_cost=prepared.expected_where_cost,
        )
        if not report.ok:
            self._metrics.counter("plans_rejected").increment()
        return report.ok

    # ------------------------------------------------------------------
    # Planning path
    # ------------------------------------------------------------------

    @property
    def engine(self) -> AcquisitionalEngine:
        return self._engine

    @property
    def cache(self) -> PlanCache:
        return self._cache

    @property
    def cache_enabled(self) -> bool:
        return self._cache_enabled

    def fingerprint(self, text: str) -> QueryFingerprint:
        """Canonical fingerprint of a statement under the engine's schema."""
        return fingerprint_parsed(
            parse_query(text, self._engine.schema), self._engine.schema
        )

    def plan_for(self, text: str) -> PreparedQuery:
        """The (cached) prepared plan serving a statement."""
        parsed = parse_query(text, self._engine.schema)
        return self._prepared_for(parsed, text)

    def _prepared_for(
        self, parsed: ParsedQuery, text: str
    ) -> PreparedQuery:
        fingerprint = fingerprint_parsed(parsed, self._engine.schema)
        version = self._engine.statistics_version
        if self._cache_enabled:
            cached = self._cache.get(fingerprint, version)
            if cached is not None:
                return cached
        prepared = self._engine.prepare_parsed(parsed, text=text)
        self._metrics.counter("plans_built").increment()
        self._metrics.histogram("planning").observe(prepared.planning_seconds)
        if self._cache_enabled:
            self._cache.put(fingerprint, version, prepared)
        return prepared

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------

    def execute(self, text: str, readings: np.ndarray) -> QueryResult:
        """Serve one statement over live readings."""
        self._metrics.counter("queries").increment()
        prepared = self.plan_for(text)
        start = time.perf_counter()
        result = self._engine.execute_prepared(prepared, readings)
        self._metrics.histogram("execution").observe(
            time.perf_counter() - start
        )
        return result

    def execute_batch(
        self, requests: Sequence[tuple[str, np.ndarray]]
    ) -> list[QueryResult]:
        """Serve many requests, grouping same-fingerprint ones.

        Each request is ``(statement text, readings matrix)``.  Requests
        whose statements canonicalize to the same fingerprint are planned
        once and executed in a single vectorized pass over their stacked
        readings; results come back in request order.
        """
        self._metrics.counter("queries").increment(len(requests))
        self._metrics.counter("batch_requests").increment(len(requests))
        groups: dict[QueryFingerprint, list[int]] = {}
        parsed_requests: list[tuple[ParsedQuery, np.ndarray]] = []
        for position, (text, readings) in enumerate(requests):
            parsed = parse_query(text, self._engine.schema)
            fingerprint = fingerprint_parsed(parsed, self._engine.schema)
            groups.setdefault(fingerprint, []).append(position)
            parsed_requests.append((parsed, readings))

        results: list[QueryResult | None] = [None] * len(requests)
        for positions in groups.values():
            first_parsed, _first_readings = parsed_requests[positions[0]]
            text = requests[positions[0]][0]
            prepared = self._prepared_for(first_parsed, text)
            matrices = [parsed_requests[p][1] for p in positions]
            start = time.perf_counter()
            group_results = self._engine.execute_prepared_many(
                prepared, matrices
            )
            self._metrics.histogram("execution").observe(
                time.perf_counter() - start
            )
            for position, result in zip(positions, group_results):
                results[position] = result
        self._metrics.counter("batch_groups").increment(len(groups))
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Statistics lifecycle
    # ------------------------------------------------------------------

    def refit(
        self, history: np.ndarray, smoothing: float | None = None
    ) -> int:
        """Refit engine statistics; every cached plan is invalidated."""
        return self._engine.refit(history, smoothing=smoothing)

    def stream_executor(
        self, text: str, **kwargs
    ) -> AdaptiveStreamExecutor:
        """An adaptive stream executor wired into cache invalidation.

        The executor replans on drift (Section 7); each
        :class:`~repro.execution.streaming.ReplanEvent` is proof that the
        live statistics have moved away from what the engine's cached
        plans were trained on, so the service bumps the statistics
        version — invalidating the plan cache — on every swap.
        ``kwargs`` pass through to
        :class:`~repro.execution.streaming.AdaptiveStreamExecutor`.
        """
        parsed = parse_query(text, self._engine.schema)
        if not parsed.is_conjunctive:
            raise QueryError(
                "adaptive streaming requires a conjunctive WHERE clause"
            )
        if "on_replan" in kwargs:
            raise ServiceError(
                "on_replan is owned by the service; use engine callbacks "
                "for additional replan handling"
            )

        def on_replan(_event) -> None:
            self._metrics.counter("stream_replans").increment()
            self._engine.bump_statistics_version()

        return AdaptiveStreamExecutor(
            self._engine.schema,
            parsed.query,
            planner_factory=self._engine.planner_factory,
            on_replan=on_replan,
            **kwargs,
        )

    def _on_statistics_version(self, version: int) -> None:
        self._metrics.counter("statistics_bumps").increment()
        self._cache.invalidate_stale(version)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time service snapshot: cache, counters, latencies."""
        metrics = self._metrics.snapshot()
        return {
            "statistics_version": self._engine.statistics_version,
            "cache_enabled": self._cache_enabled,
            "cache": self._cache.stats().as_dict(),
            "counters": metrics["counters"],
            "latency": metrics["histograms"],
        }
