"""The multi-query serving runtime.

:class:`AcquisitionalService` sits above an
:class:`~repro.engine.AcquisitionalEngine` and serves a *workload* of
statements rather than one statement at a time:

- statements are canonicalized and fingerprinted, so every spelling of
  the same query shares one plan-cache slot;
- plans are cached in a bounded LRU/LFU :class:`~repro.service.cache.PlanCache`
  keyed by (fingerprint, statistics version) — refitting the engine's
  distribution or an adaptive-stream replan bumps the version and
  invalidates every old-generation plan;
- same-fingerprint requests can be admitted as a batch and pushed
  through the plan in one vectorized pass over the stacked live tuples;
- counters and latency histograms are recorded throughout and exposed
  via :meth:`stats`.

With ``profiling=True`` the service additionally keeps one
:class:`~repro.obs.PlanProfile` per served plan and a matching
:class:`~repro.obs.DriftMonitor`; :meth:`check_drift` scores every
profiled plan's observed behaviour against its Eq. 3 predictions and —
when any plan has drifted — bumps the statistics version (or refits on
supplied history), so the next request replans from fresh statistics.
A :class:`~repro.obs.Tracer` (optional) receives structured span events
for every phase: plan, verify, cache-hit, cache-miss, execute, replan.

The paper's architecture makes this cheap to get right: plans are
trained *once* on historical statistics and reused per-tuple, so the
only cache-coherence event is a statistics change — exactly what the
version stamp tracks.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

from repro.engine.engine import (
    AcquisitionalEngine,
    PreparedQuery,
    QueryResult,
    ResilientQueryResult,
)
from repro.engine.language import ParsedQuery, parse_query
from repro.exceptions import PlanVerificationError, QueryError, ServiceError
from repro.execution.streaming import AdaptiveStreamExecutor, ReplanEvent
from repro.service.cache import PlanCache
from repro.service.fingerprint import QueryFingerprint, fingerprint_parsed
from repro.service.metrics import MetricsRegistry

from repro.verify import verify_plan

if TYPE_CHECKING:
    from repro.compile.ir import CompiledPlan
    from repro.faults.model import FaultSchedule
    from repro.faults.policy import FaultPolicy
    from repro.learn.state import BanditStateStore
    from repro.learn.stream import LearnedStreamExecutor
    from repro.obs.drift import DriftMonitor, DriftReport
    from repro.obs.profile import PlanProfile
    from repro.obs.trace import Tracer

__all__ = ["AcquisitionalService", "EXEC_BACKENDS"]

# Execution backends the service can route WHERE clauses through:
# the interpreting tree walker, or the translation-validated columnar
# compile tier (falling back to the interpreter per-plan when a kernel
# fails compilation or its equivalence proof).
EXEC_BACKENDS = ("interp", "compiled")


class _CompiledEntry:
    """Per-fingerprint compiled-tier decision: a proven kernel or None.

    ``kernel is None`` records a *negative* result — the plan failed to
    lower or failed translation validation — so the fallback decision is
    made once per (plan, statistics version), not per request.
    """

    __slots__ = ("prepared", "kernel")

    def __init__(
        self, prepared: PreparedQuery, kernel: "CompiledPlan | None"
    ) -> None:
        self.prepared = prepared
        self.kernel = kernel


class _PlanObservability:
    """Per-served-plan profile + lazily-built drift monitor."""

    __slots__ = ("prepared", "profile", "_monitor", "_threshold")

    def __init__(
        self, prepared: PreparedQuery, profile: "PlanProfile", threshold: float
    ) -> None:
        self.prepared = prepared
        self.profile = profile
        self._monitor: "DriftMonitor | None" = None
        self._threshold = threshold

    def monitor(self, engine: AcquisitionalEngine) -> "DriftMonitor":
        if self._monitor is None:
            from repro.obs.drift import DriftMonitor

            self._monitor = DriftMonitor(
                self.prepared.plan,
                engine.distribution,
                expected=self.prepared.expected_where_cost,
                threshold=self._threshold,
            )
        return self._monitor


class AcquisitionalService:
    """Serve many acquisitional queries through one shared plan cache.

    Parameters
    ----------
    engine:
        The underlying engine (owns schema, statistics, and planners).
    cache_capacity:
        Maximum number of cached plans.
    cache_policy:
        ``"lru"`` (recency) or ``"lfu"`` (frequency — the right choice
        for heavily skewed workloads).
    cache_enabled:
        ``False`` plans every statement from scratch; useful as the
        baseline when measuring what the cache buys.
    verify_admission:
        ``True`` (the default) runs the static plan verifier
        (:func:`repro.verify.verify_plan`) as the cache's admission
        gate: a plan with ERROR-severity diagnostics is served once but
        never cached, and the rejection is counted in :meth:`stats`
        (``plans_rejected`` and the cache's ``rejections``).
    profiling:
        ``True`` keeps a per-plan :class:`~repro.obs.PlanProfile` fed by
        every execution, enabling :meth:`profile_for`,
        :meth:`drift_reports`, and :meth:`check_drift`.  Off by default:
        the disabled path adds no per-node work.
    tracer:
        Optional :class:`~repro.obs.Tracer` receiving one structured
        event per phase (plan / verify / cache-hit / cache-miss /
        execute / replan) with span ids and timings.
    drift_threshold:
        Normalized chi-square score above which :meth:`check_drift`
        declares a plan drifted.
    drift_min_tuples:
        Plans profiled on fewer tuples than this are skipped by
        :meth:`check_drift` (small samples make the score noisy).
    exec_backend:
        ``"interp"`` (the default) executes WHERE clauses with the
        interpreting tree walker; ``"compiled"`` lowers each served
        plan to kernel IR, runs the translation validator, and — only
        when the equivalence proof succeeds (counted in
        ``plans_compiled``) — executes through the columnar compiled
        tier.  Plans whose kernels fail to compile or fail validation
        are counted in ``tv_rejected`` and served by the interpreter.
    """

    def __init__(
        self,
        engine: AcquisitionalEngine,
        cache_capacity: int = 256,
        cache_policy: str = "lru",
        cache_enabled: bool = True,
        verify_admission: bool = True,
        profiling: bool = False,
        tracer: "Tracer | None" = None,
        drift_threshold: float = 25.0,
        drift_min_tuples: int = 256,
        exec_backend: str = "interp",
    ) -> None:
        self._engine = engine
        self._verify_admission = bool(verify_admission)
        admission = self._admit_plan if self._verify_admission else None
        self._cache: PlanCache[QueryFingerprint, PreparedQuery] = PlanCache(
            capacity=cache_capacity, policy=cache_policy, admission=admission
        )
        self._cache_enabled = bool(cache_enabled)
        self._metrics = MetricsRegistry()
        self._profiling = bool(profiling)
        self._tracer = tracer
        if drift_threshold <= 0:
            raise ServiceError(
                f"drift_threshold must be positive, got {drift_threshold}"
            )
        if drift_min_tuples < 1:
            raise ServiceError(
                f"drift_min_tuples must be >= 1, got {drift_min_tuples}"
            )
        self._drift_threshold = float(drift_threshold)
        self._drift_min_tuples = int(drift_min_tuples)
        if exec_backend not in EXEC_BACKENDS:
            raise ServiceError(
                f"unknown exec_backend {exec_backend!r}; "
                f"expected one of {EXEC_BACKENDS}"
            )
        self._exec_backend = exec_backend
        self._compiled: dict[QueryFingerprint, _CompiledEntry] = {}
        if exec_backend == "compiled":
            # Pre-register the pair so dashboards see explicit zeros.
            self._metrics.counter("plans_compiled")
            self._metrics.counter("tv_rejected")
        self._profiles: dict[QueryFingerprint, _PlanObservability] = {}
        self._bandit_store: "BanditStateStore | None" = None
        self._active_span = ""
        engine.add_statistics_listener(self._on_statistics_version)

    def _timer(self) -> "Callable[[], float]":
        """The clock trace durations are measured on.

        With a tracer attached, durations come off the tracer's
        injectable clock so traces stay byte-reproducible under a fake
        clock; without one (no trace events to stamp anyway) the
        monotonic clock is the right tool.  Metrics histograms always
        observe real ``perf_counter`` elapsed time regardless.
        """
        if self._tracer is not None:
            return self._tracer.now
        return time.perf_counter

    def _admit_plan(
        self, _fingerprint: QueryFingerprint, prepared: PreparedQuery
    ) -> bool:
        """Cache-admission gate: statically verify the prepared plan."""
        timer = self._timer()
        start = timer()
        report = verify_plan(
            prepared.plan,
            self._engine.schema,
            query=prepared.parsed.query,
            distribution=self._engine.distribution,
            claimed_cost=prepared.expected_where_cost,
        )
        if self._tracer is not None:
            self._tracer.emit(
                "verify",
                span=self._active_span,
                fingerprint=str(_fingerprint),
                ms=(timer() - start) * 1e3,
                ok=report.ok,
            )
        if not report.ok:
            self._metrics.counter("plans_rejected").increment()
            if self._tracer is not None:
                self._tracer.emit(
                    "cache-reject",
                    span=self._active_span,
                    fingerprint=str(_fingerprint),
                    errors=len(report.errors),
                )
        return report.ok

    # ------------------------------------------------------------------
    # Planning path
    # ------------------------------------------------------------------

    @property
    def engine(self) -> AcquisitionalEngine:
        return self._engine

    @property
    def cache(self) -> PlanCache:
        return self._cache

    @property
    def cache_enabled(self) -> bool:
        return self._cache_enabled

    @property
    def profiling(self) -> bool:
        return self._profiling

    @property
    def exec_backend(self) -> str:
        return self._exec_backend

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def tracer(self) -> "Tracer | None":
        return self._tracer

    @contextmanager
    def quiet_tracing(self) -> Iterator[None]:
        """Suppress the service's own trace events for the duration.

        The sharded tier's batched execution path provides its own
        span-level attribution (one ``shard-execute`` span per request
        group, carrying the Eq. 3 result fields); the service's flat
        per-group events would land in the shard-local buffer unseen —
        never exported on replies, never streamed — so emitting them is
        pure per-request overhead there.  Single-owner synchronous use
        only, like the tracer itself.
        """
        tracer, self._tracer = self._tracer, None
        try:
            yield
        finally:
            self._tracer = tracer

    def fingerprint(self, text: str) -> QueryFingerprint:
        """Canonical fingerprint of a statement under the engine's schema."""
        return fingerprint_parsed(
            parse_query(text, self._engine.schema), self._engine.schema
        )

    def plan_for(self, text: str) -> PreparedQuery:
        """The (cached) prepared plan serving a statement."""
        parsed = parse_query(text, self._engine.schema)
        fingerprint = fingerprint_parsed(parsed, self._engine.schema)
        return self._prepared_for(parsed, fingerprint, text, span="")

    def _span(self) -> str:
        return self._tracer.new_span() if self._tracer is not None else ""

    def _prepared_for(
        self,
        parsed: ParsedQuery,
        fingerprint: QueryFingerprint,
        text: str,
        span: str,
    ) -> PreparedQuery:
        version = self._engine.statistics_version
        if self._cache_enabled:
            cached = self._cache.get(fingerprint, version)
            if cached is not None:
                self._metrics.labeled_counter("cache_events", "event").labels(
                    event="hit"
                ).increment()
                if self._tracer is not None:
                    self._tracer.emit(
                        "cache-hit", span=span, fingerprint=str(fingerprint)
                    )
                return cached
            self._metrics.labeled_counter("cache_events", "event").labels(
                event="miss"
            ).increment()
            if self._tracer is not None:
                self._tracer.emit(
                    "cache-miss", span=span, fingerprint=str(fingerprint)
                )
        timer = self._timer()
        build_start = timer()
        prepared = self._engine.prepare_parsed(parsed, text=text)
        build_ms = (timer() - build_start) * 1e3
        self._metrics.counter("plans_built").increment()
        self._metrics.histogram("planning").observe(prepared.planning_seconds)
        if self._tracer is not None:
            self._tracer.emit(
                "plan",
                span=span,
                fingerprint=str(fingerprint),
                ms=build_ms,
                planner=prepared.planner,
            )
        if self._cache_enabled:
            self._active_span = span
            try:
                self._cache.put(fingerprint, version, prepared)
            finally:
                self._active_span = ""
        return prepared

    def _kernel_for(
        self,
        fingerprint: QueryFingerprint,
        prepared: PreparedQuery,
        span: str,
    ) -> "CompiledPlan | None":
        """The proven kernel serving ``prepared``, or None (interpreter).

        Compiles at most once per (fingerprint, plan): the entry is
        rebuilt when the served plan object changes (replanning under
        new statistics) and dropped wholesale on statistics bumps.  A
        kernel is used only when the translation validator's equivalence
        proof succeeds; failures — lowering errors and ``TV*``
        rejections alike — fall back to the interpreting walker.
        """
        if self._exec_backend != "compiled":
            return None
        entry = self._compiled.get(fingerprint)
        if entry is not None and entry.prepared is prepared:
            return entry.kernel
        from repro.compile import compile_plan
        from repro.exceptions import CompileError

        kernel: "CompiledPlan | None" = None
        detail: dict[str, Any] = {}
        try:
            compiled, report = compile_plan(
                prepared.plan,
                self._engine.schema,
                statistics_version=prepared.statistics_version,
                distribution=self._engine.distribution,
                expected_statistics_version=self._engine.statistics_version,
            )
        except CompileError as error:
            detail = {"reason": "compile-error", "error": str(error)}
        else:
            if report.ok:
                kernel = compiled
            else:
                detail = {
                    "reason": "tv-rejected",
                    "codes": ",".join(sorted(report.codes())),
                }
        if kernel is not None:
            self._metrics.counter("plans_compiled").increment()
        else:
            self._metrics.counter("tv_rejected").increment()
            if self._tracer is not None:
                self._tracer.emit(
                    "compile-reject",
                    span=span,
                    fingerprint=str(fingerprint),
                    **detail,
                )
        self._compiled[fingerprint] = _CompiledEntry(prepared, kernel)
        return kernel

    def _observer(
        self, fingerprint: QueryFingerprint, prepared: PreparedQuery
    ) -> "PlanProfile | None":
        """The per-plan profile fed by this execution (profiling on only).

        A fingerprint's profile is replaced whenever its plan changes
        (replanning under new statistics resets the ledger — old counts
        describe the old tree).
        """
        if not self._profiling:
            return None
        from repro.obs.profile import PlanProfile

        entry = self._profiles.get(fingerprint)
        if entry is None or entry.prepared is not prepared:
            entry = _PlanObservability(
                prepared,
                PlanProfile(self._engine.schema),
                self._drift_threshold,
            )
            self._profiles[fingerprint] = entry
        return entry.profile

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------

    def execute(self, text: str, readings: np.ndarray) -> QueryResult:
        """Serve one statement over live readings."""
        self._metrics.counter("queries").increment()
        span = self._span()
        parsed = parse_query(text, self._engine.schema)
        fingerprint = fingerprint_parsed(parsed, self._engine.schema)
        prepared = self._prepared_for(parsed, fingerprint, text, span)
        observer = self._observer(fingerprint, prepared)
        kernel = self._kernel_for(fingerprint, prepared, span)
        timer = self._timer()
        start = time.perf_counter()
        trace_start = timer()
        result = self._engine.execute_prepared(
            prepared, readings, observer=observer, kernel=kernel
        )
        elapsed = time.perf_counter() - start
        self._metrics.histogram("execution").observe(elapsed)
        if self._tracer is not None:
            self._tracer.emit(
                "execute",
                span=span,
                fingerprint=str(fingerprint),
                ms=(timer() - trace_start) * 1e3,
                rows=len(result.rows),
                tuples=result.tuples_scanned,
            )
        return result

    def execute_resilient(
        self,
        text: str,
        readings: np.ndarray,
        schedule: "FaultSchedule",
        rng: np.random.Generator,
        policy: "FaultPolicy | None" = None,
    ) -> ResilientQueryResult:
        """Serve one statement with fault injection and degradation.

        The served plan is first re-verified *with* the fault policy (the
        ``FT*`` rules: degraded paths must stay sound), and the execution
        feeds the fault metrics — ``acquisitions_failed``,
        ``retries_total``, ``tuples_degraded``, ``tuples_abstained``.
        When the run's failure fraction reaches the policy's
        ``outage_replan_threshold``, the service treats it as a sustained
        outage: the statistics version is bumped, invalidating every
        cached plan, and an ``outage_invalidations`` count is recorded.
        """
        from repro.faults.policy import FaultPolicy

        effective = policy if policy is not None else FaultPolicy()
        self._metrics.counter("queries").increment()
        span = self._span()
        parsed = parse_query(text, self._engine.schema)
        fingerprint = fingerprint_parsed(parsed, self._engine.schema)
        prepared = self._prepared_for(parsed, fingerprint, text, span)
        report = verify_plan(
            prepared.plan,
            self._engine.schema,
            query=parsed.query,
            fault_policy=effective,
        )
        if not report.ok:
            self._metrics.counter("plans_rejected").increment()
            raise PlanVerificationError(report.format(), report=report)
        timer = self._timer()
        start = time.perf_counter()
        trace_start = timer()
        outcome = self._engine.execute_prepared_resilient(
            prepared, readings, schedule, rng, policy=effective
        )
        elapsed = time.perf_counter() - start
        self._metrics.histogram("execution").observe(elapsed)
        self._metrics.counter("acquisitions_failed").increment(
            outcome.acquisitions_failed
        )
        self._metrics.counter("retries_total").increment(outcome.retries_total)
        self._metrics.counter("tuples_degraded").increment(
            outcome.tuples_degraded
        )
        self._metrics.counter("tuples_abstained").increment(
            outcome.tuples_abstained
        )
        if self._tracer is not None:
            self._tracer.emit(
                "execute-resilient",
                span=span,
                fingerprint=str(fingerprint),
                ms=(timer() - trace_start) * 1e3,
                rows=len(outcome.result.rows),
                tuples=outcome.result.tuples_scanned,
                failed=outcome.acquisitions_failed,
                retries=outcome.retries_total,
                degraded=outcome.tuples_degraded,
                abstained=outcome.tuples_abstained,
            )
        self._check_outage(outcome, fingerprint, effective)
        return outcome

    def _check_outage(
        self,
        outcome: ResilientQueryResult,
        fingerprint: QueryFingerprint,
        policy: "FaultPolicy",
    ) -> None:
        """Treat a sustained-outage run as a statistics-invalidation event.

        A high fraction of degraded tuples means the live acquisition
        environment no longer matches what the cached plans were costed
        for — the same staleness signal as statistical drift, handled the
        same way: bump the version, drop every cached plan.
        """
        threshold = policy.outage_replan_threshold
        scanned = outcome.result.tuples_scanned
        if threshold is None or scanned == 0:
            return
        fraction = outcome.tuples_degraded / scanned
        if fraction < threshold:
            return
        self._metrics.counter("outage_invalidations").increment()
        if self._tracer is not None:
            self._tracer.emit(
                "replan",
                fingerprint=str(fingerprint),
                reason="outage",
                failure_fraction=fraction,
            )
        self._engine.bump_statistics_version()

    def execute_batch(
        self, requests: Sequence[tuple[str, np.ndarray]]
    ) -> list[QueryResult]:
        """Serve many requests, grouping same-fingerprint ones.

        Each request is ``(statement text, readings matrix)``.  Requests
        whose statements canonicalize to the same fingerprint are planned
        once and executed in a single vectorized pass over their stacked
        readings; results come back in request order.
        """
        self._metrics.counter("queries").increment(len(requests))
        self._metrics.counter("batch_requests").increment(len(requests))
        span = self._span()
        groups: dict[QueryFingerprint, list[int]] = {}
        parsed_requests: list[tuple[ParsedQuery, np.ndarray]] = []
        for position, (text, readings) in enumerate(requests):
            parsed = parse_query(text, self._engine.schema)
            fingerprint = fingerprint_parsed(parsed, self._engine.schema)
            groups.setdefault(fingerprint, []).append(position)
            parsed_requests.append((parsed, readings))

        results: list[QueryResult | None] = [None] * len(requests)
        for fingerprint, positions in groups.items():
            first_parsed, _first_readings = parsed_requests[positions[0]]
            text = requests[positions[0]][0]
            prepared = self._prepared_for(
                first_parsed, fingerprint, text, span
            )
            observer = self._observer(fingerprint, prepared)
            kernel = self._kernel_for(fingerprint, prepared, span)
            matrices = [parsed_requests[p][1] for p in positions]
            timer = self._timer()
            start = time.perf_counter()
            trace_start = timer()
            group_results = self._engine.execute_prepared_many(
                prepared, matrices, observer=observer, kernel=kernel
            )
            elapsed = time.perf_counter() - start
            self._metrics.histogram("execution").observe(elapsed)
            if self._tracer is not None:
                self._tracer.emit(
                    "execute",
                    span=span,
                    fingerprint=str(fingerprint),
                    ms=(timer() - trace_start) * 1e3,
                    requests=len(positions),
                )
            for position, result in zip(positions, group_results):
                results[position] = result
        self._metrics.counter("batch_groups").increment(len(groups))
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Statistics lifecycle
    # ------------------------------------------------------------------

    def refit(
        self, history: np.ndarray, smoothing: float | None = None
    ) -> int:
        """Refit engine statistics; every cached plan is invalidated."""
        return self._engine.refit(history, smoothing=smoothing)

    def stream_executor(
        self, text: str, **kwargs: Any
    ) -> AdaptiveStreamExecutor:
        """An adaptive stream executor wired into cache invalidation.

        The executor replans on drift (Section 7); each
        :class:`~repro.execution.streaming.ReplanEvent` is proof that the
        live statistics have moved away from what the engine's cached
        plans were trained on, so the service bumps the statistics
        version — invalidating the plan cache — on every swap.
        ``kwargs`` pass through to
        :class:`~repro.execution.streaming.AdaptiveStreamExecutor`
        (including the profile-drift knobs).
        """
        parsed = parse_query(text, self._engine.schema)
        if not parsed.is_conjunctive:
            raise QueryError(
                "adaptive streaming requires a conjunctive WHERE clause"
            )
        if "on_replan" in kwargs:
            raise ServiceError(
                "on_replan is owned by the service; use engine callbacks "
                "for additional replan handling"
            )

        def on_replan(event: ReplanEvent) -> None:
            self._metrics.counter("stream_replans").increment()
            if event.reason == "outage":
                self._metrics.counter("outage_replans").increment()
            if self._tracer is not None:
                self._tracer.emit(
                    "replan",
                    reason=event.reason,
                    position=event.position,
                    expected_cost=event.expected_cost,
                    drift_score=event.drift_score,
                )
            self._engine.bump_statistics_version()

        return AdaptiveStreamExecutor(
            self._engine.schema,
            parsed.query,
            planner_factory=self._engine.planner_factory,
            on_replan=on_replan,
            **kwargs,
        )

    def learned_stream_executor(
        self, text: str, **kwargs: Any
    ) -> "LearnedStreamExecutor":
        """A bandit-learning stream executor wired into the service.

        The learned twin of :meth:`stream_executor`: instead of replan-
        from-scratch on drift, the returned executor runs the
        :class:`~repro.learn.LearnedStreamExecutor` loop — incremental
        PAO order swaps, warm-started chi-square refits, and a regret
        ledger — while the service supplies the glue:

        - plan-affecting events land in the metrics registry
          (``learned_order_swaps`` / ``learned_drift_refits`` /
          ``learned_commits``) and, when a tracer is attached, as
          ``learn`` trace events; the ``learned_regret_remaining`` gauge
          tracks the unspent exploration budget;
        - a drift refit is the same staleness signal the adaptive path
          treats as a cache-invalidation event, so it bumps the
          statistics version;
        - bandit state is stored in the service-owned
          :class:`~repro.learn.BanditStateStore` keyed by the
          statement's fingerprint digest and the engine's statistics
          version.  The store is deliberately *not* cleared on version
          bumps: posteriors are evidence, not derived artifacts, and a
          new executor for the same statement warm-starts (discounted)
          from the latest stored generation.

        ``kwargs`` pass through to
        :class:`~repro.learn.LearnedStreamExecutor`; the service owns
        ``on_replan``, ``state_store``, ``state_key``, and
        ``version_provider``.
        """
        from repro.learn import LearnedStreamExecutor
        from repro.learn.stream import LearnedReplanEvent

        parsed = parse_query(text, self._engine.schema)
        if not parsed.is_conjunctive:
            raise QueryError(
                "learned streaming requires a conjunctive WHERE clause"
            )
        for owned in (
            "on_replan",
            "state_store",
            "state_key",
            "version_provider",
        ):
            if owned in kwargs:
                raise ServiceError(
                    f"{owned} is owned by the service's learned-stream "
                    "integration; it wires metrics, tracing, and the "
                    "fingerprint-keyed bandit state store itself"
                )
        fingerprint = fingerprint_parsed(parsed, self._engine.schema)

        def on_replan(event: LearnedReplanEvent) -> None:
            if event.reason == "order-swap":
                self._metrics.counter("learned_order_swaps").increment()
            elif event.reason == "commit":
                self._metrics.counter("learned_commits").increment()
            elif event.reason in ("drift-refit", "outage"):
                self._metrics.counter("learned_drift_refits").increment()
                self._engine.bump_statistics_version()
            self._metrics.gauge("learned_regret_remaining").set(
                event.budget_remaining
            )
            if self._tracer is not None:
                self._tracer.emit(
                    "learn",
                    fingerprint=str(fingerprint),
                    reason=event.reason,
                    position=event.position,
                    branch=event.branch,
                    arm=event.arm,
                    expected_cost=event.expected_cost,
                    budget_remaining=event.budget_remaining,
                )

        return LearnedStreamExecutor(
            self._engine.schema,
            parsed.query,
            on_replan=on_replan,
            state_store=self.bandit_store,
            state_key=str(fingerprint),
            version_provider=lambda: self._engine.statistics_version,
            **kwargs,
        )

    @property
    def bandit_store(self) -> "BanditStateStore":
        """The service-owned bandit state store (created on first use)."""
        if self._bandit_store is None:
            from repro.learn import BanditStateStore

            self._bandit_store = BanditStateStore()
        return self._bandit_store

    def _on_statistics_version(self, version: int) -> None:
        self._metrics.counter("statistics_bumps").increment()
        self._cache.invalidate_stale(version)
        # Profiles describe plans trained on the old statistics; their
        # monitors' predictions are stale too.  Start fresh ledgers.
        self._profiles.clear()
        # Kernels carry the old statistics stamp (TV010 would reject
        # them anyway); drop them with the plans they were lowered from.
        self._compiled.clear()
        # The bandit state store survives on purpose: learned posteriors
        # are evidence (adopted with a discount), not artifacts derived
        # from the outgoing statistics generation.

    # ------------------------------------------------------------------
    # Drift monitoring
    # ------------------------------------------------------------------

    def profile_for(self, text: str) -> "PlanProfile | None":
        """The live profile of the plan serving ``text`` (or ``None``)."""
        if not self._profiling:
            return None
        entry = self._profiles.get(self.fingerprint(text))
        return entry.profile if entry is not None else None

    def drift_reports(
        self, min_tuples: int | None = None
    ) -> dict[str, "DriftReport"]:
        """Assess every sufficiently-profiled plan; no side effects.

        Keys are fingerprint digests (the stable metrics/log label).
        """
        if not self._profiling:
            return {}
        floor = self._drift_min_tuples if min_tuples is None else min_tuples
        reports: dict[str, DriftReport] = {}
        for fingerprint, entry in self._profiles.items():
            if entry.profile.tuples < floor:
                continue
            reports[str(fingerprint)] = entry.monitor(self._engine).assess(
                entry.profile
            )
        return reports

    def check_drift(
        self, refit_history: np.ndarray | None = None
    ) -> dict[str, "DriftReport"]:
        """Assess drift and, if any plan drifted, invalidate stale plans.

        Counts each drifted plan in ``plans_drifted``; when at least one
        plan drifted, counts one ``replans_triggered`` and either refits
        the engine on ``refit_history`` (when given) or bumps the
        statistics version — both invalidate every cached plan, so
        subsequent requests replan against fresh statistics.  Returns
        the per-plan reports (keyed by fingerprint digest) computed
        *before* invalidation.
        """
        if not self._profiling:
            raise ServiceError(
                "check_drift requires the service to be built with "
                "profiling=True"
            )
        reports = self.drift_reports()
        drifted = {
            digest: report
            for digest, report in reports.items()
            if report.drifted
        }
        for digest, report in drifted.items():
            self._metrics.counter("plans_drifted").increment()
            if self._tracer is not None:
                self._tracer.emit(
                    "replan",
                    fingerprint=digest,
                    reason="profile-drift",
                    drift_score=report.normalized,
                    cost_ratio=report.cost_ratio,
                )
        if drifted:
            self._metrics.counter("replans_triggered").increment()
            if refit_history is not None:
                self.refit(refit_history)
            else:
                self._engine.bump_statistics_version()
        return reports

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Point-in-time service snapshot: cache, counters, latencies."""
        cache_stats = self._cache.stats()
        self._metrics.gauge("cache_size").set(cache_stats.size)
        self._metrics.gauge("statistics_version").set(
            self._engine.statistics_version
        )
        self._metrics.gauge("profiled_plans").set(len(self._profiles))
        metrics = self._metrics.snapshot()
        return {
            "statistics_version": self._engine.statistics_version,
            "cache_enabled": self._cache_enabled,
            "profiling": self._profiling,
            "exec_backend": self._exec_backend,
            "cache": cache_stats.as_dict(),
            "counters": metrics["counters"],
            "gauges": metrics["gauges"],
            "labeled_counters": metrics["labeled_counters"],
            "latency": metrics["histograms"],
        }
