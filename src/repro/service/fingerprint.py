"""Query canonicalization and fingerprinting for the serving layer.

A production workload is heavily skewed: the same handful of query
*shapes* arrives over and over, spelled slightly differently each time
(predicate order shuffled by client-side query builders, ``SELECT *``
vs. an explicit column list, redundant same-attribute comparisons).  To
share one plan-cache slot across every spelling, statements are lowered
to a canonical form before hashing:

- the WHERE clause is normalized — conjunct order is sorted by schema
  index (predicate order never changes conjunctive semantics), nested
  AND/OR nests are flattened, and OR branches are sorted by a canonical
  key;
- literals are bucketed onto the discretization grid: every bound is
  clamped into the attribute's domain ``1 .. K_i``, so ``temp <= 12``
  and ``temp <= 9`` on an 8-bucket domain collapse to the same range
  (the parser applies the same clamping, making the two statements
  genuinely equivalent);
- the projection list is resolved — ``SELECT *`` becomes the explicit
  schema-ordered column list it returns.

The resulting :class:`QueryFingerprint` is frozen and hashable; two
statements share a fingerprint iff they return the same columns and
accept the same tuples.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from repro.core.attributes import Schema
from repro.core.boolean import And, BooleanQuery, Formula, Leaf, Or
from repro.core.predicates import NotRangePredicate, Predicate
from repro.core.query import ConjunctiveQuery
from repro.engine.language import ParsedQuery, parse_query

__all__ = [
    "QueryFingerprint",
    "fingerprint_parsed",
    "fingerprint_statement",
]


@dataclass(frozen=True)
class QueryFingerprint:
    """Canonical identity of a statement: projection + normalized WHERE.

    ``digest`` is a short stable hash of the canonical form, convenient
    as a log/metrics label; equality and hashing use the full canonical
    fields, so distinct queries never collide in a cache keyed by the
    fingerprint itself.
    """

    select: tuple[str, ...]
    where: str

    @property
    def digest(self) -> str:
        return _digest(self.select, self.where)

    def __str__(self) -> str:
        return self.digest


@lru_cache(maxsize=4096)
def _digest(select: tuple[str, ...], where: str) -> str:
    """The short hash behind :attr:`QueryFingerprint.digest`.

    Memoized on the canonical fields: a skewed workload stamps the same
    handful of digests onto metrics labels and trace events over and
    over, and the sha256 would otherwise be recomputed per event.
    """
    payload = f"SELECT {','.join(select)} WHERE {where}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _predicate_key(
    predicate: Predicate, schema: Schema
) -> tuple[int, int, int, int]:
    """Sort/identity key: (schema index, negated?, clamped bounds)."""
    index = schema.index_of(predicate.attribute)
    domain = schema[index].domain_size
    low = max(1, int(predicate.low))  # type: ignore[attr-defined]
    high = min(domain, int(predicate.high))  # type: ignore[attr-defined]
    negated = int(isinstance(predicate, NotRangePredicate))
    return (index, negated, low, high)


def _render_key(key: tuple[int, int, int, int], schema: Schema) -> str:
    index, negated, low, high = key
    name = schema[index].name
    body = f"{low}<={name}<={high}"
    return f"not({body})" if negated else body


def _canonical_formula(formula: Formula, schema: Schema) -> str:
    if isinstance(formula, Leaf):
        return _render_key(_predicate_key(formula.predicate, schema), schema)
    if isinstance(formula, (And, Or)):
        connective = " AND " if isinstance(formula, And) else " OR "
        parts = sorted(
            _flatten(formula, type(formula), schema)
        )
        return "(" + connective.join(parts) + ")"
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def _flatten(formula: Formula, node_type: type, schema: Schema) -> list[str]:
    """Canonical child renderings, with same-type nests flattened."""
    parts: list[str] = []
    for child in formula.children:  # type: ignore[attr-defined]
        if isinstance(child, node_type):
            parts.extend(_flatten(child, node_type, schema))
        else:
            parts.append(_canonical_formula(child, schema))
    return parts


def _canonical_where(
    query: ConjunctiveQuery | BooleanQuery, schema: Schema
) -> str:
    if isinstance(query, ConjunctiveQuery):
        keys = sorted(
            _predicate_key(predicate, schema)
            for predicate in query.predicates
        )
        return " AND ".join(_render_key(key, schema) for key in keys)
    return _canonical_formula(query.formula, schema)


def fingerprint_parsed(
    parsed: ParsedQuery, schema: Schema
) -> QueryFingerprint:
    """Fingerprint of an already-parsed statement."""
    if parsed.select_all:
        select = schema.names
    else:
        select = tuple(parsed.select)
    return QueryFingerprint(
        select=select, where=_canonical_where(parsed.query, schema)
    )


def fingerprint_statement(text: str, schema: Schema) -> QueryFingerprint:
    """Parse ``text`` against ``schema`` and fingerprint it."""
    return fingerprint_parsed(parse_query(text, schema), schema)
