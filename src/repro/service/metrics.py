"""In-process metrics for the serving layer.

A deliberately small registry — counters, labeled counter families,
gauges, and latency histograms with a dict snapshot — so the service can
answer "what is my hit rate, where does time go" without external
dependencies.  Histograms keep a bounded reservoir of the most recent
observations (latency distributions drift with the workload; old samples
stop being representative) plus running aggregates over the full
lifetime.  :func:`repro.obs.render_prometheus` turns a registry snapshot
into the Prometheus text exposition format.
"""

from __future__ import annotations

import re
from collections import deque

import numpy as np

from repro.exceptions import ServiceError

__all__ = [
    "Counter",
    "Gauge",
    "LabeledCounter",
    "LatencyHistogram",
    "MetricsRegistry",
]

_DEFAULT_RESERVOIR = 8_192
_PERCENTILES = (50.0, 90.0, 99.0)
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically-increasing event counter."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ServiceError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value that can move both ways (sizes, versions)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def increment(self, amount: float = 1.0) -> None:
        self._value += float(amount)

    @property
    def value(self) -> float:
        return self._value


class LabeledCounter:
    """A family of counters keyed by a fixed set of label names.

    ``family.labels(event="hit")`` returns (creating on first use) the
    child :class:`Counter` for that label combination — mirroring the
    Prometheus client idiom, so the exposition layer can render one
    sample per combination.
    """

    __slots__ = ("_label_names", "_children")

    def __init__(self, label_names: tuple[str, ...]) -> None:
        if not label_names:
            raise ServiceError("labeled counters need at least one label name")
        for name in label_names:
            if not _LABEL_NAME.match(name):
                raise ServiceError(f"invalid label name {name!r}")
        self._label_names = label_names
        self._children: dict[tuple[str, ...], Counter] = {}

    @property
    def label_names(self) -> tuple[str, ...]:
        return self._label_names

    def labels(self, **labels: str) -> Counter:
        if set(labels) != set(self._label_names):
            raise ServiceError(
                f"expected labels {sorted(self._label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self._label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = Counter()
        return child

    def snapshot(self) -> dict:
        return {
            "labels": list(self._label_names),
            "series": [
                {
                    "labels": dict(zip(self._label_names, key)),
                    "value": child.value,
                }
                for key, child in sorted(self._children.items())
            ],
        }


class LatencyHistogram:
    """Latency tracker: lifetime aggregates + recent-window percentiles.

    Observations are seconds; snapshots report milliseconds (the natural
    unit at serving granularity).  Two kinds of numbers coexist and must
    not be conflated:

    - ``count``, ``mean_ms``, ``max_ms`` aggregate over the histogram's
      whole lifetime;
    - percentiles come from a sliding reservoir holding only the most
      recent ``reservoir`` observations, and are therefore reported as
      ``p50_ms_window`` / ``p90_ms_window`` / ``p99_ms_window``, with
      ``window`` (current reservoir fill) and ``reservoir`` (capacity)
      alongside so readers can judge how much data backs them.
    """

    def __init__(self, reservoir: int = _DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ServiceError(f"reservoir must be >= 1, got {reservoir}")
        self._recent: deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        value = float(seconds)
        if value < 0.0:
            raise ServiceError(f"latency must be >= 0, got {value}")
        self._recent.append(value)
        self._count += 1
        self._total += value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean_seconds(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (seconds) over the recent reservoir."""
        if not self._recent:
            return 0.0
        return float(np.percentile(np.fromiter(self._recent, float), q))

    def snapshot(self) -> dict:
        reservoir = self._recent.maxlen
        report = {
            "count": self._count,
            "mean_ms": round(self.mean_seconds * 1e3, 4),
            "max_ms": round(self._max * 1e3, 4),
            "window": len(self._recent),
            "reservoir": reservoir if reservoir is not None else 0,
        }
        for q in _PERCENTILES:
            report[f"p{q:g}_ms_window"] = round(self.percentile(q) * 1e3, 4)
        return report


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._labeled: dict[str, LabeledCounter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def labeled_counter(self, name: str, *label_names: str) -> LabeledCounter:
        family = self._labeled.get(name)
        if family is None:
            family = self._labeled[name] = LabeledCounter(tuple(label_names))
        elif label_names and family.label_names != tuple(label_names):
            raise ServiceError(
                f"labeled counter {name!r} registered with labels "
                f"{family.label_names}, requested {label_names}"
            )
        return family

    def histogram(self, name: str) -> LatencyHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram()
        return histogram

    def snapshot(self) -> dict:
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "labeled_counters": {
                name: family.snapshot()
                for name, family in sorted(self._labeled.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }
