"""In-process metrics for the serving layer.

A deliberately small registry — counters, labeled counter families,
gauges, and latency histograms with a dict snapshot — so the service can
answer "what is my hit rate, where does time go" without external
dependencies.  Histograms keep a bounded reservoir of the most recent
observations (latency distributions drift with the workload; old samples
stop being representative) plus running aggregates over the full
lifetime.  :func:`repro.obs.render_prometheus` turns a registry snapshot
into the Prometheus text exposition format.

Every metric (and the registry's create-on-first-use maps) is guarded by
a lock, so collection from request threads and scraping from a
front-door aggregator can interleave without dropping samples.  The
locks are per-object and never held across user code, so contention is
one dict/deque operation wide.  *Process* safety is by construction
rather than by locking: each shard worker owns a private registry, and
cross-process aggregation happens on immutable snapshots via
:func:`merge_snapshots`.
"""

from __future__ import annotations

import re
import threading
from collections import deque
from typing import Any, Iterable, Mapping

import numpy as np

from repro.exceptions import ServiceError

__all__ = [
    "Counter",
    "Gauge",
    "LabeledCounter",
    "LatencyHistogram",
    "MetricsRegistry",
    "merge_snapshots",
]

_DEFAULT_RESERVOIR = 8_192
_PERCENTILES = (50.0, 90.0, 99.0)
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically-increasing event counter (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ServiceError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can move both ways (sizes, versions)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def increment(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LabeledCounter:
    """A family of counters keyed by a fixed set of label names.

    ``family.labels(event="hit")`` returns (creating on first use) the
    child :class:`Counter` for that label combination — mirroring the
    Prometheus client idiom, so the exposition layer can render one
    sample per combination.  Child creation is serialized so two threads
    racing on a new label set observe the same child.
    """

    __slots__ = ("_label_names", "_children", "_lock")

    def __init__(self, label_names: tuple[str, ...]) -> None:
        if not label_names:
            raise ServiceError("labeled counters need at least one label name")
        for name in label_names:
            if not _LABEL_NAME.match(name):
                raise ServiceError(f"invalid label name {name!r}")
        self._label_names = label_names
        self._children: dict[tuple[str, ...], Counter] = {}
        self._lock = threading.Lock()

    @property
    def label_names(self) -> tuple[str, ...]:
        return self._label_names

    def labels(self, **labels: str) -> Counter:
        if set(labels) != set(self._label_names):
            raise ServiceError(
                f"expected labels {sorted(self._label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self._label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = Counter()
        return child

    def snapshot(self) -> dict:
        with self._lock:
            children = sorted(self._children.items())
        return {
            "labels": list(self._label_names),
            "series": [
                {
                    "labels": dict(zip(self._label_names, key)),
                    "value": child.value,
                }
                for key, child in children
            ],
        }


class LatencyHistogram:
    """Latency tracker: lifetime aggregates + recent-window percentiles.

    Observations are seconds; snapshots report milliseconds (the natural
    unit at serving granularity).  Two kinds of numbers coexist and must
    not be conflated:

    - ``count``, ``mean_ms``, ``max_ms`` aggregate over the histogram's
      whole lifetime;
    - percentiles come from a sliding reservoir holding only the most
      recent ``reservoir`` observations, and are therefore reported as
      ``p50_ms_window`` / ``p90_ms_window`` / ``p99_ms_window``, with
      ``window`` (current reservoir fill) and ``reservoir`` (capacity)
      alongside so readers can judge how much data backs them.

    ``observe`` updates the reservoir and the lifetime aggregates under
    one lock, so a concurrent :meth:`snapshot` never sees a sample
    counted in one but not the other.
    """

    def __init__(self, reservoir: int = _DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ServiceError(f"reservoir must be >= 1, got {reservoir}")
        self._recent: deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        value = float(seconds)
        if value < 0.0:
            raise ServiceError(f"latency must be >= 0, got {value}")
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean_seconds(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (seconds) over the recent reservoir."""
        with self._lock:
            if not self._recent:
                return 0.0
            window = np.fromiter(self._recent, float)
        return float(np.percentile(window, q))

    def snapshot(self) -> dict:
        with self._lock:
            reservoir = self._recent.maxlen
            window = np.fromiter(self._recent, float) if self._recent else None
            count = self._count
            total = self._total
            peak = self._max
        report = {
            "count": count,
            "mean_ms": round((total / count if count else 0.0) * 1e3, 4),
            "max_ms": round(peak * 1e3, 4),
            "window": 0 if window is None else int(window.size),
            "reservoir": reservoir if reservoir is not None else 0,
        }
        for q in _PERCENTILES:
            value = 0.0 if window is None else float(np.percentile(window, q))
            report[f"p{q:g}_ms_window"] = round(value * 1e3, 4)
        return report


class MetricsRegistry:
    """Named counters, gauges, and histograms, created on first use.

    Lookup-or-create is serialized, so two threads asking for the same
    name always share one metric object (a racy double-create would
    silently drop one thread's samples).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._labeled: dict[str, LabeledCounter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
        return gauge

    def labeled_counter(self, name: str, *label_names: str) -> LabeledCounter:
        with self._lock:
            family = self._labeled.get(name)
            if family is None:
                family = self._labeled[name] = LabeledCounter(tuple(label_names))
            elif label_names and family.label_names != tuple(label_names):
                raise ServiceError(
                    f"labeled counter {name!r} registered with labels "
                    f"{family.label_names}, requested {label_names}"
                )
        return family

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
        return histogram

    def snapshot(self) -> dict:
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            labeled = sorted(self._labeled.items())
            histograms = sorted(self._histograms.items())
        return {
            "counters": {name: counter.value for name, counter in counters},
            "gauges": {name: gauge.value for name, gauge in gauges},
            "labeled_counters": {
                name: family.snapshot() for name, family in labeled
            },
            "histograms": {
                name: histogram.snapshot() for name, histogram in histograms
            },
        }


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> dict:
    """Merge per-shard registry snapshots into one cluster-wide view.

    The merge rules follow each metric family's semantics:

    - counters and labeled counter series sum across shards;
    - gauges sum too (sizes and plan counts add up), *except* names
      ending in ``_version`` where the maximum is kept — versions are
      watermarks, not quantities;
    - histograms sum ``count``/``window``, keep the max of ``max_ms``,
      weight ``mean_ms`` by each shard's lifetime count, and take the
      *maximum* of each ``p*_ms_window`` across shards.  Percentiles of
      disjoint reservoirs cannot be reconstructed from summaries, so the
      merged value is the conservative (worst-shard) bound; per-shard
      exposition keeps the exact numbers.

    Used by the front door to aggregate worker registries without any
    shared-memory coordination: workers ship immutable snapshot dicts,
    so no sample can race or be dropped mid-merge.
    """
    merged: dict[str, Any] = {
        "counters": {},
        "gauges": {},
        "labeled_counters": {},
        "histograms": {},
    }
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            if name.endswith("_version"):
                merged["gauges"][name] = max(
                    merged["gauges"].get(name, value), value
                )
            else:
                merged["gauges"][name] = merged["gauges"].get(name, 0.0) + value
        for name, family in snapshot.get("labeled_counters", {}).items():
            target = merged["labeled_counters"].setdefault(
                name, {"labels": list(family.get("labels", [])), "series": []}
            )
            index = {
                tuple(sorted(entry["labels"].items())): entry
                for entry in target["series"]
            }
            for series in family.get("series", []):
                key = tuple(sorted(series["labels"].items()))
                entry = index.get(key)
                if entry is None:
                    entry = {"labels": dict(series["labels"]), "value": 0}
                    index[key] = entry
                    target["series"].append(entry)
                entry["value"] += series["value"]
        for name, fields in snapshot.get("histograms", {}).items():
            target = merged["histograms"].get(name)
            if target is None:
                merged["histograms"][name] = dict(fields)
                continue
            old_count = target.get("count", 0)
            new_count = fields.get("count", 0)
            total = old_count + new_count
            if total:
                target["mean_ms"] = round(
                    (
                        target.get("mean_ms", 0.0) * old_count
                        + fields.get("mean_ms", 0.0) * new_count
                    )
                    / total,
                    4,
                )
            target["count"] = total
            target["window"] = target.get("window", 0) + fields.get("window", 0)
            target["reservoir"] = max(
                target.get("reservoir", 0), fields.get("reservoir", 0)
            )
            target["max_ms"] = max(
                target.get("max_ms", 0.0), fields.get("max_ms", 0.0)
            )
            for key in fields:
                if key.startswith("p") and key.endswith("_ms_window"):
                    target[key] = max(
                        target.get(key, 0.0), fields.get(key, 0.0)
                    )
    for family in merged["labeled_counters"].values():
        family["series"].sort(
            key=lambda entry: tuple(sorted(entry["labels"].items()))
        )
    return merged
