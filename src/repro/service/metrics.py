"""In-process metrics for the serving layer.

A deliberately small registry — counters and latency histograms with a
dict snapshot — so the service can answer "what is my hit rate, where
does time go" without external dependencies.  Histograms keep a bounded
reservoir of the most recent observations (latency distributions drift
with the workload; old samples stop being representative) plus running
aggregates over the full lifetime.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import ServiceError

__all__ = ["Counter", "LatencyHistogram", "MetricsRegistry"]

_DEFAULT_RESERVOIR = 8_192
_PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotonically-increasing event counter."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ServiceError(f"counter increments must be >= 0, got {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class LatencyHistogram:
    """Latency tracker: lifetime aggregates + recent-window percentiles.

    Observations are seconds; snapshots report milliseconds (the natural
    unit at serving granularity).  Percentiles come from a sliding
    reservoir of the last ``reservoir`` observations.
    """

    def __init__(self, reservoir: int = _DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ServiceError(f"reservoir must be >= 1, got {reservoir}")
        self._recent: deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        value = float(seconds)
        if value < 0.0:
            raise ServiceError(f"latency must be >= 0, got {value}")
        self._recent.append(value)
        self._count += 1
        self._total += value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean_seconds(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (seconds) over the recent reservoir."""
        if not self._recent:
            return 0.0
        return float(np.percentile(np.fromiter(self._recent, float), q))

    def snapshot(self) -> dict:
        report = {
            "count": self._count,
            "mean_ms": round(self.mean_seconds * 1e3, 4),
            "max_ms": round(self._max * 1e3, 4),
        }
        for q in _PERCENTILES:
            report[f"p{q:g}_ms"] = round(self.percentile(q) * 1e3, 4)
        return report


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> LatencyHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LatencyHistogram()
        return histogram

    def snapshot(self) -> dict:
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }
