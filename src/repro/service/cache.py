"""The plan cache: bounded, statistics-versioned, LRU or LFU.

Entries are keyed by :class:`~repro.service.fingerprint.QueryFingerprint`
and stamped with the engine's statistics version at insert time.  A
lookup under a newer version finds the entry *stale* — the plan was
trained on statistics that no longer describe the data — and drops it on
the spot (counted as an invalidation, returned as a miss).  Serving
layers additionally call :meth:`invalidate_stale` eagerly when the
version bumps, so a refit or an adaptive-stream replan empties the cache
of old-generation plans immediately.

Two eviction policies cover the workloads we care about:

- ``"lru"`` — recency: right default for drifting request mixes;
- ``"lfu"`` — frequency (ties broken by recency): right for the heavy
  Zipf skew of production traffic, where a few hot shapes should never
  be pushed out by a scan of one-off queries.

Concurrency: every operation that reads or mutates the entry map — and
*all* of them do, since even :meth:`get` bumps recency/frequency state
and drops stale generations — runs under one reentrant lock, so
eviction, admission, and version-bump invalidation interleave safely
when a cache is shared across threads.  The admission gate is
deliberately invoked *outside* the lock: verification is orders of
magnitude slower than a dict operation, and running it inside the
critical section would serialize every concurrent miss behind it.  Two
threads admitting the same key may therefore both verify, with the
later insert winning — idempotent, since both verified the same plan.
In the sharded serving tier each shard worker additionally owns its
cache exclusively (single-owner-per-shard), making the lock
uncontended on that path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

from repro.exceptions import ServiceError

__all__ = ["PlanCache", "CacheStats"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_POLICIES = ("lru", "lfu")


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int
    policy: str
    rejections: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
            "size": self.size,
            "capacity": self.capacity,
            "policy": self.policy,
        }


class _Entry(Generic[V]):
    __slots__ = ("version", "value", "frequency")

    def __init__(self, version: int, value: V) -> None:
        self.version = version
        self.value = value
        self.frequency = 0


class PlanCache(Generic[K, V]):
    """Bounded mapping of fingerprint -> (statistics version, plan).

    ``admission`` is an optional gate run on every :meth:`put`: a
    callable ``(key, value) -> bool`` that returns ``False`` to refuse
    the entry (counted in :attr:`CacheStats.rejections`).  The serving
    layer wires the static plan verifier here so an inconsistent plan is
    never served from cache.
    """

    def __init__(
        self,
        capacity: int = 256,
        policy: str = "lru",
        admission: Callable[[K, V], bool] | None = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        if policy not in _POLICIES:
            raise ServiceError(
                f"unknown cache policy {policy!r}; choose from {_POLICIES}"
            )
        self._capacity = int(capacity)
        self._policy = policy
        self._admission = admission
        self._entries: OrderedDict[K, _Entry[V]] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._rejections = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy(self) -> str:
        return self._policy

    def get(self, key: K, version: int) -> V | None:
        """The cached value, or None on miss / stale generation."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.version != version:
                # Trained on old statistics: drop, report a miss.
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None
            self._hits += 1
            entry.frequency += 1
            self._entries.move_to_end(key)
            return entry.value

    def put(self, key: K, version: int, value: V) -> bool:
        """Insert or replace; evicts per policy once capacity is hit.

        Returns ``False`` (and caches nothing) when the admission gate
        refuses the entry.  The gate runs outside the lock (see the
        module docstring for why that race is benign).
        """
        if self._admission is not None and not self._admission(key, value):
            with self._lock:
                self._rejections += 1
            return False
        with self._lock:
            existing = self._entries.pop(key, None)
            while len(self._entries) >= self._capacity:
                self._evict()
            entry = _Entry(version, value)
            if existing is not None and existing.version == version:
                entry.frequency = existing.frequency
            self._entries[key] = entry
        return True

    def invalidate_stale(self, version: int) -> int:
        """Drop every entry not trained on ``version``; returns the count."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if entry.version != version
            ]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self._capacity,
                policy=self._policy,
                rejections=self._rejections,
            )

    def _evict(self) -> None:
        if self._policy == "lru":
            self._entries.popitem(last=False)
        else:
            # LFU: least-frequently-used; OrderedDict iteration order makes
            # the least-recently-touched entry win frequency ties.
            victim = min(
                self._entries, key=lambda key: self._entries[key].frequency
            )
            del self._entries[victim]
        self._evictions += 1
