"""Front-door request coalescing: acquire and plan once, serve many.

The paper's setting makes identical concurrent requests genuinely
shareable: a query fingerprint over a given readings window acquires the
same attributes and returns the same rows no matter how many clients ask,
so only the *first* in-flight request needs to cross the shard boundary.
:class:`CoalescingMap` tracks in-flight executions keyed by
``(fingerprint digest, readings hash, fault key)``; later arrivals
attach an :class:`asyncio.Future` to the existing entry and the single
reply fans out to every waiter.

This map lives on the event loop (single-threaded access), so it needs
no locking; replies arriving from worker threads are marshalled onto
the loop before they touch it.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["CoalescingMap", "InFlight"]


@dataclass
class InFlight:
    """One pending shard execution and everyone waiting on it."""

    key: tuple
    shard: Hashable
    request_id: int
    text: str
    waiters: list[asyncio.Future] = field(default_factory=list)
    #: The dispatched ExecuteRequest, kept so an outage re-route can
    #: resubmit the execution verbatim to the ring successor.
    request: object | None = None
    #: One watchdog timer per execution (not per waiter): cancelled when
    #: the reply lands, fired to expire every waiter at once.
    timeout_handle: object | None = None
    #: Distributed-trace coordinates of the request that opened this
    #: execution (tracing only): an outage re-route parents its reroute
    #: span under ``root_span`` so the re-dispatched execution stays in
    #: the original request's tree.
    trace_id: str = ""
    root_span: str = ""

    @property
    def fanout(self) -> int:
        return len(self.waiters)


class CoalescingMap:
    """In-flight executions keyed by what makes results interchangeable."""

    def __init__(self) -> None:
        self._inflight: dict[tuple, InFlight] = {}
        self._by_request: dict[int, InFlight] = {}
        self.coalesced_requests = 0
        self.dispatched_requests = 0

    def __len__(self) -> int:
        return len(self._inflight)

    @property
    def inflight_requests(self) -> int:
        """Total waiters across every pending execution."""
        return sum(entry.fanout for entry in self._inflight.values())

    def join(self, key: tuple, future: asyncio.Future) -> InFlight | None:
        """Attach to an existing in-flight execution, if any.

        Returns the entry joined, or ``None`` when the caller must
        dispatch a fresh execution (and then :meth:`open` it).
        """
        entry = self._inflight.get(key)
        if entry is None:
            return None
        entry.waiters.append(future)
        self.coalesced_requests += 1
        return entry

    def open(
        self,
        key: tuple,
        shard: Hashable,
        request_id: int,
        text: str,
        future: asyncio.Future,
    ) -> InFlight:
        """Register a freshly-dispatched execution with its first waiter."""
        entry = InFlight(
            key=key, shard=shard, request_id=request_id, text=text
        )
        entry.waiters.append(future)
        self._inflight[key] = entry
        self._by_request[request_id] = entry
        self.dispatched_requests += 1
        return entry

    def resolve(self, request_id: int) -> InFlight | None:
        """Close the execution a reply answers; caller fans out to waiters."""
        entry = self._by_request.pop(request_id, None)
        if entry is None:
            return None
        current = self._inflight.get(entry.key)
        if current is entry:
            del self._inflight[entry.key]
        return entry

    def reassign(self, entry: InFlight, shard: Hashable, request_id: int) -> None:
        """Move a pending execution to a new shard (outage re-route)."""
        self._by_request.pop(entry.request_id, None)
        entry.shard = shard
        entry.request_id = request_id
        self._by_request[request_id] = entry
        self._inflight[entry.key] = entry

    def entries(self) -> list[InFlight]:
        """Every in-flight execution (shutdown sweep)."""
        return list(self._inflight.values())

    def pending_on(self, shard: Hashable) -> list[InFlight]:
        """Every in-flight execution currently owned by ``shard``."""
        return [
            entry
            for entry in self._inflight.values()
            if entry.shard == shard
        ]
