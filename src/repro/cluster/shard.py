"""Shard-local request handling: one service, one cache, one owner.

:class:`ShardServer` wraps a private
:class:`~repro.service.AcquisitionalService` (engine + plan cache +
metrics registry + optional profiling) and speaks the message protocol
of :mod:`repro.cluster.messages`.  The same class backs both the
multiprocessing worker loop (:mod:`repro.cluster.worker`) and the
in-process backend the deterministic tests drive, so every behaviour the
cluster promises — coalescing, chaos, version sync — is testable without
spawning processes.

Coalescing happens *again* at the shard even though the front door
already merges identical in-flight requests: a batch drained from the
queue may contain same-shape requests the front door admitted before the
first reply landed.  Identical ``(fingerprint, readings)`` pairs execute
once and fan out; distinct readings under one fingerprint go through the
service's vectorized batch path.

Chaos determinism: a faulted group's RNG is seeded from
``(fault_seed, fingerprint, readings)`` only — never from batch
composition — so a request's outcome is byte-identical whether it was
served alone, coalesced, or re-routed after an outage.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.cluster.hashring import stable_hash
from repro.cluster.messages import (
    ControlReply,
    ControlRequest,
    ExecuteReply,
    ExecuteRequest,
    ShardConfig,
)
from repro.engine.engine import AcquisitionalEngine, PlannerFactory
from repro.exceptions import ClusterError, ReproError
from repro.planning.base import Planner
from repro.planning.corrseq import CorrSeqPlanner
from repro.planning.greedy_conditional import GreedyConditionalPlanner
from repro.planning.greedy_sequential import GreedySequentialPlanner
from repro.planning.naive import NaivePlanner
from repro.planning.optimal_sequential import OptimalSequentialPlanner
from repro.probability.empirical import EmpiricalDistribution
from repro.service.service import AcquisitionalService

__all__ = ["ShardServer", "readings_key"]

_SEED_MASK = (1 << 32) - 1


def readings_key(readings: np.ndarray) -> str:
    """A content hash of a readings matrix (shape + dtype + bytes).

    Two requests coalesce only when their fingerprints *and* readings
    agree — same query over different windows must execute separately.
    """
    matrix = np.ascontiguousarray(readings)
    header = f"{matrix.shape}:{matrix.dtype.str}:".encode()
    return hashlib.sha256(header + matrix.tobytes()).hexdigest()[:16]


def _planner_factory(config: ShardConfig) -> PlannerFactory:
    """Build the engine's planner factory from a picklable planner name."""
    name = config.planner
    max_splits = config.max_splits

    def factory(distribution: EmpiricalDistribution) -> Planner:
        if name == "naive":
            return NaivePlanner(distribution)
        if name == "greedy-seq":
            return GreedySequentialPlanner(distribution)
        if name == "opt-seq":
            return OptimalSequentialPlanner(distribution)
        if name == "corr-seq":
            return CorrSeqPlanner(distribution)
        return GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=max_splits
        )

    return factory


class ShardServer:
    """One shard's synchronous request handler (single-owner access).

    The service, plan cache, and metrics registry are owned exclusively
    by this server; in the process backend that ownership is physical
    (separate address spaces), in the in-process backend it is enforced
    by the front door serializing calls per shard.
    """

    def __init__(self, shard_id: int, config: ShardConfig) -> None:
        self.shard_id = int(shard_id)
        self._config = config
        engine = AcquisitionalEngine(
            config.schema,
            config.history,
            planner_factory=_planner_factory(config),
            smoothing=config.smoothing,
        )
        self.service = AcquisitionalService(
            engine,
            cache_capacity=config.cache_capacity,
            cache_policy=config.cache_policy,
            verify_admission=config.verify_admission,
            profiling=config.profiling,
        )

    # ------------------------------------------------------------------
    # Execute path
    # ------------------------------------------------------------------

    def handle_batch(
        self, requests: list[ExecuteRequest]
    ) -> list[ExecuteReply]:
        """Serve a drained batch with shard-level coalescing.

        Requests are grouped by ``(fingerprint, readings, fault key)``;
        each group executes exactly once and its reply payload is shared
        by every member (results are immutable).  Plain groups sharing a
        fingerprint additionally execute through the service's stacked
        vectorized pass.
        """
        groups: dict[tuple, list[ExecuteRequest]] = {}
        order: list[tuple] = []
        digests: dict[tuple, str] = {}
        for request in requests:
            digest = request.fingerprint or str(
                self.service.fingerprint(request.text)
            )
            fault_key = None
            if request.fault_schedule is not None:
                fault_key = (
                    repr(sorted(request.fault_schedule.items())),
                    request.fault_seed,
                    request.degradation,
                    request.max_retries,
                )
            key = (digest, readings_key(request.readings), fault_key)
            if key not in groups:
                groups[key] = []
                order.append(key)
                digests[key] = digest
            groups[key].append(request)

        payloads: dict[tuple, tuple[bool, object, str, float]] = {}
        plain = [key for key in order if key[2] is None]
        faulted = [key for key in order if key[2] is not None]

        if plain:
            payloads.update(self._execute_plain(plain, groups))
        for key in faulted:
            payloads[key] = self._execute_faulted(
                groups[key][0], digests[key], key
            )

        replies: list[ExecuteReply] = []
        version = self.service.engine.statistics_version
        for key in order:
            ok, payload, error, elapsed = payloads[key]
            members = groups[key]
            expected = 0.0
            if ok:
                expected = self._expected_cost(members[0].text)
            for request in members:
                replies.append(
                    ExecuteReply(
                        request_id=request.request_id,
                        shard=self.shard_id,
                        ok=ok,
                        payload=payload,
                        error=error,
                        statistics_version=version,
                        group_size=len(members),
                        expected_where_cost=expected,
                        elapsed_seconds=elapsed,
                    )
                )
        order_index = {
            request.request_id: position
            for position, request in enumerate(requests)
        }
        replies.sort(key=lambda reply: order_index[reply.request_id])
        return replies

    def _execute_plain(
        self,
        keys: list[tuple],
        groups: dict[tuple, list[ExecuteRequest]],
    ) -> dict[tuple, tuple[bool, object, str, float]]:
        """One stacked vectorized pass over every unique plain group."""
        start = time.perf_counter()
        unique = [
            (groups[key][0].text, groups[key][0].readings) for key in keys
        ]
        outcomes: dict[tuple, tuple[bool, object, str, float]] = {}
        try:
            results = self.service.execute_batch(unique)
        except ReproError as error:
            # Batch-level failure (e.g. a malformed statement): fall back
            # to per-group execution so one bad request cannot poison the
            # whole drained batch.
            for key in keys:
                request = groups[key][0]
                one_start = time.perf_counter()
                try:
                    result = self.service.execute(
                        request.text, request.readings
                    )
                except ReproError as group_error:
                    outcomes[key] = (
                        False,
                        None,
                        str(group_error),
                        time.perf_counter() - one_start,
                    )
                else:
                    outcomes[key] = (
                        True,
                        result,
                        "",
                        time.perf_counter() - one_start,
                    )
            del error
            return outcomes
        elapsed = time.perf_counter() - start
        for key, result in zip(keys, results):
            outcomes[key] = (True, result, "", elapsed)
        return outcomes

    def _execute_faulted(
        self, request: ExecuteRequest, digest: str, key: tuple
    ) -> tuple[bool, object, str, float]:
        """Chaos path: deterministic per-(shape, readings) injection."""
        from repro.faults.model import FaultSchedule
        from repro.faults.policy import DegradationMode, FaultPolicy, RetryPolicy

        start = time.perf_counter()
        try:
            schedule = FaultSchedule.from_dict(
                dict(request.fault_schedule or {}), self._config.schema
            )
            policy = FaultPolicy(
                retry=RetryPolicy(max_retries=request.max_retries),
                degradation=DegradationMode[request.degradation.upper()],
            )
            rng = np.random.default_rng(
                [
                    request.fault_seed & _SEED_MASK,
                    stable_hash(digest) & _SEED_MASK,
                    stable_hash(key[1]) & _SEED_MASK,
                ]
            )
            outcome = self.service.execute_resilient(
                request.text, request.readings, schedule, rng, policy=policy
            )
        except (ReproError, KeyError) as error:
            return False, None, str(error), time.perf_counter() - start
        return True, outcome, "", time.perf_counter() - start

    def _expected_cost(self, text: str) -> float:
        """The served plan's Eq. 3 expectation (cache hit after execute)."""
        try:
            return self.service.plan_for(text).expected_where_cost
        except ReproError:
            return 0.0

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------

    def handle_control(self, request: ControlRequest) -> ControlReply:
        if request.kind == "ping":
            payload = {}
        elif request.kind == "stats":
            payload = {
                "stats": self.service.stats(),
                "metrics": self.service.metrics.snapshot(),
            }
        elif request.kind == "sync_version":
            payload = {"bumps": self.sync_version(request.version)}
        elif request.kind == "shutdown":
            payload = {}
        else:  # pragma: no cover - constructor validates kinds
            raise ClusterError(f"unhandled control kind {request.kind!r}")
        return ControlReply(
            request_id=request.request_id,
            shard=self.shard_id,
            kind=request.kind,
            statistics_version=self.service.engine.statistics_version,
            payload=payload,
        )

    def sync_version(self, version: int) -> int:
        """Advance this shard's statistics generation to ``>= version``.

        Each bump drops the shard's stale cached plans (the engine
        notifies the service, which invalidates the cache) — this is the
        receiving side of the cross-shard invalidation broadcast.
        Returns the number of bumps applied.
        """
        bumps = 0
        engine = self.service.engine
        while engine.statistics_version < version:
            engine.bump_statistics_version()
            bumps += 1
        return bumps
