"""Shard-local request handling: one service, one cache, one owner.

:class:`ShardServer` wraps a private
:class:`~repro.service.AcquisitionalService` (engine + plan cache +
metrics registry + optional profiling) and speaks the message protocol
of :mod:`repro.cluster.messages`.  The same class backs both the
multiprocessing worker loop (:mod:`repro.cluster.worker`) and the
in-process backend the deterministic tests drive, so every behaviour the
cluster promises — coalescing, chaos, version sync — is testable without
spawning processes.

Coalescing happens *again* at the shard even though the front door
already merges identical in-flight requests: a batch drained from the
queue may contain same-shape requests the front door admitted before the
first reply landed.  Identical ``(fingerprint, readings)`` pairs execute
once and fan out; distinct readings under one fingerprint go through the
service's vectorized batch path.

Chaos determinism: a faulted group's RNG is seeded from
``(fault_seed, fingerprint, readings)`` only — never from batch
composition — so a request's outcome is byte-identical whether it was
served alone, coalesced, or re-routed after an outage.

Tracing (``ShardConfig.tracing``): the shard owns a name-prefixed
:class:`~repro.obs.trace.Tracer` (``shard0``, ``shard1``, …) shared with
its service, wraps every group's execution in a ``shard-execute`` span
parented under the front door's request span, and piggybacks the
collected span records on the group leader's reply.  Plain groups keep
the stacked vectorized pass even when traced — one span per group is
opened around the shared batch and annotated with that group's own
Eq. 3 result fields, so tracing does not forfeit the batch throughput
(the overhead benchmark holds it to <10%); the batch's flat service
events (cache hits, plan builds) ride along once, on the first group's
leader reply.  Faulted groups execute one at a time with the service's
events nested under their span.  Every successful group's Eq. 3 total
cost is also added to the ``acquisition_cost_total`` gauge — the
recorded side of the trace-vs-ledger conservation check in
:mod:`repro.obs.waterfall`.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable

import numpy as np

from repro.cluster.hashring import stable_hash
from repro.cluster.messages import (
    ControlReply,
    ControlRequest,
    ExecuteReply,
    ExecuteRequest,
    ShardConfig,
)
from repro.engine.engine import (
    AcquisitionalEngine,
    PlannerFactory,
    QueryResult,
    ResilientQueryResult,
)
from repro.exceptions import ClusterError, ReproError
from repro.obs.trace import Tracer
from repro.planning.base import Planner
from repro.planning.corrseq import CorrSeqPlanner
from repro.planning.greedy_conditional import GreedyConditionalPlanner
from repro.planning.greedy_sequential import GreedySequentialPlanner
from repro.planning.naive import NaivePlanner
from repro.planning.optimal_sequential import OptimalSequentialPlanner
from repro.probability.empirical import EmpiricalDistribution
from repro.service.service import AcquisitionalService

__all__ = ["ShardServer", "readings_key"]

_SEED_MASK = (1 << 32) - 1


def _result_fields(payload: object) -> dict[str, Any]:
    """Span attribution for one execution outcome (Eq. 3 quantities).

    ``retry_cost`` is reported as an annotation only — it is already a
    slice of ``where_cost`` (see :class:`~repro.engine.engine.
    ResilientQueryResult`), so the waterfall's attributed side sums
    ``where_cost + projection_cost`` exactly like the shard's ledger
    gauge records ``total_cost``.
    """
    if isinstance(payload, ResilientQueryResult):
        result = payload.result
        return {
            "rows": len(result.rows),
            "tuples": result.tuples_scanned,
            "where_cost": result.where_cost,
            "projection_cost": result.projection_cost,
            "retry_cost": payload.retry_cost,
            "failed": payload.acquisitions_failed,
            "retries": payload.retries_total,
            "degraded": payload.tuples_degraded,
            "abstained": payload.tuples_abstained,
        }
    if isinstance(payload, QueryResult):
        return {
            "rows": len(payload.rows),
            "tuples": payload.tuples_scanned,
            "where_cost": payload.where_cost,
            "projection_cost": payload.projection_cost,
        }
    return {}


def readings_key(readings: np.ndarray) -> str:
    """A content hash of a readings matrix (shape + dtype + bytes).

    Two requests coalesce only when their fingerprints *and* readings
    agree — same query over different windows must execute separately.
    """
    matrix = np.ascontiguousarray(readings)
    header = f"{matrix.shape}:{matrix.dtype.str}:".encode()
    return hashlib.sha256(header + matrix.tobytes()).hexdigest()[:16]


def _planner_factory(config: ShardConfig) -> PlannerFactory:
    """Build the engine's planner factory from a picklable planner name."""
    name = config.planner
    max_splits = config.max_splits

    def factory(distribution: EmpiricalDistribution) -> Planner:
        if name == "naive":
            return NaivePlanner(distribution)
        if name == "greedy-seq":
            return GreedySequentialPlanner(distribution)
        if name == "opt-seq":
            return OptimalSequentialPlanner(distribution)
        if name == "corr-seq":
            return CorrSeqPlanner(distribution)
        return GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=max_splits
        )

    return factory


class ShardServer:
    """One shard's synchronous request handler (single-owner access).

    The service, plan cache, and metrics registry are owned exclusively
    by this server; in the process backend that ownership is physical
    (separate address spaces), in the in-process backend it is enforced
    by the front door serializing calls per shard.
    """

    def __init__(
        self,
        shard_id: int,
        config: ShardConfig,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self._config = config
        self.tracer: Tracer | None = None
        if config.tracing:
            # The shard-id prefix keeps span ids globally unique in the
            # merged trace file; ``clock`` (in-process backend only)
            # makes traces byte-reproducible under test.  Without an
            # injected clock the Tracer's own allowlisted default
            # applies — this module must not name a wall clock (DET002).
            # ``capacity=0``: a shard tracer exists to mint ids and feed
            # span export (``Span.end`` returns / ``collect()`` buckets
            # capture the events) — its in-memory buffer is unreadable
            # from outside a worker process, and retaining thousands of
            # event objects only feeds GC sweeps on the serving path.
            name = f"shard{self.shard_id}"
            if clock is not None:
                self.tracer = Tracer(name=name, clock=clock, capacity=0)
            else:
                self.tracer = Tracer(name=name, capacity=0)
        engine = AcquisitionalEngine(
            config.schema,
            config.history,
            planner_factory=_planner_factory(config),
            smoothing=config.smoothing,
        )
        self.service = AcquisitionalService(
            engine,
            cache_capacity=config.cache_capacity,
            cache_policy=config.cache_policy,
            verify_admission=config.verify_admission,
            profiling=config.profiling,
            tracer=self.tracer,
            exec_backend=config.exec_backend,
        )

    # ------------------------------------------------------------------
    # Execute path
    # ------------------------------------------------------------------

    def handle_batch(
        self, requests: list[ExecuteRequest]
    ) -> list[ExecuteReply]:
        """Serve a drained batch with shard-level coalescing.

        Requests are grouped by ``(fingerprint, readings, fault key)``;
        each group executes exactly once and its reply payload is shared
        by every member (results are immutable).  Plain groups sharing a
        fingerprint additionally execute through the service's stacked
        vectorized pass.
        """
        groups: dict[tuple, list[ExecuteRequest]] = {}
        order: list[tuple] = []
        digests: dict[tuple, str] = {}
        for request in requests:
            digest = request.fingerprint or str(
                self.service.fingerprint(request.text)
            )
            fault_key = None
            if request.fault_schedule is not None:
                fault_key = (
                    repr(sorted(request.fault_schedule.items())),
                    request.fault_seed,
                    request.degradation,
                    request.max_retries,
                )
            key = (digest, readings_key(request.readings), fault_key)
            if key not in groups:
                groups[key] = []
                order.append(key)
                digests[key] = digest
            groups[key].append(request)

        payloads: dict[tuple, tuple[bool, object, str, float]] = {}
        exported: dict[tuple, tuple[str, ...]] = {}
        plain = [key for key in order if key[2] is None]
        faulted = [key for key in order if key[2] is not None]
        if self.tracer is None:
            if plain:
                payloads.update(self._execute_plain(plain, groups))
            for key in faulted:
                payloads[key] = self._execute_faulted(
                    groups[key][0], digests[key], key
                )
        else:
            if plain:
                outcomes, spans = self._execute_plain_traced(
                    plain, groups, digests
                )
                payloads.update(outcomes)
                exported.update(spans)
            for key in faulted:
                payloads[key], exported[key] = self._execute_traced(
                    key, groups[key], digests[key]
                )

        replies: list[ExecuteReply] = []
        version = self.service.engine.statistics_version
        ledger = self.service.metrics.gauge("acquisition_cost_total")
        for key in order:
            ok, payload, error, elapsed = payloads[key]
            members = groups[key]
            expected = 0.0
            if ok:
                expected = self._expected_cost(members[0].text)
                # Every executed group charges its Eq. 3 total exactly
                # once — the recorded side of the trace-vs-ledger
                # conservation check (repro.obs.waterfall).
                result = (
                    payload.result
                    if isinstance(payload, ResilientQueryResult)
                    else payload
                )
                if isinstance(result, QueryResult):
                    ledger.increment(result.total_cost)
            leader = members[0]
            trace_id = (
                leader.trace.trace_id if leader.trace is not None else ""
            )
            spans = exported.get(key, ())
            for request in members:
                replies.append(
                    ExecuteReply(
                        request_id=request.request_id,
                        shard=self.shard_id,
                        ok=ok,
                        payload=payload,
                        error=error,
                        statistics_version=version,
                        group_size=len(members),
                        expected_where_cost=expected,
                        elapsed_seconds=elapsed,
                        trace_id=trace_id,
                        spans=spans if request is leader else (),
                    )
                )
        order_index = {
            request.request_id: position
            for position, request in enumerate(requests)
        }
        replies.sort(key=lambda reply: order_index[reply.request_id])
        return replies

    def _execute_plain(
        self,
        keys: list[tuple],
        groups: dict[tuple, list[ExecuteRequest]],
    ) -> dict[tuple, tuple[bool, object, str, float]]:
        """One stacked vectorized pass over every unique plain group."""
        start = time.perf_counter()
        unique = [
            (groups[key][0].text, groups[key][0].readings) for key in keys
        ]
        outcomes: dict[tuple, tuple[bool, object, str, float]] = {}
        try:
            results = self.service.execute_batch(unique)
        except ReproError as error:
            # Batch-level failure (e.g. a malformed statement): fall back
            # to per-group execution so one bad request cannot poison the
            # whole drained batch.
            for key in keys:
                outcomes[key] = self._execute_one(groups[key][0])
            del error
            return outcomes
        elapsed = time.perf_counter() - start
        for key, result in zip(keys, results):
            outcomes[key] = (True, result, "", elapsed)
        return outcomes

    def _group_span_fields(
        self, request: ExecuteRequest, group_size: int
    ) -> dict[str, Any]:
        """The shard/group/queue-delay annotations every group span carries."""
        tracer = self.tracer
        assert tracer is not None
        fields: dict[str, Any] = {
            "shard": self.shard_id,
            "group_size": group_size,
        }
        context = request.trace
        if context is not None:
            sent = context.baggage_value("sent_ts")
            if sent:
                try:
                    fields["queue_ms"] = round(
                        max(0.0, (tracer.now() - float(sent)) * 1e3), 3
                    )
                except ValueError:
                    pass
        return fields

    def _execute_plain_traced(
        self,
        keys: list[tuple],
        groups: dict[tuple, list[ExecuteRequest]],
        digests: dict[tuple, str],
    ) -> tuple[
        dict[tuple, tuple[bool, object, str, float]],
        dict[tuple, tuple[str, ...]],
    ]:
        """The stacked vectorized pass with one exported span per group.

        Tracing must not forfeit batching: every plain group still
        executes through the service's shared cross-fingerprint pass,
        and each group gets its own ``shard-execute`` span — opened
        before the pass, closed after it (``ms`` therefore measures the
        shared batch), annotated with that group's *own* result fields
        so the Eq. 3 reconciliation stays exact per trace.  The batch's
        flat service events (cache hits/misses, plan builds) cannot be
        attributed to a single trace and would never leave the
        shard-local buffer, so :meth:`AcquisitionalService.
        quiet_tracing` suppresses them outright — the merged file
        carries the span tree, the metrics counters carry the cache
        hit/miss tallies.
        """
        tracer = self.tracer
        assert tracer is not None
        spans: dict[tuple, Any] = {}
        for key in keys:
            leader = groups[key][0]
            context = leader.trace
            spans[key] = tracer.start_span(
                "shard-execute",
                trace=context.trace_id if context is not None else "",
                parent=context.parent_span if context is not None else "",
                fingerprint=digests[key],
                batched=len(keys),
                **self._group_span_fields(leader, len(groups[key])),
            )
        with self.service.quiet_tracing():
            outcomes = self._execute_plain(keys, groups)
        exported: dict[tuple, tuple[str, ...]] = {}
        for key in keys:
            ok, payload, error, _elapsed = outcomes[key]
            span = spans[key]
            span.annotate(ok=ok, **_result_fields(payload))
            if error:
                span.annotate(error=error)
            closing = span.end()
            exported[key] = (closing.to_json(),) if closing is not None else ()
        return outcomes, exported

    def _execute_one(
        self, request: ExecuteRequest
    ) -> tuple[bool, object, str, float]:
        """Serve a single plain group through the service."""
        start = time.perf_counter()
        try:
            result = self.service.execute(request.text, request.readings)
        except ReproError as error:
            return False, None, str(error), time.perf_counter() - start
        return True, result, "", time.perf_counter() - start

    def _execute_traced(
        self,
        key: tuple,
        members: list[ExecuteRequest],
        digest: str,
    ) -> tuple[tuple[bool, object, str, float], tuple[str, ...]]:
        """Serve one group under a ``shard-execute`` span and export it.

        The span is parented under the leader's wire
        :class:`~repro.obs.trace.TraceContext`; every service-level event
        the execution emits (plan / verify / cache-* / execute) nests
        under it via the tracer's context binding.  The collected events
        come back as plain dicts ready to piggyback on the reply.
        """
        tracer = self.tracer
        assert tracer is not None
        leader = members[0]
        context = leader.trace
        trace_id = context.trace_id if context is not None else ""
        parent = context.parent_span if context is not None else ""
        fields = self._group_span_fields(leader, len(members))
        with tracer.collect() as events:
            with tracer.span(
                "shard-execute",
                trace=trace_id,
                parent=parent,
                fingerprint=digest,
                **fields,
            ) as span:
                if key[2] is None:
                    outcome = self._execute_one(leader)
                else:
                    outcome = self._execute_faulted(leader, digest, key)
                ok, payload, error, _elapsed = outcome
                span.annotate(ok=ok, **_result_fields(payload))
                if error:
                    span.annotate(error=error)
        return outcome, tuple(event.to_json() for event in events)

    def _execute_faulted(
        self, request: ExecuteRequest, digest: str, key: tuple
    ) -> tuple[bool, object, str, float]:
        """Chaos path: deterministic per-(shape, readings) injection."""
        from repro.faults.model import FaultSchedule
        from repro.faults.policy import DegradationMode, FaultPolicy, RetryPolicy

        start = time.perf_counter()
        try:
            schedule = FaultSchedule.from_dict(
                dict(request.fault_schedule or {}), self._config.schema
            )
            policy = FaultPolicy(
                retry=RetryPolicy(max_retries=request.max_retries),
                degradation=DegradationMode[request.degradation.upper()],
            )
            rng = np.random.default_rng(
                [
                    request.fault_seed & _SEED_MASK,
                    stable_hash(digest) & _SEED_MASK,
                    stable_hash(key[1]) & _SEED_MASK,
                ]
            )
            outcome = self.service.execute_resilient(
                request.text, request.readings, schedule, rng, policy=policy
            )
        except (ReproError, KeyError) as error:
            return False, None, str(error), time.perf_counter() - start
        return True, outcome, "", time.perf_counter() - start

    def _expected_cost(self, text: str) -> float:
        """The served plan's Eq. 3 expectation (cache hit after execute)."""
        try:
            return self.service.plan_for(text).expected_where_cost
        except ReproError:
            return 0.0

    # ------------------------------------------------------------------
    # Control path
    # ------------------------------------------------------------------

    def handle_control(self, request: ControlRequest) -> ControlReply:
        if request.kind == "ping":
            payload = {}
        elif request.kind == "stats":
            payload = {
                "stats": self.service.stats(),
                "metrics": self.service.metrics.snapshot(),
            }
        elif request.kind == "sync_version":
            payload = {"bumps": self.sync_version(request.version)}
        elif request.kind == "shutdown":
            payload = {}
        else:  # pragma: no cover - constructor validates kinds
            raise ClusterError(f"unhandled control kind {request.kind!r}")
        return ControlReply(
            request_id=request.request_id,
            shard=self.shard_id,
            kind=request.kind,
            statistics_version=self.service.engine.statistics_version,
            payload=payload,
        )

    def sync_version(self, version: int) -> int:
        """Advance this shard's statistics generation to ``>= version``.

        Each bump drops the shard's stale cached plans (the engine
        notifies the service, which invalidates the cache) — this is the
        receiving side of the cross-shard invalidation broadcast.
        Returns the number of bumps applied.
        """
        bumps = 0
        engine = self.service.engine
        while engine.statistics_version < version:
            engine.bump_statistics_version()
            bumps += 1
        return bumps
