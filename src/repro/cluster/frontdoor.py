"""The asyncio front door of the sharded serving tier.

One :class:`ShardedServiceCluster` owns the whole topology:

- a :class:`~repro.cluster.hashring.ConsistentHashRing` routing each
  statement's canonical fingerprint digest to a shard, so every spelling
  of a query shape lands on the same shard-local plan cache;
- N shard workers — real ``multiprocessing`` processes (``"process"``
  backend) or in-loop :class:`~repro.cluster.shard.ShardServer` objects
  (``"inproc"`` backend, used by deterministic tests and available for
  single-process deployments);
- a :class:`~repro.cluster.coalesce.CoalescingMap` merging identical
  in-flight requests *before* they cross the shard boundary: one
  execution is acquired and planned once and fans out to every waiter;
- an :class:`~repro.cluster.admission.AdmissionController` shedding
  load under overload with the PR 5 degradation vocabulary;
- a statistics-version broadcast bus: any reply showing a shard moved to
  a newer statistics generation (drift replan, outage invalidation,
  refit) makes the front door push ``sync_version`` to every other
  shard, so no stale plan survives anywhere in the cluster;
- shard-outage handling that re-routes (SKIP) or sheds (ABSTAIN) the
  dead shard's in-flight and future traffic, with the ring re-shrunk so
  surviving shards keep their warm caches;
- with ``ClusterConfig.tracing``, a front-door
  :class:`~repro.obs.trace.Tracer` rooting one ``request`` span per
  request, a :class:`~repro.obs.trace.TraceContext` on every dispatched
  wire record, ingestion of the span records shards piggyback on
  replies (one process ends up holding every request's whole tree), and
  an :class:`~repro.obs.slo.SLOTracker` feeding latency/error burn-rate
  counters into the front-door metrics registry.

Thread discipline: all mutable front-door state (coalescing map, warm
sets, counters) is touched only on the event loop.  The process
backend's reply-reader thread marshals every message onto the loop with
``call_soon_threadsafe`` before it is interpreted.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

import numpy as np

from repro.cluster.admission import AdmissionController
from repro.cluster.coalesce import CoalescingMap, InFlight
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.messages import (
    ControlReply,
    ControlRequest,
    ExecuteReply,
    ExecuteRequest,
    ShardConfig,
)
from repro.cluster.shard import ShardServer, readings_key
from repro.engine.engine import QueryResult, ResilientQueryResult
from repro.exceptions import (
    ClusterError,
    ShardUnavailableError,
)
from repro.faults.policy import DegradationMode
from repro.obs.exposition import render_prometheus
from repro.obs.slo import SLOPolicy, SLOTracker
from repro.obs.trace import Span, TraceContext, Tracer
from repro.service.fingerprint import fingerprint_statement
from repro.service.metrics import MetricsRegistry, merge_snapshots

__all__ = ["ClusterConfig", "ClusterResponse", "ShardedServiceCluster"]

logger = logging.getLogger("repro.cluster")

_SHED_MODES = {mode.value: mode for mode in DegradationMode}


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and policy knobs for one sharded cluster.

    ``tracing`` turns on distributed tracing end to end: the front door
    roots one span tree per request and every shard config is promoted
    to ``tracing=True`` so shards export their spans on replies.
    ``trace_clock`` (in-process backend only — it is not picklable)
    injects one shared deterministic clock into the front-door tracer
    and every shard tracer, which is what makes whole-cluster traces
    byte-reproducible under test; process workers keep the tracer's
    default wall clock.  The ``slo_*`` knobs parameterize the
    :class:`~repro.obs.slo.SLOPolicy` the front door tracks against.
    """

    shard_config: ShardConfig
    shards: int = 4
    backend: str = "process"
    vnodes: int = 64
    coalescing: bool = True
    soft_limit: int = 256
    hard_limit: int = 1024
    max_shard_depth: int | None = None
    shed_mode: str = "abstain"
    outage_mode: str = "skip"
    request_timeout: float = 60.0
    control_timeout: float = 30.0
    tracing: bool = False
    trace_clock: Callable[[], float] | None = None
    slo_latency_ms: float = 250.0
    slo_latency_objective: float = 0.99
    slo_error_objective: float = 0.999

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ClusterError(f"shards must be >= 1, got {self.shards}")
        if self.backend not in ("process", "inproc"):
            raise ClusterError(
                f"backend must be 'process' or 'inproc', got {self.backend!r}"
            )
        if self.shed_mode not in _SHED_MODES:
            raise ClusterError(
                f"shed_mode must be one of {sorted(_SHED_MODES)}, "
                f"got {self.shed_mode!r}"
            )
        if self.outage_mode not in ("skip", "abstain"):
            raise ClusterError(
                f"outage_mode must be 'skip' or 'abstain', "
                f"got {self.outage_mode!r}"
            )
        if self.request_timeout <= 0 or self.control_timeout <= 0:
            raise ClusterError("timeouts must be positive")
        # SLOPolicy validates its own knobs; constructing it here turns a
        # bad config into an error at cluster-build time, not first use.
        self.slo_policy()

    def slo_policy(self) -> SLOPolicy:
        return SLOPolicy(
            latency_target_ms=self.slo_latency_ms,
            latency_objective=self.slo_latency_objective,
            error_objective=self.slo_error_objective,
        )


@dataclass(frozen=True)
class ClusterResponse:
    """What the front door hands back for one request.

    ``payload`` is the :class:`~repro.engine.QueryResult` (plain path)
    or :class:`~repro.engine.ResilientQueryResult` (chaos path) the
    owning shard produced, shared byte-for-byte by every coalesced
    waiter.  Shed requests carry ``shed=True`` and no payload — the
    admission controller never fabricates an answer.
    """

    ok: bool
    shard: int | None = None
    payload: Any = None
    coalesced: bool = False
    shed: bool = False
    shed_reason: str = ""
    error: str = ""
    #: The request's distributed trace id (tracing enabled only) — the
    #: key to look its span tree up in the merged trace file.
    trace_id: str = ""

    @property
    def result(self) -> QueryResult | None:
        """The plain rows/cost result regardless of execution path."""
        if isinstance(self.payload, ResilientQueryResult):
            return self.payload.result
        return self.payload


class _InProcessBackend:
    """Shard servers living on the event loop, batched per loop tick.

    ``send`` only queues; a ``call_soon`` pump drains everything queued
    for a shard in one batch, mirroring the worker loop's queue drain —
    so requests submitted in the same tick coalesce and batch exactly
    like they would across the process boundary, deterministically.
    """

    def __init__(
        self,
        configs: dict[int, ShardConfig],
        clock: Callable[[], float] | None = None,
    ) -> None:
        self._configs = configs
        self._clock = clock
        self._servers: dict[int, ShardServer] = {}
        self._pending: dict[int, list[object]] = {}
        self._scheduled: set[int] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._on_message: Callable[[object], None] | None = None

    def start(
        self,
        loop: asyncio.AbstractEventLoop,
        on_message: Callable[[object], None],
    ) -> None:
        self._loop = loop
        self._on_message = on_message
        for shard_id, config in self._configs.items():
            self._servers[shard_id] = ShardServer(
                shard_id, config, clock=self._clock
            )
            self._pending[shard_id] = []

    def send(self, shard: int, message: object) -> None:
        server = self._servers.get(shard)
        if server is None:
            raise ShardUnavailableError(f"shard {shard} is down")
        self._pending[shard].append(message)
        if shard not in self._scheduled:
            self._scheduled.add(shard)
            assert self._loop is not None
            self._loop.call_soon(self._pump, shard)

    def _pump(self, shard: int) -> None:
        self._scheduled.discard(shard)
        server = self._servers.get(shard)
        batch = self._pending.get(shard, [])
        self._pending[shard] = []
        if server is None or not batch:
            return
        on_message = self._on_message
        assert on_message is not None  # set by start() before any send()
        window = self._configs[shard].batch_window
        executes: list[ExecuteRequest] = []

        def flush() -> None:
            while executes:
                chunk = executes[:window]
                del executes[:window]
                for reply in server.handle_batch(chunk):
                    on_message(reply)

        for message in batch:
            if isinstance(message, ExecuteRequest):
                executes.append(message)
            elif isinstance(message, ControlRequest):
                flush()
                on_message(server.handle_control(message))
        flush()

    def alive(self, shard: int) -> bool:
        return shard in self._servers

    def kill(self, shard: int) -> None:
        self._servers.pop(shard, None)
        self._pending.pop(shard, None)

    def stop(self) -> None:
        self._servers.clear()
        self._pending.clear()


class _ProcessBackend:
    """One worker process per shard, each with its own reply channel.

    Reply queues are deliberately NOT shared: terminating a worker while
    its feeder thread holds a shared queue's pipe lock would corrupt the
    channel for every surviving shard (a classic ``multiprocessing.Queue``
    hazard).  With per-shard queues an induced outage can only damage the
    dead shard's own channel, which nobody reads afterwards.
    """

    def __init__(self, configs: dict[int, ShardConfig]) -> None:
        import multiprocessing

        self._configs = configs
        self._mp = multiprocessing.get_context()
        self._processes: dict[int, Any] = {}
        self._request_queues: dict[int, Any] = {}
        self._reply_queues: dict[int, Any] = {}
        self._readers: dict[int, threading.Thread] = {}
        self._dead: set[int] = set()
        self._stopping = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._on_message: Callable[[object], None] | None = None

    def start(
        self,
        loop: asyncio.AbstractEventLoop,
        on_message: Callable[[object], None],
    ) -> None:
        from repro.cluster.worker import worker_main

        self._loop = loop
        self._on_message = on_message
        for shard_id, config in self._configs.items():
            request_queue = self._mp.Queue()
            reply_queue = self._mp.Queue()
            process = self._mp.Process(
                target=worker_main,
                args=(shard_id, config, request_queue, reply_queue),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            process.start()
            self._request_queues[shard_id] = request_queue
            self._reply_queues[shard_id] = reply_queue
            self._processes[shard_id] = process
            reader = threading.Thread(
                target=self._read_replies,
                args=(shard_id, reply_queue),
                name=f"repro-cluster-replies-{shard_id}",
                daemon=True,
            )
            reader.start()
            self._readers[shard_id] = reader

    def _read_replies(self, shard: int, reply_queue: Any) -> None:
        import queue as queue_module

        on_message = self._on_message
        assert on_message is not None  # set by start() before threads spawn
        while not self._stopping.is_set() and shard not in self._dead:
            try:
                message = reply_queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            except (EOFError, OSError):  # channel torn down mid-shutdown
                break
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(on_message, message)

    def send(self, shard: int, message: object) -> None:
        queue = self._request_queues.get(shard)
        process = self._processes.get(shard)
        if (
            queue is None
            or process is None
            or shard in self._dead
            or not process.is_alive()
        ):
            raise ShardUnavailableError(f"shard {shard} is down")
        queue.put(message)

    def alive(self, shard: int) -> bool:
        process = self._processes.get(shard)
        return (
            process is not None
            and shard not in self._dead
            and process.is_alive()
        )

    def kill(self, shard: int) -> None:
        self._dead.add(shard)
        process = self._processes.pop(shard, None)
        self._request_queues.pop(shard, None)
        self._reply_queues.pop(shard, None)
        self._readers.pop(shard, None)  # exits on its next poll timeout
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5.0)

    def stop(self) -> None:
        for shard_id, queue in list(self._request_queues.items()):
            process = self._processes.get(shard_id)
            if process is not None and process.is_alive():
                try:
                    queue.put(ControlRequest(request_id=-1, kind="shutdown"))
                except (ValueError, OSError):  # pragma: no cover
                    pass
        for process in self._processes.values():
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        self._stopping.set()
        for reader in self._readers.values():
            reader.join(timeout=2.0)
        self._processes.clear()
        self._request_queues.clear()
        self._reply_queues.clear()
        self._readers.clear()


class ShardedServiceCluster:
    """Consistent-hash sharded, coalescing, load-shedding serving tier."""

    def __init__(
        self, config: ClusterConfig, tracer: Tracer | None = None
    ) -> None:
        self._config = config
        shard_template = config.shard_config
        if config.tracing and not shard_template.tracing:
            shard_template = replace(shard_template, tracing=True)
        configs = {
            shard_id: shard_template for shard_id in range(config.shards)
        }
        if config.backend == "process":
            self._backend: Any = _ProcessBackend(configs)
        else:
            self._backend = _InProcessBackend(
                configs, clock=config.trace_clock
            )
        self._tracer: Tracer | None = tracer
        if self._tracer is None and config.tracing:
            # "fd" prefixes the front door's span/trace ids so they can
            # never collide with shard-minted ids in the merged file.
            if config.trace_clock is not None:
                self._tracer = Tracer(name="fd", clock=config.trace_clock)
            else:
                self._tracer = Tracer(name="fd")
        self._ring = ConsistentHashRing(
            range(config.shards), vnodes=config.vnodes
        )
        self._live: set[int] = set(range(config.shards))
        self._coalescer = CoalescingMap()
        self._admission = AdmissionController(
            soft_limit=config.soft_limit,
            hard_limit=config.hard_limit,
            max_shard_depth=config.max_shard_depth,
            shed_mode=_SHED_MODES[config.shed_mode],
        )
        self._metrics = MetricsRegistry()
        self._slo = SLOTracker(self._metrics, config.slo_policy())
        self._ids = itertools.count(1)
        self._cluster_version = 1
        self._warm: set[tuple[int, str]] = set()
        self._known_cost: dict[str, float] = {}
        self._control_pending: dict[int, asyncio.Future] = {}
        self._broadcast_tasks: set[asyncio.Task] = set()
        self._started = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._schema = config.shard_config.schema
        # Exact-text -> canonical digest memo.  Canonicalization depends
        # only on the schema, never on statistics, so entries stay valid
        # across version bumps.
        self._digest_memo: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Boot every shard and wait until all of them answer a ping."""
        if self._started:
            raise ClusterError("cluster already started")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._backend.start(loop, self._on_message)
        self._started = True
        await asyncio.gather(
            *(
                self._control(shard, "ping")
                for shard in sorted(self._live)
            )
        )

    async def stop(self) -> None:
        """Shut the workers down and fail any still-pending futures."""
        if not self._started:
            return
        self._started = False
        for task in list(self._broadcast_tasks):
            task.cancel()
        # The process backend joins workers (up to seconds); run it off
        # the loop so concurrent traffic sees clean shutdown errors
        # instead of a frozen event loop (the ASY001 discipline, one
        # call deeper than the rule can see).
        await asyncio.get_running_loop().run_in_executor(
            None, self._backend.stop
        )
        for entry in self._coalescer.entries():
            if entry.timeout_handle is not None:
                entry.timeout_handle.cancel()
            for waiter in entry.waiters:
                if not waiter.done():
                    waiter.set_exception(
                        ShardUnavailableError("cluster stopped")
                    )
            self._coalescer.resolve(entry.request_id)
        for future in self._control_pending.values():
            if not future.done():
                future.set_exception(ShardUnavailableError("cluster stopped"))
        self._control_pending.clear()

    async def __aenter__(self) -> "ShardedServiceCluster":
        await self.start()
        return self

    async def __aexit__(self, *_exc: object) -> None:
        await self.stop()

    @property
    def live_shards(self) -> frozenset[int]:
        return frozenset(self._live)

    @property
    def tracer(self) -> Tracer | None:
        """The front-door tracer (holds the merged trace when enabled)."""
        return self._tracer

    @property
    def statistics_version(self) -> int:
        return self._cluster_version

    # ------------------------------------------------------------------
    # Serving path
    # ------------------------------------------------------------------

    async def execute(
        self,
        text: str,
        readings: np.ndarray,
        fault_schedule: Mapping[str, Any] | None = None,
        fault_seed: int = 0,
        degradation: str = "abstain",
        max_retries: int = 2,
    ) -> ClusterResponse:
        """Serve one statement through the sharded tier.

        Identical concurrent requests (same canonical fingerprint, same
        readings, same fault context) share a single shard execution.
        Overload returns a ``shed=True`` response rather than raising —
        shedding is an expected service answer, not an exception.
        """
        if not self._started:
            raise ClusterError("cluster is not started")
        if not self._live:
            raise ClusterError("every shard is down")
        self._metrics.counter("requests").increment()
        start = time.perf_counter()
        tracer = self._tracer

        digest = self._fingerprint(text)
        # Every request roots its own span tree — coalesced followers and
        # shed requests included — so the trace file answers "what
        # happened to request X" for every X, not just dispatch leaders.
        root: Span | None = None
        if tracer is not None:
            root = tracer.start_span("request", fingerprint=digest)
        fault_key = None
        if fault_schedule is not None:
            fault_key = (
                repr(sorted(fault_schedule.items())),
                fault_seed,
                degradation,
                max_retries,
            )
        key = (digest, readings_key(readings), fault_key)
        shard = self._route(digest)

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        joined: InFlight | None = None
        if self._config.coalescing:
            joined = self._coalescer.join(key, future)
        if joined is not None:
            self._metrics.counter("requests_coalesced").increment()
            if tracer is not None and root is not None:
                tracer.emit(
                    "coalesce-attach",
                    trace=root.trace_id,
                    parent=root.span_id,
                    fingerprint=digest,
                    leader_trace=joined.trace_id,
                    fanout=joined.fanout,
                )
        else:
            decision = self._admission.decide(
                inflight=self._coalescer.inflight_requests,
                shard_depth=len(self._coalescer.pending_on(shard)),
                warm=(shard, digest) in self._warm,
                joinable=False,
            )
            if not decision.admitted:
                return self._shed(
                    digest, readings, decision.reason,
                    root=root, latency_start=start,
                )
            request_id = next(self._ids)
            entry = self._coalescer.open(key, shard, request_id, text, future)
            context: TraceContext | None = None
            if tracer is not None and root is not None:
                entry.trace_id = root.trace_id
                entry.root_span = root.span_id
                # Routing and coalesce registration ride as fields on
                # the root span rather than as zero-duration child
                # events — the waterfall derives the route segment as
                # the root's residual, and two fewer events per leader
                # keeps tracing inside the overhead benchmark's budget.
                root.annotate(inflight=len(self._coalescer))
                # sent_ts baggage lets the shard attribute queue time.
                context = TraceContext(
                    trace_id=root.trace_id,
                    parent_span=root.span_id,
                    baggage=(("sent_ts", repr(tracer.now())),),
                )
            entry.request = ExecuteRequest(
                request_id=request_id,
                text=text,
                readings=readings,
                fingerprint=digest,
                fault_schedule=(
                    dict(fault_schedule) if fault_schedule is not None else None
                ),
                fault_seed=fault_seed,
                degradation=degradation,
                max_retries=max_retries,
                trace=context,
            )
            # One watchdog per execution, shared by every waiter — far
            # cheaper than an asyncio.wait_for task per request.
            entry.timeout_handle = loop.call_later(
                self._config.request_timeout, self._expire, request_id
            )
            self._dispatch(shard, entry.request)

        reply: ExecuteReply = await future
        latency = time.perf_counter() - start
        self._metrics.histogram("request").observe(latency)
        shed_reply = (not reply.ok) and reply.error.startswith("shed:")
        self._slo.record(latency * 1e3, ok=reply.ok, shed=shed_reply)
        trace_id = ""
        if tracer is not None and root is not None:
            trace_id = root.trace_id
            if (
                joined is None
                and reply.ok
                and reply.trace_id
                and reply.trace_id != root.trace_id
            ):
                # The shard served this dispatch inside another request's
                # group (shard-level coalescing the front door could not
                # see); record which trace holds the execution spans.
                tracer.emit(
                    "shard-coalesce",
                    trace=root.trace_id,
                    parent=root.span_id,
                    fingerprint=digest,
                    leader_trace=reply.trace_id,
                    shard=reply.shard,
                )
            end_fields: dict[str, Any] = {
                "ok": reply.ok,
                "coalesced": joined is not None,
            }
            if shed_reply:
                end_fields["shed"] = True
                end_fields["reason"] = reply.error.split(":", 1)[1]
            else:
                end_fields["shard"] = reply.shard
                if not reply.ok:
                    end_fields["error"] = reply.error
            root.end(**end_fields)
        if reply.ok:
            return ClusterResponse(
                ok=True,
                shard=reply.shard,
                payload=reply.payload,
                coalesced=joined is not None,
                trace_id=trace_id,
            )
        if shed_reply:
            reason = reply.error.split(":", 1)[1]
            return ClusterResponse(
                ok=False,
                shed=True,
                shed_reason=reason,
                error=reply.error,
                trace_id=trace_id,
            )
        return ClusterResponse(
            ok=False,
            shard=reply.shard,
            coalesced=joined is not None,
            error=reply.error,
            trace_id=trace_id,
        )

    async def execute_many(
        self, requests: list[tuple[str, np.ndarray]], **kwargs: Any
    ) -> list[ClusterResponse]:
        """Serve a wave of requests concurrently (results in order).

        The wave is deduplicated *before* any coroutine is spawned:
        exact duplicates — same statement text and same readings buffer —
        collapse onto one representative ``execute()`` call, and the
        single response fans out to every duplicate position marked
        ``coalesced=True``.  Semantically this is the same coalescing
        the in-flight map performs, done eagerly for a batch whose
        membership is already known, without paying per-request future
        and watchdog machinery for arrivals that can never dispatch.
        Spelling variants of one shape still coalesce downstream via
        the canonical-fingerprint key in :class:`CoalescingMap`.
        """
        groups: dict[tuple, list[int]] = {}
        order: list[tuple[str, np.ndarray]] = []
        # Memoize the readings hash by buffer identity for the duration
        # of this call: the `requests` list keeps every array alive, so
        # ids are stable, and waves sharing one acquisition window pay
        # for a single content hash instead of one per request.
        window_keys: dict[int, str] = {}
        for position, (text, readings) in enumerate(requests):
            window = window_keys.get(id(readings))
            if window is None:
                window = readings_key(readings)
                window_keys[id(readings)] = window
            key = (text, window)
            positions = groups.get(key)
            if positions is None:
                groups[key] = [position]
                order.append((text, readings))
            else:
                positions.append(position)
        responses = await asyncio.gather(
            *(
                self.execute(text, readings, **kwargs)
                for text, readings in order
            )
        )
        results: list[ClusterResponse] = [None] * len(requests)  # type: ignore[list-item]
        for positions, response in zip(groups.values(), responses):
            results[positions[0]] = response
            if len(positions) == 1:
                continue
            if response.shed:
                # Every duplicate of a shed representative is shed too;
                # account for each one so the ledger and counters match
                # a request-at-a-time execution.
                text, readings = requests[positions[0]]
                digest = self._fingerprint(text)
                for position in positions[1:]:
                    self._metrics.counter("requests").increment()
                    results[position] = self._shed(
                        digest, readings, response.shed_reason or "overload"
                    )
                continue
            duplicate = replace(response, coalesced=True)
            extras = len(positions) - 1
            self._metrics.counter("requests").increment(extras)
            self._metrics.counter("requests_coalesced").increment(extras)
            self._coalescer.coalesced_requests += extras
            tracer = self._tracer
            dup_digest = ""
            if tracer is not None:
                dup_digest = self._fingerprint(requests[positions[0]][0])
            for position in positions[1:]:
                dup_response = duplicate
                if tracer is not None:
                    # Wave-level duplicates never reached execute(), so
                    # give each one its own compact tree: a root plus a
                    # coalesce-attach pointing at the representative.
                    dup_root = tracer.start_span(
                        "request", fingerprint=dup_digest
                    )
                    tracer.emit(
                        "coalesce-attach",
                        trace=dup_root.trace_id,
                        parent=dup_root.span_id,
                        fingerprint=dup_digest,
                        leader_trace=response.trace_id,
                        wave_duplicate=True,
                    )
                    dup_root.end(ok=response.ok, coalesced=True)
                    dup_response = replace(
                        duplicate, trace_id=dup_root.trace_id
                    )
                self._slo.record(0.0, ok=response.ok, shed=False)
                results[position] = dup_response
        return results

    def _fingerprint(self, text: str) -> str:
        digest = self._digest_memo.get(text)
        if digest is None:
            if len(self._digest_memo) >= 4096:
                self._digest_memo.clear()
            digest = str(fingerprint_statement(text, self._schema))
            self._digest_memo[text] = digest
        return digest

    def _expire(self, request_id: int) -> None:
        """Watchdog: fail every waiter of an execution that never replied."""
        entry = self._coalescer.resolve(request_id)
        if entry is None:
            return
        self._metrics.counter("request_timeouts").increment()
        error = ShardUnavailableError(
            f"request on shard {entry.shard} timed out after "
            f"{self._config.request_timeout:g}s"
        )
        for waiter in entry.waiters:
            if not waiter.done():
                waiter.set_exception(error)

    def _route(self, digest: str) -> int:
        shard = self._ring.node_for(digest)
        if shard not in self._live:  # pragma: no cover - ring is pruned
            raise ShardUnavailableError(f"shard {shard} is down")
        return int(shard)

    def _dispatch(self, shard: int, request: ExecuteRequest) -> None:
        self._metrics.counter("requests_dispatched").increment()
        try:
            self._backend.send(shard, request)
        except ShardUnavailableError:
            # The worker died between liveness bookkeeping and the send;
            # treat it exactly like a detected outage.
            self._handle_outage(shard)

    def _shed(
        self,
        digest: str,
        readings: np.ndarray,
        reason: str,
        root: Span | None = None,
        latency_start: float | None = None,
    ) -> ClusterResponse:
        self._metrics.labeled_counter("requests_shed", "reason").labels(
            reason=reason
        ).increment()
        avoided = self._known_cost.get(digest, 0.0)
        charged = self._admission.charge_shed(
            avoided, int(np.asarray(readings).shape[0])
        )
        latency_ms = 0.0
        if latency_start is not None:
            latency_ms = (time.perf_counter() - latency_start) * 1e3
        self._slo.record(latency_ms, ok=False, shed=True)
        tracer = self._tracer
        trace_id = ""
        if tracer is not None:
            if root is None:
                root = tracer.start_span("request", fingerprint=digest)
            trace_id = root.trace_id
            # cost_avoided mirrors what charge_shed just recorded, so
            # the trace-vs-ledger reconciliation can check shed
            # conservation the same way it checks execution cost.
            tracer.emit(
                "shed",
                trace=root.trace_id,
                parent=root.span_id,
                fingerprint=digest,
                reason=reason,
                cost_avoided=charged,
            )
            root.end(ok=False, shed=True, reason=reason)
        return ClusterResponse(
            ok=False,
            shed=True,
            shed_reason=reason,
            error=f"shed:{reason}",
            trace_id=trace_id,
        )

    # ------------------------------------------------------------------
    # Reply handling (event loop only)
    # ------------------------------------------------------------------

    def _on_message(self, message: object) -> None:
        if isinstance(message, ExecuteReply):
            self._on_execute_reply(message)
        elif isinstance(message, ControlReply):
            self._on_control_reply(message)
        else:  # pragma: no cover - protocol violation
            logger.warning("dropping unknown message %r", message)

    def _on_execute_reply(self, reply: ExecuteReply) -> None:
        # Ingest piggybacked shard spans exactly once per reply — here,
        # before coalesced fan-out and before the stale-reply early exit,
        # so even a re-routed execution's spans reach the merged trace.
        if self._tracer is not None and reply.spans:
            self._tracer.ingest(reply.spans)
        self._observe_version(reply.shard, reply.statistics_version)
        entry = self._coalescer.resolve(reply.request_id)
        if entry is None:
            # Stale reply: the execution was re-routed after an outage or
            # the cluster is shutting down.
            self._metrics.counter("stale_replies").increment()
            return
        if entry.timeout_handle is not None:
            entry.timeout_handle.cancel()
        if reply.ok:
            digest = entry.key[0]
            self._warm.add((reply.shard, digest))
            if reply.expected_where_cost > 0.0:
                self._known_cost[digest] = reply.expected_where_cost
            if reply.group_size > 1:
                self._metrics.counter("shard_coalesced").increment(
                    reply.group_size - 1
                )
        for waiter in entry.waiters:
            if not waiter.done():
                waiter.set_result(reply)

    def _on_control_reply(self, reply: ControlReply) -> None:
        self._observe_version(reply.shard, reply.statistics_version)
        future = self._control_pending.pop(reply.request_id, None)
        if future is not None and not future.done():
            future.set_result(reply)

    def _observe_version(self, shard: int, version: int) -> None:
        """The broadcast bus: propagate the newest statistics generation."""
        if version <= self._cluster_version:
            return
        self._cluster_version = version
        self._metrics.counter("version_broadcasts").increment()
        # Warm bookkeeping describes plans of the old generation.
        self._warm.clear()
        for peer in sorted(self._live):
            if peer == shard:
                continue
            task = asyncio.ensure_future(
                self._control(peer, "sync_version", version=version)
            )
            self._broadcast_tasks.add(task)
            task.add_done_callback(self._broadcast_done)

    def _broadcast_done(self, task: asyncio.Task) -> None:
        self._broadcast_tasks.discard(task)
        if task.cancelled():
            return
        error = task.exception()
        if error is not None:
            logger.warning("version broadcast failed: %s", error)

    # ------------------------------------------------------------------
    # Outage handling
    # ------------------------------------------------------------------

    def induce_outage(self, shard: int) -> None:
        """Kill a shard (chaos hook) and degrade its traffic soundly."""
        if shard not in self._live:
            raise ClusterError(f"shard {shard} is not live")
        self._backend.kill(shard)
        self._handle_outage(shard)

    def _handle_outage(self, shard: int) -> None:
        if shard not in self._live:
            return
        self._metrics.counter("shard_outages").increment()
        self._live.discard(shard)
        self._ring.remove(shard)
        self._warm = {
            (owner, digest)
            for owner, digest in self._warm
            if owner != shard
        }
        pending = self._coalescer.pending_on(shard)
        reroute = self._config.outage_mode == "skip" and bool(self._live)
        tracer = self._tracer
        for entry in pending:
            if entry.timeout_handle is not None:
                entry.timeout_handle.cancel()
            if reroute and entry.request is not None:
                new_shard = int(self._ring.node_for(entry.key[0]))
                request_id = next(self._ids)
                context = entry.request.trace
                if tracer is not None and entry.trace_id:
                    # The reroute span stays parented under the original
                    # request's root, so the re-dispatched execution's
                    # shard spans land in the same single-root tree.
                    reroute_span = tracer.new_span()
                    tracer.emit(
                        "reroute",
                        span=reroute_span,
                        trace=entry.trace_id,
                        parent=entry.root_span,
                        fingerprint=entry.key[0],
                        from_shard=shard,
                        to_shard=new_shard,
                    )
                    context = TraceContext(
                        trace_id=entry.trace_id,
                        parent_span=reroute_span,
                        baggage=(("sent_ts", repr(tracer.now())),),
                    )
                request = ExecuteRequest(
                    request_id=request_id,
                    text=entry.request.text,
                    readings=entry.request.readings,
                    fingerprint=entry.request.fingerprint,
                    fault_schedule=entry.request.fault_schedule,
                    fault_seed=entry.request.fault_seed,
                    degradation=entry.request.degradation,
                    max_retries=entry.request.max_retries,
                    trace=context,
                )
                self._coalescer.reassign(entry, new_shard, request_id)
                entry.request = request
                entry.timeout_handle = self._loop.call_later(
                    self._config.request_timeout, self._expire, request_id
                )
                self._metrics.counter("requests_rerouted").increment()
                self._dispatch(new_shard, request)
            else:
                self._coalescer.resolve(entry.request_id)
                self._metrics.labeled_counter(
                    "requests_shed", "reason"
                ).labels(reason="outage").increment(len(entry.waiters))
                avoided = self._known_cost.get(entry.key[0], 0.0)
                rows = 0
                if entry.request is not None:
                    rows = int(np.asarray(entry.request.readings).shape[0])
                charged = self._admission.charge_shed(avoided, rows)
                if tracer is not None and entry.trace_id:
                    # One accounting event per execution (not per
                    # waiter): cost_avoided must match charge_shed
                    # exactly once.  Waiters' own request roots close
                    # with shed=True when the shed reply fans out.
                    tracer.emit(
                        "outage-shed",
                        trace=entry.trace_id,
                        parent=entry.root_span,
                        fingerprint=entry.key[0],
                        shard=shard,
                        waiters=len(entry.waiters),
                        cost_avoided=charged,
                    )
                shed_reply = ExecuteReply(
                    request_id=entry.request_id,
                    shard=shard,
                    ok=False,
                    error="shed:outage",
                )
                for waiter in entry.waiters:
                    if not waiter.done():
                        waiter.set_result(shed_reply)

    # ------------------------------------------------------------------
    # Control / introspection
    # ------------------------------------------------------------------

    async def _control(
        self, shard: int, kind: str, version: int = 0
    ) -> ControlReply:
        loop = asyncio.get_running_loop()
        request_id = next(self._ids)
        future: asyncio.Future = loop.create_future()
        self._control_pending[request_id] = future
        try:
            self._backend.send(
                shard,
                ControlRequest(
                    request_id=request_id, kind=kind, version=version
                ),
            )
            return await asyncio.wait_for(
                future, timeout=self._config.control_timeout
            )
        except (asyncio.TimeoutError, ShardUnavailableError):
            self._control_pending.pop(request_id, None)
            raise ShardUnavailableError(
                f"shard {shard} did not answer {kind!r}"
            ) from None

    async def invalidate_all(self) -> int:
        """Advance every shard to a fresh statistics generation.

        This is the broadcast bus driven from the top (e.g. after an
        out-of-band statistics refit): each shard bumps past the current
        cluster version, dropping stale cached plans everywhere, and the
        new generation becomes the cluster version.  Returns it.
        """
        target = self._cluster_version + 1
        replies = await asyncio.gather(
            *(
                self._control(shard, "sync_version", version=target)
                for shard in sorted(self._live)
            )
        )
        self._warm.clear()
        self._cluster_version = max(
            target,
            max(reply.statistics_version for reply in replies),
        )
        return self._cluster_version

    def front_door_stats(self) -> dict:
        """Front-door-local snapshot (no shard round-trips)."""
        slo = self._slo.snapshot()  # refreshes burn-rate gauges too
        snapshot = self._metrics.snapshot()
        return {
            "live_shards": sorted(self._live),
            "statistics_version": self._cluster_version,
            "coalescing": {
                "enabled": self._config.coalescing,
                "inflight": self._coalescer.inflight_requests,
                "coalesced_requests": self._coalescer.coalesced_requests,
                "dispatched_requests": self._coalescer.dispatched_requests,
            },
            "admission": self._admission.snapshot(),
            "slo": slo,
            "counters": snapshot["counters"],
            "labeled_counters": snapshot["labeled_counters"],
            "latency": snapshot["histograms"],
        }

    async def stats(self) -> dict:
        """Cluster-wide view: per-shard stats + merged metrics."""
        replies = await asyncio.gather(
            *(self._control(shard, "stats") for shard in sorted(self._live))
        )
        shards = {
            reply.shard: reply.payload["stats"] for reply in replies
        }
        merged = merge_snapshots(
            [reply.payload["metrics"] for reply in replies]
        )
        return {
            "front_door": self.front_door_stats(),
            "shards": shards,
            "merged_metrics": merged,
        }

    async def prometheus(self) -> str:
        """Shard-labeled exposition: every worker plus the front door."""
        replies = await asyncio.gather(
            *(self._control(shard, "stats") for shard in sorted(self._live))
        )
        sections = [
            render_prometheus(
                self._metrics.snapshot(), labels={"shard": "front_door"}
            )
        ]
        sections.extend(
            render_prometheus(
                reply.payload["metrics"], labels={"shard": str(reply.shard)}
            )
            for reply in replies
        )
        return "".join(sections)
