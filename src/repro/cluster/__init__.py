"""Sharded async serving tier for the acquisitional query service.

A :class:`ShardedServiceCluster` front door consistent-hash routes
canonical query fingerprints to shard workers (each owning a private
:class:`~repro.service.AcquisitionalService`, plan cache, and metrics
registry), coalesces identical in-flight requests so each unique
(fingerprint, readings, fault) execution is acquired and planned once,
sheds load under overload with the fault-policy degradation vocabulary,
and broadcasts statistics-version bumps across shards so stale plans
are invalidated cluster-wide.
"""

from repro.cluster.admission import AdmissionController, AdmissionDecision
from repro.cluster.coalesce import CoalescingMap, InFlight
from repro.cluster.frontdoor import (
    ClusterConfig,
    ClusterResponse,
    ShardedServiceCluster,
)
from repro.cluster.hashring import ConsistentHashRing, stable_hash
from repro.cluster.messages import (
    ControlReply,
    ControlRequest,
    ExecuteReply,
    ExecuteRequest,
    ShardConfig,
)
from repro.cluster.shard import ShardServer, readings_key
from repro.cluster.worker import worker_main

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CoalescingMap",
    "ClusterConfig",
    "ClusterResponse",
    "ConsistentHashRing",
    "ControlReply",
    "ControlRequest",
    "ExecuteReply",
    "ExecuteRequest",
    "InFlight",
    "ShardConfig",
    "ShardServer",
    "ShardedServiceCluster",
    "readings_key",
    "stable_hash",
    "worker_main",
]
