"""The shard worker process: a queue-draining loop around ShardServer.

Each worker owns one :class:`~repro.cluster.shard.ShardServer` built
from a picklable :class:`~repro.cluster.messages.ShardConfig`.  The loop
blocks on its request queue, then greedily drains whatever else is
already queued (up to ``config.batch_window``) so a burst of same-shape
requests becomes one coalesced, vectorized execution instead of N
round-trips — the multiprocessing analogue of the front door's
event-loop coalescing window.

Distributed tracing needs no code here: ``config.tracing`` makes the
ShardServer build its own shard-named :class:`~repro.obs.trace.Tracer`,
the incoming :class:`~repro.cluster.messages.TraceContext` rides on each
``ExecuteRequest``, and the shard's spans travel back piggybacked on the
group leader's ``ExecuteReply`` — the worker just moves the records.

Control messages are handled in arrival order relative to the execute
batches around them; ``shutdown`` acknowledges and exits the process.
A crashed batch never kills the loop silently: the exception is turned
into per-request error replies so the front door's futures always
resolve.

``worker_main`` is a module-level function (not a closure) so it works
under both the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import queue as queue_module
from typing import TYPE_CHECKING

from repro.cluster.messages import (
    ControlRequest,
    ExecuteReply,
    ExecuteRequest,
    ShardConfig,
)
from repro.cluster.shard import ShardServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing import Queue

__all__ = ["worker_main"]


def _drain(
    request_queue: "Queue", first: object, window: int
) -> list[object]:
    """The blocking head plus everything already queued (bounded)."""
    batch = [first]
    while len(batch) < window:
        try:
            batch.append(request_queue.get_nowait())
        except queue_module.Empty:
            break
    return batch


def worker_main(
    shard_id: int,
    config: ShardConfig,
    request_queue: "Queue",
    reply_queue: "Queue",
) -> None:
    """Entry point of one shard worker process."""
    server = ShardServer(shard_id, config)
    alive = True
    while alive:
        first = request_queue.get()
        batch = _drain(request_queue, first, config.batch_window)
        executes: list[ExecuteRequest] = []
        for message in batch:
            if isinstance(message, ExecuteRequest):
                executes.append(message)
                continue
            # Control messages act as batch boundaries: flush pending
            # executes first so sync_version applies between batches the
            # way the front door observed them.
            if executes:
                _serve(server, executes, reply_queue)
                executes = []
            if isinstance(message, ControlRequest):
                reply = server.handle_control(message)
                reply_queue.put(reply)
                if message.kind == "shutdown":
                    alive = False
                    break
        if alive and executes:
            _serve(server, executes, reply_queue)


def _serve(
    server: ShardServer,
    requests: list[ExecuteRequest],
    reply_queue: "Queue",
) -> None:
    try:
        replies = server.handle_batch(requests)
    except Exception as error:  # noqa: BLE001 - must answer every future
        replies = [
            ExecuteReply(
                request_id=request.request_id,
                shard=server.shard_id,
                ok=False,
                error=f"{type(error).__name__}: {error}",
                statistics_version=server.service.engine.statistics_version,
            )
            for request in requests
        ]
    for reply in replies:
        reply_queue.put(reply)
