"""Admission control: degrade under overload instead of collapsing.

The controller reuses the PR 5 fault-policy degradation vocabulary
(:class:`~repro.faults.DegradationMode`) as its load-shedding policy —
overload is treated as one more acquisition fault, handled by the same
sound degrade-don't-lie contract:

- ``ABSTAIN`` — between the soft and hard in-flight limits every
  non-coalescible request is refused outright (the client gets an
  explicit shed, never a wrong or partial answer);
- ``SKIP`` — the expensive work is skipped, not the request: requests
  whose fingerprint is already *warm* (planned and cached on their
  shard, so serving them costs no planning) are still admitted between
  the limits, only *cold* fingerprints — the ones that would trigger
  fresh planning under pressure — are shed;
- above the hard limit everything non-coalescible sheds regardless of
  mode (``IMPUTE`` has no overload analogue and maps to ``SKIP``).

Joining an existing in-flight execution is always admitted: a coalesced
request adds one future and zero shard work, so shedding it would save
nothing.  Every shed is charged to the Eq. 3 ledger at the request's
last-known expected WHERE cost — the energy the cluster *declined to
spend* — so capacity planning can compare shed cost against served cost
in the same currency the planner optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ClusterError
from repro.faults.policy import DegradationMode

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict for one arriving request."""

    admitted: bool
    reason: str = ""  # "", "overload", "queue-depth", "cold"


class AdmissionController:
    """Two-level in-flight limiter with degradation-mode shedding."""

    def __init__(
        self,
        soft_limit: int = 256,
        hard_limit: int = 1024,
        max_shard_depth: int | None = None,
        shed_mode: DegradationMode = DegradationMode.ABSTAIN,
    ) -> None:
        if soft_limit < 1:
            raise ClusterError(f"soft_limit must be >= 1, got {soft_limit}")
        if hard_limit < soft_limit:
            raise ClusterError(
                f"hard_limit ({hard_limit}) must be >= soft_limit "
                f"({soft_limit})"
            )
        if max_shard_depth is not None and max_shard_depth < 1:
            raise ClusterError(
                f"max_shard_depth must be >= 1, got {max_shard_depth}"
            )
        self.soft_limit = int(soft_limit)
        self.hard_limit = int(hard_limit)
        self.max_shard_depth = max_shard_depth
        self.shed_mode = shed_mode
        self.requests_shed = 0
        self.shed_cost_avoided = 0.0

    def decide(
        self,
        inflight: int,
        shard_depth: int,
        warm: bool,
        joinable: bool,
    ) -> AdmissionDecision:
        """Admit, or shed with a reason.

        ``inflight`` counts cluster-wide waiters, ``shard_depth`` counts
        executions pending on the routed shard, ``warm`` says the
        fingerprint has a live cached plan on that shard, ``joinable``
        says an identical execution is already in flight.
        """
        if joinable:
            return AdmissionDecision(True)
        if inflight >= self.hard_limit:
            return AdmissionDecision(False, "overload")
        if (
            self.max_shard_depth is not None
            and shard_depth >= self.max_shard_depth
        ):
            return AdmissionDecision(False, "queue-depth")
        if inflight >= self.soft_limit:
            if self.shed_mode is DegradationMode.ABSTAIN:
                return AdmissionDecision(False, "overload")
            # SKIP (and IMPUTE, which has no overload analogue): skip the
            # *planning* work — warm shapes still flow, cold ones shed.
            if not warm:
                return AdmissionDecision(False, "cold")
        return AdmissionDecision(True)

    def charge_shed(self, expected_where_cost: float, rows: int) -> float:
        """Account a shed request's avoided Eq. 3 acquisition cost.

        Returns the cost actually added to the ledger so callers can
        mirror the exact charge elsewhere (trace events carry it as
        ``cost_avoided``, which the obs-report reconciliation checks
        against this ledger).
        """
        self.requests_shed += 1
        if expected_where_cost > 0.0 and rows > 0:
            charge = expected_where_cost * rows
            self.shed_cost_avoided += charge
            return charge
        return 0.0

    def snapshot(self) -> dict:
        return {
            "soft_limit": self.soft_limit,
            "hard_limit": self.hard_limit,
            "max_shard_depth": self.max_shard_depth,
            "shed_mode": self.shed_mode.value,
            "requests_shed": self.requests_shed,
            "shed_cost_avoided": round(self.shed_cost_avoided, 4),
        }
