"""The worker protocol: messages crossing the front-door/shard boundary.

Everything here is a plain picklable dataclass so the same types flow
over ``multiprocessing`` queues (process backend) and plain function
calls (in-process backend).  The protocol is deliberately small:

- :class:`ExecuteRequest` — serve one statement over a readings matrix,
  optionally under a fault schedule (per-shard chaos), carrying the
  front door's :class:`~repro.obs.trace.TraceContext` when tracing;
- :class:`ExecuteReply` — the result (or error) plus the shard's current
  statistics version, which doubles as the piggybacked signal the front
  door uses for cross-shard invalidation broadcasts; when tracing, the
  group leader's reply also piggybacks the shard's exported span
  records so one process (the front door) holds the whole request tree;
- :class:`ControlRequest` / :class:`ControlReply` — stats collection,
  statistics-version synchronization, liveness pings, and shutdown.

:class:`ShardConfig` is the recipe a worker uses to build its private
:class:`~repro.service.AcquisitionalService`: schema + training history
+ planner/cache knobs.  Workers never share Python objects with the
front door — each shard owns its engine, plan cache, metrics registry,
and tracer outright, which is what makes the per-shard state safe
without cross-process locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.attributes import Schema
from repro.exceptions import ClusterError
from repro.obs.trace import TraceContext

__all__ = [
    "ShardConfig",
    "ExecuteRequest",
    "ExecuteReply",
    "ControlRequest",
    "ControlReply",
    "CONTROL_KINDS",
]

_PLANNERS = ("naive", "greedy-seq", "opt-seq", "corr-seq", "heuristic")
_EXEC_BACKENDS = ("interp", "compiled")
CONTROL_KINDS = ("ping", "stats", "sync_version", "shutdown")


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker needs to build its shard-local service.

    ``planner`` names the conjunctive planner family (disjunctive
    statements fall back to the exhaustive planner inside the engine as
    usual).  It is a *name* rather than a factory callable so the config
    pickles under the ``spawn`` start method, not just ``fork``.
    ``batch_window`` caps how many queued requests a worker drains into
    one coalesced/batched execution pass.  ``tracing`` gives the shard a
    name-prefixed :class:`~repro.obs.trace.Tracer` whose spans are
    exported back to the front door on replies.  ``exec_backend``
    selects the shard service's execution tier (``"interp"`` or the
    translation-validated ``"compiled"`` columnar tier; rejected
    kernels fall back to the interpreter per-plan).
    """

    schema: Schema
    history: np.ndarray
    planner: str = "corr-seq"
    max_splits: int = 5
    smoothing: float = 0.0
    cache_capacity: int = 256
    cache_policy: str = "lfu"
    verify_admission: bool = True
    profiling: bool = False
    batch_window: int = 128
    tracing: bool = False
    exec_backend: str = "interp"

    def __post_init__(self) -> None:
        if self.planner not in _PLANNERS:
            raise ClusterError(
                f"unknown planner {self.planner!r}; choose from {_PLANNERS}"
            )
        if self.batch_window < 1:
            raise ClusterError(
                f"batch_window must be >= 1, got {self.batch_window}"
            )
        if self.exec_backend not in _EXEC_BACKENDS:
            raise ClusterError(
                f"unknown exec_backend {self.exec_backend!r}; "
                f"choose from {_EXEC_BACKENDS}"
            )


@dataclass(frozen=True)
class ExecuteRequest:
    """Serve ``text`` over ``readings`` on the routed shard.

    ``fingerprint`` is the canonical digest the front door routed on; the
    shard trusts it only as a grouping hint and re-canonicalizes for its
    own plan cache.  When ``fault_schedule`` (a
    :meth:`~repro.faults.FaultSchedule.to_dict` payload) is present the
    shard runs the resilient path; ``fault_seed`` is combined with the
    fingerprint digest so the injection stream is deterministic per query
    shape no matter how requests are coalesced or batched.

    ``trace`` carries the distributed-trace coordinates when the cluster
    runs with tracing enabled: the shard parents its ``shard-execute``
    span under ``trace.parent_span`` and reads the ``sent_ts`` baggage to
    attribute queue time.  ``None`` means untraced (zero overhead).
    """

    request_id: int
    text: str
    readings: np.ndarray
    fingerprint: str = ""
    fault_schedule: Mapping[str, Any] | None = None
    fault_seed: int = 0
    degradation: str = "abstain"
    max_retries: int = 2
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ExecuteReply:
    """One request's outcome plus shard health piggybacked alongside.

    ``payload`` is a :class:`~repro.engine.QueryResult` (plain path) or
    :class:`~repro.engine.ResilientQueryResult` (chaos path); ``None``
    when ``ok`` is false and ``error`` explains why.  ``group_size`` is
    how many requests the shard served from this one execution (its
    local coalescing factor).  ``expected_where_cost`` feeds the front
    door's Eq. 3 shed-accounting ledger.

    When tracing, ``trace_id`` names the trace that actually *executed*
    this request's group (the group leader's trace — shard-level
    coalescing means a follower's reply may carry a foreign trace id),
    and ``spans`` piggybacks the shard's exported span records —
    pre-encoded ``TraceEvent.to_json()`` lines, attached to the leader's
    reply only so coalesced fan-out cannot double-ingest them.  Lines
    rather than dicts keep the reply cheap: the JSON encode happens in
    the worker process and the string pickles in one block, so the front
    door's loop only copies it to the merged stream.
    """

    request_id: int
    shard: int
    ok: bool
    payload: Any = None
    error: str = ""
    statistics_version: int = 1
    group_size: int = 1
    expected_where_cost: float = 0.0
    elapsed_seconds: float = 0.0
    trace_id: str = ""
    spans: tuple[str, ...] = ()


@dataclass(frozen=True)
class ControlRequest:
    """A non-query instruction to one shard worker."""

    request_id: int
    kind: str
    version: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CONTROL_KINDS:
            raise ClusterError(
                f"unknown control kind {self.kind!r}; "
                f"choose from {CONTROL_KINDS}"
            )


@dataclass(frozen=True)
class ControlReply:
    """A shard's answer to a :class:`ControlRequest`."""

    request_id: int
    shard: int
    kind: str
    statistics_version: int = 1
    payload: dict = field(default_factory=dict)
