"""Consistent-hash routing of query fingerprints to shard workers.

The front door routes every request by the *digest* of its canonical
:class:`~repro.service.fingerprint.QueryFingerprint`, so all spellings
of one query shape land on the same shard and hit the same shard-local
plan cache.  A consistent-hash ring (vs. ``hash(key) % n``) keeps that
property cheap to maintain under membership changes: when a shard dies,
only the keys it owned move — every other fingerprint keeps its warm
cache slot.

Hashing is SHA-256-based rather than Python's builtin ``hash`` because
routing decisions must agree across processes and runs: ``PYTHONHASHSEED``
randomizes ``hash(str)`` per interpreter, which would scatter one
fingerprint across shards between the front door and a restarted
worker.  Each node is planted at ``vnodes`` pseudo-random points so load
spreads evenly even with a handful of shards.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable

from repro.exceptions import ClusterError

__all__ = ["ConsistentHashRing", "stable_hash"]


def stable_hash(key: object) -> int:
    """A process-stable 64-bit hash (non-strings hash via ``str``)."""
    text = key if isinstance(key, str) else str(key)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Map string keys onto nodes with minimal disruption on changes."""

    def __init__(
        self, nodes: Iterable[Hashable] = (), vnodes: int = 64
    ) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = int(vnodes)
        # Parallel arrays: sorted virtual-point hashes and their owners.
        self._hashes: list[int] = []
        self._owners: list[Hashable] = []
        self._nodes: set[Hashable] = set()
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> frozenset[Hashable]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def add(self, node: Hashable) -> None:
        """Plant a node at its virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self._vnodes):
            point = stable_hash(f"{node!r}#{replica}")
            index = bisect.bisect_right(self._hashes, point)
            self._hashes.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: Hashable) -> None:
        """Withdraw a node; its keys redistribute to ring successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._hashes, self._owners)
            if owner != node
        ]
        self._hashes = [point for point, _owner in keep]
        self._owners = [owner for _point, owner in keep]

    def node_for(self, key: str) -> Hashable:
        """The node owning ``key`` (clockwise successor on the ring)."""
        if not self._hashes:
            raise ClusterError("hash ring has no nodes")
        point = stable_hash(key)
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def assignment(self, keys: Iterable[str]) -> dict[Hashable, list[str]]:
        """Group ``keys`` by owning node (diagnostics / balance checks)."""
        grouped: dict[Hashable, list[str]] = {node: [] for node in self._nodes}
        for key in keys:
            grouped[self.node_for(key)].append(key)
        return grouped
