"""repro — conditional query plans for acquisitional query processing.

A from-scratch reproduction of Deshpande, Guestrin, Hong, and Madden,
*Exploiting Correlated Attributes in Acquisitional Query Processing*
(ICDE 2005).

The library's flow mirrors the paper's architecture (Section 2.5):

1. Build a :class:`~repro.core.Schema` describing attributes, their
   discretized domains, and their acquisition costs.
2. Fit a probability model on historical data —
   :class:`~repro.probability.EmpiricalDistribution` (raw counting) or
   :class:`~repro.probability.ChowLiuDistribution` (tree graphical model).
3. Plan a :class:`~repro.core.ConjunctiveQuery` with one of the planners:
   :class:`~repro.planning.NaivePlanner`,
   :class:`~repro.planning.GreedySequentialPlanner`,
   :class:`~repro.planning.OptimalSequentialPlanner`,
   :class:`~repro.planning.ExhaustivePlanner` (optimal conditional plans),
   or :class:`~repro.planning.GreedyConditionalPlanner` (the Heuristic-k
   algorithm).
4. Execute the plan — per tuple with
   :class:`~repro.execution.PlanExecutor`, over a dataset with
   :func:`~repro.core.dataset_execution`, or in the
   :class:`~repro.execution.SensorNetworkSimulator`.

See ``examples/quickstart.py`` for a complete end-to-end walk-through.
"""

from repro.core import (
    AcquisitionCostModel,
    And,
    Attribute,
    BoardAwareCostModel,
    BooleanQuery,
    ConditionNode,
    ConjunctiveQuery,
    DatasetExecution,
    Formula,
    Leaf,
    Or,
    ExistentialQuery,
    LimitQuery,
    NotRangePredicate,
    PlanNode,
    Predicate,
    Range,
    RangePredicate,
    RangeVector,
    Schema,
    SchemaCostModel,
    SequentialNode,
    SequentialStep,
    Truth,
    VerdictLeaf,
    combined_objective,
    dataset_execution,
    empirical_cost,
    expected_cost,
    validate_plan,
    plan_from_dict,
    simplify_plan,
    traversal_cost,
)
from repro.exceptions import (
    AcquisitionError,
    AcquisitionFailure,
    DiscretizationError,
    DistributionError,
    FaultConfigError,
    LearningError,
    PlanError,
    PlanningError,
    PlanVerificationError,
    QueryError,
    ReproError,
    SchemaError,
    ServiceError,
)
from repro.learn import (
    BanditPlanner,
    BanditStateStore,
    LearnedStreamExecutor,
    LearnedStreamReport,
    OrderBanditEnsemble,
    RegretLedger,
)
from repro.faults import (
    AttributeFaults,
    DegradationMode,
    FaultInjector,
    FaultPolicy,
    FaultSchedule,
    FaultTolerantExecutor,
    RetryPolicy,
)
from repro.execution import (
    AdaptiveStreamExecutor,
    ByteCodeInterpreter,
    compile_plan,
    decompile_plan,
    Mote,
    PlanExecutor,
    SensorBoardSource,
    SensorNetworkSimulator,
    TupleSource,
)
from repro.planning import (
    CorrSeqPlanner,
    SizeAwareConditionalPlanner,
    ExhaustivePlanner,
    GreedyConditionalPlanner,
    GreedySequentialPlanner,
    NaivePlanner,
    OptimalSequentialPlanner,
    PlanningResult,
    SplitPointPolicy,
)
from repro.engine import AcquisitionalEngine, parse_query
from repro.service import (
    AcquisitionalService,
    PlanCache,
    QueryFingerprint,
    fingerprint_statement,
)
from repro.probability import (
    ChowLiuDistribution,
    EmpiricalDistribution,
    IndependenceDistribution,
    SlidingWindowDistribution,
)
from repro.obs import (
    DriftMonitor,
    DriftReport,
    PlanProfile,
    Tracer,
    predict_plan,
    render_prometheus,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Attribute",
    "Schema",
    "Range",
    "RangeVector",
    "Truth",
    "Predicate",
    "RangePredicate",
    "NotRangePredicate",
    "ConjunctiveQuery",
    "BooleanQuery",
    "Formula",
    "Leaf",
    "And",
    "Or",
    "ExistentialQuery",
    "LimitQuery",
    "PlanNode",
    "VerdictLeaf",
    "SequentialNode",
    "SequentialStep",
    "ConditionNode",
    "plan_from_dict",
    "simplify_plan",
    "validate_plan",
    "traversal_cost",
    "dataset_execution",
    "empirical_cost",
    "expected_cost",
    "combined_objective",
    "DatasetExecution",
    "AcquisitionCostModel",
    "SchemaCostModel",
    "BoardAwareCostModel",
    # probability
    "EmpiricalDistribution",
    "ChowLiuDistribution",
    "IndependenceDistribution",
    "SlidingWindowDistribution",
    # planning
    "NaivePlanner",
    "GreedySequentialPlanner",
    "OptimalSequentialPlanner",
    "CorrSeqPlanner",
    "ExhaustivePlanner",
    "GreedyConditionalPlanner",
    "SizeAwareConditionalPlanner",
    "SplitPointPolicy",
    "PlanningResult",
    # execution
    "PlanExecutor",
    "compile_plan",
    "decompile_plan",
    "ByteCodeInterpreter",
    "TupleSource",
    "SensorBoardSource",
    "Mote",
    "SensorNetworkSimulator",
    "AdaptiveStreamExecutor",
    # faults
    "AttributeFaults",
    "FaultSchedule",
    "FaultInjector",
    "RetryPolicy",
    "DegradationMode",
    "FaultPolicy",
    "FaultTolerantExecutor",
    # engine
    "AcquisitionalEngine",
    "parse_query",
    # service
    "AcquisitionalService",
    "PlanCache",
    "QueryFingerprint",
    "fingerprint_statement",
    # learning
    "BanditPlanner",
    "BanditStateStore",
    "LearnedStreamExecutor",
    "LearnedStreamReport",
    "OrderBanditEnsemble",
    "RegretLedger",
    # observability
    "PlanProfile",
    "DriftMonitor",
    "DriftReport",
    "Tracer",
    "predict_plan",
    "render_prometheus",
    # exceptions
    "ReproError",
    "SchemaError",
    "QueryError",
    "PlanError",
    "PlanningError",
    "PlanVerificationError",
    "DistributionError",
    "AcquisitionError",
    "AcquisitionFailure",
    "FaultConfigError",
    "DiscretizationError",
    "LearningError",
    "ServiceError",
]
