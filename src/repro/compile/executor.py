"""Columnar execution of compiled kernels.

:func:`execute_compiled` evaluates a :class:`~repro.compile.ir.CompiledPlan`
over a readings matrix in one flat pass — no recursion, no per-node
tree dispatch, columns read at most once — producing the same
:class:`~repro.core.cost.DatasetExecution` (bit-identical costs and
verdicts) as the interpreting walker.  The fast path (no observer) does
no mask counting at all; with an observer attached, per-op batch
counters reproduce the walker's node events exactly, including the
"empty batches emit nothing" rule, so
:class:`~repro.obs.PlanProfile` ledgers are backend-agnostic.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.compile.ir import (
    ChargeOp,
    CompiledPlan,
    EnterOp,
    SplitOp,
    StepOp,
    VerdictOp,
)
from repro.core.cost import DatasetExecution, ExecutionObserver
from repro.core.plan import ConditionNode, SequentialNode, VerdictLeaf
from repro.exceptions import CompileError, PlanError
from repro.verify.paths import node_at

__all__ = ["execute_compiled"]


def execute_compiled(
    compiled: CompiledPlan,
    data: np.ndarray,
    observer: ExecutionObserver | None = None,
) -> DatasetExecution:
    """Run a compiled kernel over every row of ``data``.

    Observer support requires ``compiled.source`` (the plan the kernel
    was lowered from) to resolve node objects for the event callbacks;
    deserialized kernels carry no source and must run observer-free.
    """
    matrix = np.asarray(data)
    if matrix.ndim != 2 or matrix.shape[1] != compiled.schema_width:
        raise PlanError(
            f"data shape {matrix.shape} incompatible with compiled schema "
            f"width {compiled.schema_width}"
        )
    if observer is not None and compiled.source is None:
        raise CompileError(
            "observer support needs the kernel's source plan; this kernel "
            "was deserialized without one"
        )
    n_rows = matrix.shape[0]
    costs = np.zeros(n_rows, dtype=np.float64)
    verdicts = np.zeros(n_rows, dtype=bool)
    registers: list[np.ndarray] = [
        np.ones(n_rows, dtype=bool)
    ] * compiled.register_count
    columns: dict[int, np.ndarray] = {}

    def column(index: int) -> np.ndarray:
        cached = columns.get(index)
        if cached is None:
            cached = np.ascontiguousarray(matrix[:, index])
            columns[index] = cached
        return cached

    if observer is None:
        for op in compiled.ops:
            if isinstance(op, ChargeOp):
                np.add(costs, op.amount, out=costs, where=registers[op.reg])
            elif isinstance(op, SplitOp):
                mask = registers[op.reg_in]
                test = column(op.attribute_index) < op.split_value
                registers[op.reg_below] = mask & test
                registers[op.reg_above] = mask & ~test
            elif isinstance(op, StepOp):
                mask = registers[op.reg_in]
                values = column(op.attribute_index)
                test = (values >= op.low) & (values <= op.high)
                if op.negate:
                    test = ~test
                registers[op.reg_pass] = mask & test
                registers[op.reg_fail] = mask & ~test
            elif isinstance(op, VerdictOp):
                verdicts[registers[op.reg]] = op.value
            # EnterOp does no mask work on the fast path.
        return DatasetExecution(costs=costs, verdicts=verdicts)

    _execute_observed(compiled, column, registers, costs, verdicts, observer)
    return DatasetExecution(costs=costs, verdicts=verdicts)


def _owner_path(path: str) -> str:
    """The sequential node's path owning a ``.../steps[i]`` anchor."""
    marker = path.rfind("/steps[")
    return path if marker < 0 else path[:marker]


def _execute_observed(
    compiled: CompiledPlan,
    column: Callable[[int], np.ndarray],
    registers: list[np.ndarray],
    costs: np.ndarray,
    verdicts: np.ndarray,
    observer: ExecutionObserver,
) -> None:
    """The metered path: identical mask math plus walker-shaped events."""
    plan = compiled.source
    assert plan is not None
    nodes: dict[str, object] = {}

    def node_for(path: str) -> object:
        resolved = nodes.get(path)
        if resolved is None:
            resolved = node_at(plan, path)
            nodes[path] = resolved
        return resolved

    for op in compiled.ops:
        if isinstance(op, ChargeOp):
            np.add(costs, op.amount, out=costs, where=registers[op.reg])
        elif isinstance(op, SplitOp):
            mask = registers[op.reg_in]
            test = column(op.attribute_index) < op.split_value
            below = mask & test
            registers[op.reg_below] = below
            registers[op.reg_above] = mask & ~test
            visits = int(mask.sum())
            if visits:
                node = node_for(op.source_path)
                assert isinstance(node, ConditionNode)
                observer.on_condition(
                    op.source_path, node, visits, int(below.sum()), op.charged
                )
        elif isinstance(op, EnterOp):
            visits = int(registers[op.reg_in].sum())
            if visits:
                node = node_for(op.source_path)
                assert isinstance(node, SequentialNode)
                observer.on_sequential(op.source_path, node, visits)
        elif isinstance(op, StepOp):
            mask = registers[op.reg_in]
            values = column(op.attribute_index)
            test = (values >= op.low) & (values <= op.high)
            if op.negate:
                test = ~test
            passed = mask & test
            registers[op.reg_pass] = passed
            registers[op.reg_fail] = mask & ~test
            evaluated = int(mask.sum())
            if evaluated:
                owner = _owner_path(op.source_path)
                node = node_for(owner)
                assert isinstance(node, SequentialNode)
                observer.on_step(
                    owner,
                    node,
                    op.step_index,
                    evaluated,
                    int(passed.sum()),
                    op.charged,
                )
        elif isinstance(op, VerdictOp):
            mask = registers[op.reg]
            verdicts[mask] = op.value
            if op.leaf:
                visits = int(mask.sum())
                if visits:
                    node = node_for(op.source_path)
                    assert isinstance(node, VerdictLeaf)
                    observer.on_verdict(op.source_path, node, visits)
