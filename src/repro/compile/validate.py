"""The translation validator: per-kernel equivalence proofs.

Rather than trusting the lowering pass, every compiled kernel is
*proven* equivalent to its source plan before it may execute — the
translation-validation discipline.  :func:`validate_translation` runs
four static passes over the IR and emits stable ``TV*`` diagnostics
into the verifier's :class:`~repro.verify.diagnostics.VerificationReport`
model, so ``verify_plan``, plan-cache admission, ``lint-plan``, and the
shards gate on kernels exactly as they gate on plans:

- **Well-formedness** (``TV009``): single-assignment registers, reads
  after writes, indices within the schema, finite charge amounts.  A
  malformed program is rejected before any interpretation.
- **Simulation** (``TV001``–``TV006``): the IR is abstract-interpreted
  with the PR 4 interval+observed-set domain
  (:class:`~repro.analysis.domain.AbstractState`), registers tied to
  plan program points through each op's ``source_path`` annotation.
  Every plan node must be anchored by exactly one op of the right kind
  (``TV001``); child anchors must consume the registers their parent's
  split produced (``TV002`` — this is what catches mask-polarity flips
  and branch swaps); sequential chains must evaluate the plan's steps
  in order, each consuming the previous step's pass register
  (``TV003``); op parameters must match the node's (``TV004``);
  verdicts must decide what the plan decides — leaf values, rejection
  on fail registers, acceptance for full-chain survivors (``TV005``);
  and every live register must be consumed by exactly one decision op,
  so the kernel's verdict masks partition the batch with neither gaps
  nor overlaps (``TV006``).
- **Chargedness** (``TV007``): the expected charge schedule is
  re-derived from the plan by replaying the interpreter's path-static
  acquired-set discipline; the kernel's ``ChargeOp`` set must match it
  exactly — anchor, register, attribute, and amount.
- **Conservation** (``TV008``, given a distribution): the Eq. 3
  expected cost is re-derived *from the IR alone* — each charge
  weighted by its register's reach probability, computed by pushing
  split and sequential-pass probabilities through the register graph —
  and checked against the plan's cost certificate (or a fresh Eq. 3
  recomputation) within tolerance.

``TV010`` separately rejects kernels whose statistics stamp trails the
engine's current version: a stale kernel faithfully executes a plan the
cache already invalidated.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.analysis.domain import AbstractState
from repro.compile.ir import (
    ChargeOp,
    CompiledPlan,
    EnterOp,
    KernelOp,
    SplitOp,
    StepOp,
    VerdictOp,
)
from repro.core.attributes import Schema
from repro.core.cost import expected_cost
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.core.predicates import NotRangePredicate, RangePredicate
from repro.exceptions import ReproError
from repro.verify.diagnostics import (
    Diagnostic,
    Severity,
    VerificationReport,
    make_diagnostic,
)
from repro.verify.paths import ROOT_PATH, iter_plan_paths, step_path

if TYPE_CHECKING:
    from repro.analysis.certificates import CostCertificate
    from repro.probability.base import Distribution

__all__ = ["DEFAULT_TV_TOLERANCE", "validate_translation"]

# Relative tolerance of the TV008 conservation check, matching the
# verifier's cost-conservation and certificate tolerances.
DEFAULT_TV_TOLERANCE = 1e-6


def validate_translation(
    compiled: CompiledPlan,
    plan: PlanNode,
    schema: Schema,
    distribution: "Distribution | None" = None,
    certificate: "CostCertificate | None" = None,
    expected_statistics_version: int | None = None,
    cost_model: AcquisitionCostModel | None = None,
    tolerance: float = DEFAULT_TV_TOLERANCE,
    subject: str = "compiled plan",
) -> VerificationReport:
    """Prove (or refute) that ``compiled`` implements ``plan``.

    Returns a :class:`VerificationReport`; the kernel is admissible only
    when the report is ``ok``.  The conservation pass (``TV008``) runs
    only when a ``distribution`` is supplied and every structural pass
    came back clean — reach probabilities are meaningless over a
    miswired register graph.
    """
    findings = _check_wellformed(compiled, schema)
    if findings:
        return VerificationReport.from_findings(findings, subject)

    if (
        expected_statistics_version is not None
        and compiled.statistics_version != expected_statistics_version
    ):
        findings.append(
            make_diagnostic(
                "TV010",
                ROOT_PATH,
                f"kernel compiled under statistics version "
                f"{compiled.statistics_version}, engine is at "
                f"{expected_statistics_version}",
                hint="recompile the plan after a statistics bump; stale "
                "kernels execute invalidated plans",
            )
        )

    simulation = _Simulation(compiled, plan, schema)
    findings.extend(simulation.run())
    findings.extend(_check_charges(compiled, plan, schema, cost_model))

    structurally_sound = not any(
        finding.severity is Severity.ERROR for finding in findings
    )
    if distribution is not None and structurally_sound:
        findings.extend(
            _check_conservation(
                compiled,
                plan,
                simulation,
                distribution,
                certificate,
                cost_model,
                tolerance,
            )
        )
    return VerificationReport.from_findings(findings, subject)


# ----------------------------------------------------------------------
# Pass 0: well-formedness (TV009)
# ----------------------------------------------------------------------


def _check_wellformed(
    compiled: CompiledPlan, schema: Schema
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []

    def bad(path: str, message: str, hint: str = "") -> None:
        findings.append(make_diagnostic("TV009", path, message, hint=hint))

    if compiled.register_count < 1:
        bad(ROOT_PATH, "kernel declares no registers")
        return findings
    if compiled.schema_width != len(schema):
        bad(
            ROOT_PATH,
            f"kernel schema width {compiled.schema_width} does not match "
            f"the schema's {len(schema)} attributes",
        )
    written = {0}
    for position, op in enumerate(compiled.ops):
        path = op.source_path
        reads, writes = _op_registers(op)
        for register in reads + writes:
            if not 0 <= register < compiled.register_count:
                bad(
                    path,
                    f"op {position} references register r{register} outside "
                    f"the declared budget of {compiled.register_count}",
                )
                return findings
        for register in reads:
            if register not in written:
                bad(
                    path,
                    f"op {position} reads register r{register} before any "
                    f"op writes it",
                    hint="kernel programs are single-assignment and "
                    "straight-line; definitions must precede uses",
                )
        for register in writes:
            if register in written:
                bad(
                    path,
                    f"op {position} rewrites register r{register}; "
                    f"registers are single-assignment",
                )
            written.add(register)
        index = _op_attribute(op)
        if index is not None and not 0 <= index < len(schema):
            bad(
                path,
                f"op {position} reads attribute index {index} outside the "
                f"schema",
            )
        if isinstance(op, ChargeOp) and not (
            math.isfinite(op.amount) and op.amount >= 0.0
        ):
            bad(path, f"charge amount {op.amount!r} is not a finite cost")
    return findings


def _op_registers(op: KernelOp) -> tuple[list[int], list[int]]:
    """``(reads, writes)`` register lists of one op."""
    if isinstance(op, SplitOp):
        return [op.reg_in], [op.reg_below, op.reg_above]
    if isinstance(op, StepOp):
        return [op.reg_in], [op.reg_pass, op.reg_fail]
    if isinstance(op, EnterOp):
        return [op.reg_in], []
    if isinstance(op, ChargeOp):
        return [op.reg], []
    return [op.reg], []


def _op_attribute(op: KernelOp) -> int | None:
    if isinstance(op, (SplitOp, StepOp, ChargeOp)):
        return op.attribute_index
    return None


# ----------------------------------------------------------------------
# Passes 1–2: anchors, wiring, chains, verdicts, partition
# ----------------------------------------------------------------------


class _Simulation:
    """One symbolic forward pass over the IR, shared by the checks.

    Computes per-register abstract states (from the ops' *actual*
    parameters — the program as written, not as intended) and groups ops
    by role, then verifies the simulation relation the ``source_path``
    annotations claim.
    """

    def __init__(
        self, compiled: CompiledPlan, plan: PlanNode, schema: Schema
    ) -> None:
        self.compiled = compiled
        self.plan = plan
        self.schema = schema
        self.plan_nodes = dict(iter_plan_paths(plan))
        self.states: dict[int, AbstractState] = {
            0: AbstractState.top(schema)
        }
        # Producer path per register, for anchoring diagnostics.
        self.producers: dict[int, str] = {0: ROOT_PATH}
        self.splits: dict[str, list[SplitOp]] = {}
        self.enters: dict[str, list[EnterOp]] = {}
        self.steps: dict[str, list[StepOp]] = {}
        self.leaf_verdicts: dict[str, list[VerdictOp]] = {}
        self.free_verdicts: list[VerdictOp] = []
        self.terminator_uses: dict[int, list[str]] = {}
        self.expected_register: dict[str, int] = {ROOT_PATH: 0}

    def run(self) -> list[Diagnostic]:
        self._interpret()
        findings: list[Diagnostic] = []
        findings.extend(self._check_anchors())
        findings.extend(self._check_wiring())
        findings.extend(self._check_chains())
        findings.extend(self._check_partition())
        return findings

    # -- symbolic interpretation ---------------------------------------

    def _interpret(self) -> None:
        for op in self.compiled.ops:
            if isinstance(op, SplitOp):
                self.splits.setdefault(op.source_path, []).append(op)
                self._terminate(op.reg_in, op.source_path)
                state = self.states.get(op.reg_in, AbstractState.bottom())
                below, above = state.assume_split(
                    op.attribute_index, op.split_value
                )
                self.states[op.reg_below] = below
                self.states[op.reg_above] = above
                self.producers[op.reg_below] = op.source_path + "/below"
                self.producers[op.reg_above] = op.source_path + "/above"
            elif isinstance(op, EnterOp):
                self.enters.setdefault(op.source_path, []).append(op)
            elif isinstance(op, StepOp):
                self.steps.setdefault(op.source_path, []).append(op)
                self._terminate(op.reg_in, op.source_path)
                state = self.states.get(op.reg_in, AbstractState.bottom())
                predicate = _op_predicate(op, self.schema)
                self.states[op.reg_pass] = state.assume_pass(
                    predicate, op.attribute_index
                )
                self.states[op.reg_fail] = state.observe(op.attribute_index)
                self.producers[op.reg_pass] = op.source_path
                self.producers[op.reg_fail] = op.source_path
            elif isinstance(op, VerdictOp):
                self._terminate(op.reg, op.source_path)
                if op.leaf:
                    self.leaf_verdicts.setdefault(
                        op.source_path, []
                    ).append(op)
                else:
                    self.free_verdicts.append(op)

    def _terminate(self, register: int, path: str) -> None:
        self.terminator_uses.setdefault(register, []).append(path)

    # -- TV001: node coverage ------------------------------------------

    def _check_anchors(self) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        anchor_maps: dict[str, Mapping[str, Sequence[KernelOp]]] = {
            "condition": self.splits,
            "sequential": self.enters,
            "verdict": self.leaf_verdicts,
        }
        expected_kind = {
            ConditionNode: "condition",
            SequentialNode: "sequential",
            VerdictLeaf: "verdict",
        }
        covered: set[str] = set()
        for path, node in self.plan_nodes.items():
            kind = expected_kind[type(node)]
            anchors = anchor_maps[kind].get(path, [])
            covered.add(path)
            if not anchors:
                findings.append(
                    make_diagnostic(
                        "TV001",
                        path,
                        f"plan {kind} node has no matching kernel op",
                        hint="every plan node must be realized by exactly "
                        "one anchor op carrying its path",
                    )
                )
            elif len(anchors) > 1:
                findings.append(
                    make_diagnostic(
                        "TV001",
                        path,
                        f"plan {kind} node is anchored by {len(anchors)} "
                        f"kernel ops; expected exactly one",
                    )
                )
        for kind, by_path in anchor_maps.items():
            for path, anchors in by_path.items():
                node = self.plan_nodes.get(path)
                if node is None or expected_kind[type(node)] != kind:
                    findings.append(
                        make_diagnostic(
                            "TV001",
                            path,
                            f"kernel {kind} op anchored at a path with no "
                            f"matching plan node",
                        )
                    )
        return findings

    # -- TV002 + TV004: wiring and parameters --------------------------

    def _check_wiring(self) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        # Expected registers flow from the unique split anchors.
        for path, ops in self.splits.items():
            if len(ops) != 1:
                continue
            op = ops[0]
            self.expected_register[path + "/below"] = op.reg_below
            self.expected_register[path + "/above"] = op.reg_above
        for path, node in self.plan_nodes.items():
            expected = self.expected_register.get(path)
            anchor = self._anchor_for(path, node)
            if anchor is None or expected is None:
                continue
            actual = _op_registers(anchor)[0][0]
            if actual != expected:
                findings.append(
                    make_diagnostic(
                        "TV002",
                        path,
                        f"anchor op consumes register r{actual} but the "
                        f"plan's branch structure routes r{expected} here",
                        hint="a below/above child consuming its sibling's "
                        "mask is a polarity flip or branch swap",
                    )
                )
            if isinstance(node, ConditionNode) and isinstance(
                anchor, SplitOp
            ):
                if (
                    anchor.attribute_index != node.attribute_index
                    or anchor.split_value != node.split_value
                ):
                    findings.append(
                        make_diagnostic(
                            "TV004",
                            path,
                            f"split op tests attribute "
                            f"{anchor.attribute_index} at "
                            f"{anchor.split_value}; the plan node splits "
                            f"attribute {node.attribute_index} at "
                            f"{node.split_value}",
                        )
                    )
        return findings

    def _anchor_for(self, path: str, node: PlanNode) -> KernelOp | None:
        ops: list[KernelOp]
        if isinstance(node, ConditionNode):
            ops = list(self.splits.get(path, []))
        elif isinstance(node, SequentialNode):
            ops = list(self.enters.get(path, []))
        else:
            ops = list(self.leaf_verdicts.get(path, []))
        return ops[0] if len(ops) == 1 else None

    # -- TV003 + TV004 + TV005: sequential chains ----------------------

    def _check_chains(self) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        justified_false: set[int] = set()
        justified_true: set[int] = set()
        sequential_paths = {
            path
            for path, node in self.plan_nodes.items()
            if isinstance(node, SequentialNode)
        }
        # Step ops must belong to a known sequential node and step slot.
        known_steps: set[str] = set()
        for path, node in self.plan_nodes.items():
            if isinstance(node, SequentialNode):
                for position in range(len(node.steps)):
                    known_steps.add(step_path(path, position))
        for anchor, ops in self.steps.items():
            if anchor not in known_steps:
                findings.append(
                    make_diagnostic(
                        "TV003",
                        anchor,
                        "step op does not correspond to any plan step",
                    )
                )
            elif len(ops) > 1:
                findings.append(
                    make_diagnostic(
                        "TV003",
                        anchor,
                        f"plan step realized by {len(ops)} kernel ops",
                    )
                )
        for path in sorted(sequential_paths):
            node = self.plan_nodes[path]
            assert isinstance(node, SequentialNode)
            current = self.expected_register.get(path)
            enters = self.enters.get(path, [])
            if len(enters) == 1 and current is None:
                # Wiring above is broken (flagged there); follow the
                # program as written so chain checks stay meaningful.
                current = enters[0].reg_in
            for position, step in enumerate(node.steps):
                anchor = step_path(path, position)
                ops = self.steps.get(anchor, [])
                if len(ops) != 1:
                    if not ops:
                        findings.append(
                            make_diagnostic(
                                "TV003",
                                anchor,
                                "plan step has no kernel op: the compiled "
                                "chain skips a conjunct",
                            )
                        )
                    current = None
                    break
                op = ops[0]
                if current is not None and op.reg_in != current:
                    findings.append(
                        make_diagnostic(
                            "TV003",
                            anchor,
                            f"step op consumes register r{op.reg_in} but "
                            f"the short-circuit chain routes r{current} "
                            f"here; steps are reordered or rewired",
                        )
                    )
                if op.step_index != position:
                    findings.append(
                        make_diagnostic(
                            "TV003",
                            anchor,
                            f"step op carries step_index {op.step_index}; "
                            f"expected {position}",
                        )
                    )
                findings.extend(_check_step_params(op, step, anchor))
                justified_false.add(op.reg_fail)
                current = op.reg_pass
            if current is not None:
                justified_true.add(current)
        # Non-leaf verdicts must decide exactly what the chains justify.
        for op in self.free_verdicts:
            if op.reg in justified_false:
                if op.value:
                    findings.append(
                        make_diagnostic(
                            "TV005",
                            op.source_path,
                            "rows failing a conjunct are accepted by the "
                            "kernel; the plan rejects them",
                        )
                    )
            elif op.reg in justified_true:
                if not op.value:
                    findings.append(
                        make_diagnostic(
                            "TV005",
                            op.source_path,
                            "rows surviving every conjunct are rejected "
                            "by the kernel; the plan accepts them",
                        )
                    )
            else:
                findings.append(
                    make_diagnostic(
                        "TV005",
                        op.source_path,
                        f"verdict on register r{op.reg} is not justified "
                        f"by any plan decision point",
                    )
                )
        # Leaf verdicts must echo their plan leaf.
        for path, ops in self.leaf_verdicts.items():
            node = self.plan_nodes.get(path)
            if not isinstance(node, VerdictLeaf):
                continue  # TV001 already covers misanchored leaves
            for op in ops:
                if op.value != node.verdict:
                    findings.append(
                        make_diagnostic(
                            "TV005",
                            path,
                            f"kernel decides {op.value} where the plan "
                            f"leaf decides {node.verdict}",
                        )
                    )
        return findings

    # -- TV006: partition ----------------------------------------------

    def _check_partition(self) -> list[Diagnostic]:
        findings: list[Diagnostic] = []
        for register in sorted(self.producers):
            uses = self.terminator_uses.get(register, [])
            anchor = self.producers[register]
            if not uses:
                findings.append(
                    make_diagnostic(
                        "TV006",
                        anchor,
                        f"rows routed into register r{register} never "
                        f"receive a verdict: the kernel's decision masks "
                        f"leave a gap",
                    )
                )
            elif len(uses) > 1:
                findings.append(
                    make_diagnostic(
                        "TV006",
                        anchor,
                        f"register r{register} is decided or routed "
                        f"{len(uses)} times: the kernel's decision masks "
                        f"overlap",
                    )
                )
        return findings


def _op_predicate(
    op: StepOp, schema: Schema
) -> RangePredicate | NotRangePredicate:
    """The predicate a step op actually evaluates, rebuilt from its fields."""
    name = schema[op.attribute_index].name
    if op.negate:
        return NotRangePredicate(name, op.low, op.high)
    return RangePredicate(name, op.low, op.high)


def _check_step_params(
    op: StepOp, step: SequentialStep, anchor: str
) -> list[Diagnostic]:
    predicate = step.predicate
    attribute_index = step.attribute_index
    expected_negate = isinstance(predicate, NotRangePredicate)
    low = getattr(predicate, "low", None)
    high = getattr(predicate, "high", None)
    if low is None or high is None:
        return [
            make_diagnostic(
                "TV004",
                anchor,
                f"plan step predicate {type(predicate).__name__} is not "
                f"range-shaped; the kernel cannot have compiled it",
            )
        ]
    if (
        op.attribute_index != attribute_index
        or op.low != low
        or op.high != high
        or op.negate != expected_negate
    ):
        return [
            make_diagnostic(
                "TV004",
                anchor,
                f"step op evaluates attribute {op.attribute_index} in "
                f"[{op.low}, {op.high}] (negate={op.negate}); the plan "
                f"step evaluates attribute {attribute_index} in "
                f"[{low}, {high}] (negate={expected_negate})",
            )
        ]
    return []


# ----------------------------------------------------------------------
# Pass 3: chargedness (TV007)
# ----------------------------------------------------------------------


def _expected_charges(
    plan: PlanNode,
    schema: Schema,
    cost_model: AcquisitionCostModel | None,
) -> dict[str, tuple[int, float]]:
    """The interpreter's charge schedule: anchor path -> (attr, amount).

    Replays :func:`repro.core.cost.dataset_execution`'s path-static
    acquired-set discipline, so the kernel's charges are compared
    against exactly what the walker would bill.
    """
    expected: dict[str, tuple[int, float]] = {}

    def amount(index: int, acquired: frozenset[int]) -> float:
        if cost_model is None:
            return float(schema[index].cost)
        return float(cost_model.cost(index, acquired))

    def walk(node: PlanNode, acquired: frozenset[int], path: str) -> None:
        if isinstance(node, VerdictLeaf):
            return
        if isinstance(node, ConditionNode):
            index = node.attribute_index
            if index not in acquired:
                expected[path] = (index, amount(index, acquired))
                acquired = acquired | {index}
            walk(node.below, acquired, path + "/below")
            walk(node.above, acquired, path + "/above")
            return
        if isinstance(node, SequentialNode):
            local = set(acquired)
            for position, step in enumerate(node.steps):
                index = step.attribute_index
                if index not in local:
                    expected[step_path(path, position)] = (
                        index,
                        amount(index, frozenset(local)),
                    )
                    local.add(index)
            return

    walk(plan, frozenset(), ROOT_PATH)
    return expected


def _check_charges(
    compiled: CompiledPlan,
    plan: PlanNode,
    schema: Schema,
    cost_model: AcquisitionCostModel | None,
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    expected = _expected_charges(plan, schema, cost_model)
    # The register each charge must hit: its anchor op's input mask.
    anchor_registers: dict[str, int] = {}
    anchor_charged: dict[str, bool] = {}
    for op in compiled.ops:
        if isinstance(op, SplitOp):
            anchor_registers.setdefault(op.source_path, op.reg_in)
            anchor_charged.setdefault(op.source_path, op.charged)
        elif isinstance(op, StepOp):
            anchor_registers.setdefault(op.source_path, op.reg_in)
            anchor_charged.setdefault(op.source_path, op.charged)
    actual: dict[str, list[ChargeOp]] = {}
    for op in compiled.ops:
        if isinstance(op, ChargeOp):
            actual.setdefault(op.source_path, []).append(op)

    for path, (index, amount) in sorted(expected.items()):
        charges = actual.pop(path, [])
        if not charges:
            findings.append(
                make_diagnostic(
                    "TV007",
                    path,
                    f"the plan charges attribute {index} "
                    f"({amount:g}/tuple) here; the kernel charges nothing",
                    hint="a dropped charge under-reports Eq. 3 cost while "
                    "still reading the attribute",
                )
            )
            continue
        if len(charges) > 1:
            findings.append(
                make_diagnostic(
                    "TV007",
                    path,
                    f"the kernel charges this acquisition {len(charges)} "
                    f"times; the plan charges once",
                )
            )
        op = charges[0]
        if op.attribute_index != index:
            findings.append(
                make_diagnostic(
                    "TV007",
                    path,
                    f"kernel charges attribute {op.attribute_index}; the "
                    f"plan acquires attribute {index} here",
                )
            )
        if abs(op.amount - amount) > 1e-9 * max(1.0, abs(amount)):
            findings.append(
                make_diagnostic(
                    "TV007",
                    path,
                    f"kernel charges {op.amount:g} per tuple; the plan's "
                    f"acquisition costs {amount:g}",
                )
            )
        wanted_register = anchor_registers.get(path)
        if wanted_register is not None and op.reg != wanted_register:
            findings.append(
                make_diagnostic(
                    "TV007",
                    path,
                    f"kernel charges register r{op.reg}; the acquisition "
                    f"is billed to every visiting row (r{wanted_register})",
                    hint="charging after routing bills only one branch's "
                    "rows for a read every visitor performs",
                )
            )
    for path, charges in sorted(actual.items()):
        for op in charges:
            findings.append(
                make_diagnostic(
                    "TV007",
                    path,
                    f"kernel charges attribute {op.attribute_index} at a "
                    f"point where the plan's path already acquired it (or "
                    f"no plan node exists)",
                )
            )
    for path, charged in sorted(anchor_charged.items()):
        if charged != (path in expected):
            findings.append(
                make_diagnostic(
                    "TV007",
                    path,
                    f"op's charged flag says {charged} but the plan's "
                    f"path-static chargedness says {path in expected}",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Pass 4: Eq. 3 conservation (TV008)
# ----------------------------------------------------------------------


def _check_conservation(
    compiled: CompiledPlan,
    plan: PlanNode,
    simulation: _Simulation,
    distribution: "Distribution",
    certificate: "CostCertificate | None",
    cost_model: AcquisitionCostModel | None,
    tolerance: float,
) -> list[Diagnostic]:
    """Re-derive Eq. 3 from the IR's charge counters and check it.

    Register reach probabilities are pushed through the (already
    structurally verified) register graph: split probabilities from the
    model, sequential pass probabilities from a conditioner threaded
    along each chain — exactly the quantities
    :func:`repro.core.cost.expected_cost` uses, so a faithful kernel
    conserves the decomposition to rounding.
    """
    from repro.probability.base import SequentialConditioner

    try:
        reach: dict[int, float] = {0: 1.0}
        conditioners: dict[int, SequentialConditioner] = {}
        for op in compiled.ops:
            if isinstance(op, SplitOp):
                probability_in = reach.get(op.reg_in, 0.0)
                state = simulation.states.get(op.reg_in)
                if probability_in <= 0.0 or state is None or state.ranges is None:
                    reach[op.reg_below] = 0.0
                    reach[op.reg_above] = 0.0
                    continue
                below = distribution.split_probability(
                    op.attribute_index, op.split_value, state.ranges
                )
                reach[op.reg_below] = probability_in * below
                reach[op.reg_above] = probability_in * (1.0 - below)
            elif isinstance(op, EnterOp):
                state = simulation.states.get(op.reg_in)
                if state is not None and state.ranges is not None:
                    conditioners[op.reg_in] = (
                        distribution.sequential_conditioner(state.ranges)
                    )
            elif isinstance(op, StepOp):
                probability_in = reach.get(op.reg_in, 0.0)
                conditioner = conditioners.get(op.reg_in)
                node = simulation.plan_nodes.get(
                    _owner_of(op.source_path)
                )
                if (
                    probability_in <= 0.0
                    or conditioner is None
                    or not isinstance(node, SequentialNode)
                ):
                    reach[op.reg_pass] = 0.0
                    reach[op.reg_fail] = 0.0
                    continue
                step = node.steps[op.step_index]
                binding = (step.predicate, step.attribute_index)
                passed = conditioner.pass_probability(binding)
                conditioner.condition_on(binding)
                reach[op.reg_pass] = probability_in * passed
                reach[op.reg_fail] = probability_in * (1.0 - passed)
                conditioners[op.reg_pass] = conditioner
        kernel_cost = 0.0
        for op in compiled.ops:
            if isinstance(op, ChargeOp):
                kernel_cost += op.amount * reach.get(op.reg, 0.0)
        if certificate is not None and certificate.root_bound is not None:
            claimed = float(certificate.root_bound)
            source = "the plan's cost certificate"
        else:
            claimed = expected_cost(
                plan, distribution, cost_model=cost_model
            )
            source = "a fresh Eq. 3 recomputation"
    except ReproError:
        # A plan the Eq. 3 machinery itself rejects (unreachable splits,
        # model domain errors) is the plan verifier's finding, not a
        # translation defect — the structural TV passes stay in force.
        return []
    if abs(kernel_cost - claimed) > tolerance * max(1.0, abs(claimed)):
        return [
            make_diagnostic(
                "TV008",
                ROOT_PATH,
                f"the kernel's charge counters expect {kernel_cost:.9g} "
                f"per tuple; {source} expects {claimed:.9g}",
                hint="every acquisition the plan bills must be charged at "
                "the same reach probability in the kernel",
            )
        ]
    return []


def _owner_of(path: str) -> str:
    marker = path.rfind("/steps[")
    return path if marker < 0 else path[:marker]
