"""The typed kernel IR the compile tier lowers plan trees into.

A :class:`CompiledPlan` is a straight-line, register-based program over
boolean *row masks*: register 0 is the entry mask (every scanned row),
and each op narrows, charges, or decides a mask.  The op set mirrors
exactly what :func:`repro.core.cost.dataset_execution` does per node —
nothing more — so a compiled kernel can be proven equivalent to its
source plan node-by-node:

- :class:`SplitOp` — a :class:`~repro.core.plan.ConditionNode` routing:
  ``reg_below = reg_in & (column < split_value)`` and
  ``reg_above = reg_in & ~(column < split_value)``;
- :class:`EnterOp` — a :class:`~repro.core.plan.SequentialNode` entry
  marker (no mask work; anchors the node for validation and profiling);
- :class:`StepOp` — one sequential step:
  ``reg_pass = reg_in & predicate(column)`` and
  ``reg_fail = reg_in & ~predicate(column)`` where the predicate is the
  closed range ``[low, high]``, complemented when ``negate`` is set;
- :class:`ChargeOp` — Eq. 3 cost accumulation:
  ``costs[reg] += amount``.  Chargedness is *static*: whether a node's
  attribute was already acquired is fully determined by the
  root-to-node path, so the compiler bakes each charge (and its
  amount) into the program;
- :class:`VerdictOp` — ``verdicts[reg] = value``; ``leaf`` marks ops
  realizing an actual :class:`~repro.core.plan.VerdictLeaf` (sequential
  accept/reject verdicts carry ``leaf=False``).

Every op is annotated with ``source_path`` — the verifier node path
(:mod:`repro.verify.paths`) of the plan node it implements.  That
annotation *is* the simulation relation the translation validator
checks: it ties each register to a program point of the source plan,
where the PR 4 abstract domain supplies the facts.

``CompiledPlan.source`` optionally keeps the plan tree the kernel was
lowered from (excluded from serialization and equality); the executor
uses it to resolve nodes for :class:`~repro.core.cost.ExecutionObserver`
events so profiling works unchanged on the compiled path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Union

from repro.core.plan import PlanNode
from repro.exceptions import CompileError

__all__ = [
    "ChargeOp",
    "CompiledPlan",
    "EnterOp",
    "KernelOp",
    "SplitOp",
    "StepOp",
    "VerdictOp",
    "op_from_dict",
]


@dataclass(frozen=True)
class SplitOp:
    """Route ``reg_in`` by ``column[attribute_index] < split_value``."""

    reg_in: int
    attribute_index: int
    split_value: int
    reg_below: int
    reg_above: int
    charged: bool
    source_path: str
    kind: str = field(default="split", init=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "split",
            "reg_in": self.reg_in,
            "attribute_index": self.attribute_index,
            "split_value": self.split_value,
            "reg_below": self.reg_below,
            "reg_above": self.reg_above,
            "charged": self.charged,
            "source_path": self.source_path,
        }


@dataclass(frozen=True)
class EnterOp:
    """Anchor a sequential node's entry on ``reg_in`` (no mask work)."""

    reg_in: int
    source_path: str
    kind: str = field(default="enter", init=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "enter",
            "reg_in": self.reg_in,
            "source_path": self.source_path,
        }


@dataclass(frozen=True)
class StepOp:
    """Evaluate one sequential step's range predicate on ``reg_in``."""

    reg_in: int
    attribute_index: int
    low: int
    high: int
    negate: bool
    reg_pass: int
    reg_fail: int
    charged: bool
    step_index: int
    source_path: str
    kind: str = field(default="step", init=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "step",
            "reg_in": self.reg_in,
            "attribute_index": self.attribute_index,
            "low": self.low,
            "high": self.high,
            "negate": self.negate,
            "reg_pass": self.reg_pass,
            "reg_fail": self.reg_fail,
            "charged": self.charged,
            "step_index": self.step_index,
            "source_path": self.source_path,
        }


@dataclass(frozen=True)
class ChargeOp:
    """Accumulate ``amount`` into ``costs`` for every row in ``reg``."""

    reg: int
    attribute_index: int
    amount: float
    source_path: str
    kind: str = field(default="charge", init=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "charge",
            "reg": self.reg,
            "attribute_index": self.attribute_index,
            "amount": self.amount,
            "source_path": self.source_path,
        }


@dataclass(frozen=True)
class VerdictOp:
    """Decide every row in ``reg``: ``verdicts[reg] = value``."""

    reg: int
    value: bool
    leaf: bool
    source_path: str
    kind: str = field(default="verdict", init=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "verdict",
            "reg": self.reg,
            "value": self.value,
            "leaf": self.leaf,
            "source_path": self.source_path,
        }


KernelOp = Union[SplitOp, EnterOp, StepOp, ChargeOp, VerdictOp]

_OP_TYPES: dict[str, type] = {
    "split": SplitOp,
    "enter": EnterOp,
    "step": StepOp,
    "charge": ChargeOp,
    "verdict": VerdictOp,
}


def op_from_dict(payload: Mapping[str, Any]) -> KernelOp:
    """Reconstruct one kernel op from its :meth:`to_dict` payload."""
    kind = payload.get("kind")
    op_type = _OP_TYPES.get(str(kind))
    if op_type is None:
        raise CompileError(f"unknown kernel op kind {kind!r}")
    fields = {key: value for key, value in payload.items() if key != "kind"}
    try:
        return op_type(**fields)  # type: ignore[no-any-return]
    except TypeError as exc:
        raise CompileError(f"malformed {kind} op payload: {exc}") from exc


@dataclass(frozen=True)
class CompiledPlan:
    """A lowered plan: ops, register budget, and its statistics stamp.

    ``statistics_version`` records the engine-statistics generation the
    source plan was trained under; the translation validator's ``TV010``
    rule refuses kernels whose stamp trails the engine's current
    version (a stale-statistics kernel would faithfully execute a plan
    the cache has already invalidated).  ``source`` is a convenience
    back-reference for observer support — never serialized, ignored by
    equality, absent after :meth:`from_dict`.
    """

    ops: tuple[KernelOp, ...]
    register_count: int
    schema_width: int
    statistics_version: int = 1
    source: PlanNode | None = field(
        default=None, compare=False, repr=False
    )

    def with_ops(self, ops: tuple[KernelOp, ...]) -> "CompiledPlan":
        """A copy with a different op sequence (mutant construction)."""
        return replace(self, ops=ops)

    def to_dict(self) -> dict[str, Any]:
        return {
            "ops": [op.to_dict() for op in self.ops],
            "register_count": self.register_count,
            "schema_width": self.schema_width,
            "statistics_version": self.statistics_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CompiledPlan":
        try:
            ops = tuple(op_from_dict(entry) for entry in payload["ops"])
            return cls(
                ops=ops,
                register_count=int(payload["register_count"]),
                schema_width=int(payload["schema_width"]),
                statistics_version=int(payload.get("statistics_version", 1)),
            )
        except (KeyError, ValueError) as exc:
            raise CompileError(
                f"malformed compiled-plan payload: {exc!r}"
            ) from exc
