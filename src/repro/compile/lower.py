"""Lowering: plan trees to kernel IR.

The lowering is a single pre-order walk that mirrors
:func:`repro.core.cost.dataset_execution` op-for-op: each node charges
(when its attribute is not yet acquired on the path), then routes.
Because the acquired-so-far set is fully determined by the
root-to-node path, chargedness and charge amounts are compile-time
constants, and because ops are emitted in the walker's pre-order, every
row accumulates its charges in the same order as the interpreter —
making the compiled per-row cost vector *bit-identical*, not merely
numerically close.

Only range-shaped predicates (:class:`~repro.core.predicates.RangePredicate`
and :class:`~repro.core.predicates.NotRangePredicate`) are compilable —
they are the only predicate classes the kernel's mask ops can express.
Exotic predicate classes raise :class:`~repro.exceptions.CompileError`;
callers (the serving tier) fall back to the interpreter.

:func:`compile_plan` is the one-call front door: lower, then run the
translation validator, returning ``(compiled, report)``.  A kernel is
only admissible when ``report.ok``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compile.ir import (
    ChargeOp,
    CompiledPlan,
    EnterOp,
    KernelOp,
    SplitOp,
    StepOp,
    VerdictOp,
)
from repro.core.attributes import Schema
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    VerdictLeaf,
)
from repro.core.predicates import NotRangePredicate, RangePredicate
from repro.exceptions import CompileError
from repro.verify.paths import ROOT_PATH, step_path

if TYPE_CHECKING:
    from repro.analysis.certificates import CostCertificate
    from repro.probability.base import Distribution
    from repro.verify.diagnostics import VerificationReport

__all__ = ["compile_plan", "lower_plan"]


def lower_plan(
    plan: PlanNode,
    schema: Schema,
    statistics_version: int = 1,
    cost_model: AcquisitionCostModel | None = None,
) -> CompiledPlan:
    """Lower a plan tree into a :class:`CompiledPlan`.

    The emitted program reproduces ``dataset_execution(plan, ...)``
    exactly: same routing, same verdicts, same per-row charge sequence.
    """
    ops: list[KernelOp] = []
    next_register = 1  # register 0 is the entry mask

    def fresh() -> int:
        nonlocal next_register
        register = next_register
        next_register += 1
        return register

    def charge_amount(index: int, acquired: frozenset[int]) -> float:
        if cost_model is None:
            return float(schema[index].cost)
        return float(cost_model.cost(index, acquired))

    def walk(
        node: PlanNode, register: int, acquired: frozenset[int], path: str
    ) -> None:
        if isinstance(node, VerdictLeaf):
            ops.append(
                VerdictOp(
                    reg=register,
                    value=node.verdict,
                    leaf=True,
                    source_path=path,
                )
            )
            return
        if isinstance(node, ConditionNode):
            index = node.attribute_index
            charged = index not in acquired
            if charged:
                ops.append(
                    ChargeOp(
                        reg=register,
                        attribute_index=index,
                        amount=charge_amount(index, acquired),
                        source_path=path,
                    )
                )
                acquired = acquired | {index}
            reg_below, reg_above = fresh(), fresh()
            ops.append(
                SplitOp(
                    reg_in=register,
                    attribute_index=index,
                    split_value=node.split_value,
                    reg_below=reg_below,
                    reg_above=reg_above,
                    charged=charged,
                    source_path=path,
                )
            )
            walk(node.below, reg_below, acquired, path + "/below")
            walk(node.above, reg_above, acquired, path + "/above")
            return
        if isinstance(node, SequentialNode):
            ops.append(EnterOp(reg_in=register, source_path=path))
            alive = register
            local = set(acquired)
            for position, step in enumerate(node.steps):
                index = step.attribute_index
                anchor = step_path(path, position)
                charged = index not in local
                if charged:
                    ops.append(
                        ChargeOp(
                            reg=alive,
                            attribute_index=index,
                            amount=charge_amount(index, frozenset(local)),
                            source_path=anchor,
                        )
                    )
                    local.add(index)
                predicate = step.predicate
                if isinstance(predicate, NotRangePredicate):
                    negate = True
                elif isinstance(predicate, RangePredicate):
                    negate = False
                else:
                    raise CompileError(
                        f"step {anchor} uses predicate class "
                        f"{type(predicate).__name__}, which the kernel's "
                        f"range masks cannot express"
                    )
                reg_pass, reg_fail = fresh(), fresh()
                ops.append(
                    StepOp(
                        reg_in=alive,
                        attribute_index=index,
                        low=int(predicate.low),
                        high=int(predicate.high),
                        negate=negate,
                        reg_pass=reg_pass,
                        reg_fail=reg_fail,
                        charged=charged,
                        step_index=position,
                        source_path=anchor,
                    )
                )
                ops.append(
                    VerdictOp(
                        reg=reg_fail,
                        value=False,
                        leaf=False,
                        source_path=anchor,
                    )
                )
                alive = reg_pass
            ops.append(
                VerdictOp(reg=alive, value=True, leaf=False, source_path=path)
            )
            return
        raise CompileError(f"unknown plan node type {type(node).__name__}")

    walk(plan, 0, frozenset(), ROOT_PATH)
    return CompiledPlan(
        ops=tuple(ops),
        register_count=next_register,
        schema_width=len(schema),
        statistics_version=statistics_version,
        source=plan,
    )


def compile_plan(
    plan: PlanNode,
    schema: Schema,
    statistics_version: int = 1,
    distribution: "Distribution | None" = None,
    certificate: "CostCertificate | None" = None,
    expected_statistics_version: int | None = None,
    cost_model: AcquisitionCostModel | None = None,
) -> "tuple[CompiledPlan, VerificationReport]":
    """Lower a plan and prove the lowering: ``(compiled, TV report)``.

    The kernel is admissible only when the report is ``ok`` — callers
    that gate execution (the serving tier, the shards) fall back to the
    interpreter otherwise.
    """
    from repro.compile.validate import validate_translation

    compiled = lower_plan(
        plan,
        schema,
        statistics_version=statistics_version,
        cost_model=cost_model,
    )
    report = validate_translation(
        compiled,
        plan,
        schema,
        distribution=distribution,
        certificate=certificate,
        expected_statistics_version=expected_statistics_version,
        cost_model=cost_model,
    )
    return compiled, report
