"""A seeded miscompilation corpus that self-tests the validator.

Each :class:`MiscompilationCase` is a *correct* plan paired with a
*defective* kernel — one specific, realistic way a compiler could
miscompile it: flipped mask polarity, a reordered short-circuit chain,
a dropped cost charge, a kernel built under stale statistics, a swapped
branch, and so on.  The corpus proves the translation validator's
teeth: every case must be rejected with its ``expected_code``, and the
matching clean kernels (:func:`clean_cases`) must validate silently.

Mutants are built by transforming the output of the real lowering pass
rather than hand-writing IR, so they stay faithful to the compiler's
actual register conventions as it evolves.  The transforms locate ops
dynamically (first ``ChargeOp``, the split anchored at ``root``, ...);
none of them hard-code op positions.

This module generates no data and holds no RNG state — it is covered
by the repro-lint ``DET004`` module-level-randomness rule like the rest
of ``repro.compile``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.compile.ir import (
    ChargeOp,
    CompiledPlan,
    EnterOp,
    KernelOp,
    SplitOp,
    StepOp,
    VerdictOp,
)
from repro.compile.lower import lower_plan
from repro.compile.validate import validate_translation
from repro.core.attributes import Attribute, Schema
from repro.core.cost import expected_cost
from repro.core.plan import PlanNode
from repro.core.predicates import NotRangePredicate, RangePredicate
from repro.core.query import ConjunctiveQuery
from repro.exceptions import CompileError
from repro.verify.mutations import (
    canonical_conditional_plan,
    canonical_sequential_plan,
)
from repro.verify.paths import ROOT_PATH

if TYPE_CHECKING:
    from repro.analysis.certificates import CostCertificate
    from repro.probability.base import Distribution

__all__ = [
    "MiscompilationCase",
    "clean_cases",
    "default_corpus_query",
    "miscompilation_cases",
    "run_corpus",
]


@dataclass(frozen=True)
class MiscompilationCase:
    """One seeded compiler defect the validator must catch.

    ``expected_code`` is the ``TV*`` rule that owns the defect; the
    corpus asserts the validator's report is not-ok *and* carries that
    code (other codes may fire too — a dropped verdict also un-anchors
    its leaf, for instance).
    """

    name: str
    description: str
    expected_code: str
    plan: PlanNode
    compiled: CompiledPlan
    expected_statistics_version: int = 1
    certificate_bound: float | None = None


def default_corpus_query() -> ConjunctiveQuery:
    """A three-conjunct query with room for every mutation class."""
    schema = Schema(
        [
            Attribute("a", 8, 100.0),
            Attribute("b", 8, 60.0),
            Attribute("c", 8, 20.0),
        ]
    )
    return ConjunctiveQuery(
        schema,
        [
            RangePredicate("a", 3, 6),
            RangePredicate("b", 2, 7),
            NotRangePredicate("c", 4, 8),
        ],
    )


# ----------------------------------------------------------------------
# Op-surgery helpers (locate ops dynamically, never by position)
# ----------------------------------------------------------------------


def _first(
    ops: tuple[KernelOp, ...], match: Callable[[KernelOp], bool]
) -> tuple[int, KernelOp]:
    for position, op in enumerate(ops):
        if match(op):
            return position, op
    raise CompileError("mutation target op not found; corpus is stale")


def _replace_at(
    compiled: CompiledPlan, position: int, op: KernelOp
) -> CompiledPlan:
    ops = list(compiled.ops)
    ops[position] = op
    return compiled.with_ops(tuple(ops))


def _remove_at(compiled: CompiledPlan, position: int) -> CompiledPlan:
    ops = list(compiled.ops)
    del ops[position]
    return compiled.with_ops(tuple(ops))


def _insert_at(
    compiled: CompiledPlan, position: int, op: KernelOp
) -> CompiledPlan:
    ops = list(compiled.ops)
    ops.insert(position, op)
    return compiled.with_ops(tuple(ops))


def _remap_registers(
    ops: Iterable[KernelOp], mapping: dict[int, int]
) -> tuple[KernelOp, ...]:
    """Rewrite every register reference through ``mapping``."""

    def remap(register: int) -> int:
        return mapping.get(register, register)

    rewritten: list[KernelOp] = []
    for op in ops:
        if isinstance(op, SplitOp):
            rewritten.append(
                dataclasses.replace(
                    op,
                    reg_in=remap(op.reg_in),
                    reg_below=remap(op.reg_below),
                    reg_above=remap(op.reg_above),
                )
            )
        elif isinstance(op, StepOp):
            rewritten.append(
                dataclasses.replace(
                    op,
                    reg_in=remap(op.reg_in),
                    reg_pass=remap(op.reg_pass),
                    reg_fail=remap(op.reg_fail),
                )
            )
        elif isinstance(op, EnterOp):
            rewritten.append(dataclasses.replace(op, reg_in=remap(op.reg_in)))
        elif isinstance(op, ChargeOp):
            rewritten.append(dataclasses.replace(op, reg=remap(op.reg)))
        else:
            rewritten.append(dataclasses.replace(op, reg=remap(op.reg)))
    return tuple(rewritten)


# ----------------------------------------------------------------------
# The corpus
# ----------------------------------------------------------------------


def miscompilation_cases(
    query: ConjunctiveQuery | None = None,
    distribution: "Distribution | None" = None,
) -> list[MiscompilationCase]:
    """All seeded miscompilation classes for ``query``.

    The certificate-forgery class needs a ``distribution`` to price the
    plan; it is omitted when none is given.
    """
    if query is None:
        query = default_corpus_query()
    schema = query.schema
    conditional = canonical_conditional_plan(query)
    sequential = canonical_sequential_plan(query)
    cond_kernel = lower_plan(conditional, schema)
    seq_kernel = lower_plan(sequential, schema)
    cases: list[MiscompilationCase] = []

    def case(
        name: str,
        description: str,
        expected_code: str,
        plan: PlanNode,
        compiled: CompiledPlan,
        **extra: object,
    ) -> None:
        cases.append(
            MiscompilationCase(
                name=name,
                description=description,
                expected_code=expected_code,
                plan=plan,
                compiled=compiled,
                **extra,  # type: ignore[arg-type]
            )
        )

    # 1. wrong-mask-polarity: the split writes its below-mask into the
    # register the above-child consumes and vice versa.
    position, op = _first(cond_kernel.ops, lambda o: isinstance(o, SplitOp))
    assert isinstance(op, SplitOp)
    case(
        "wrong-mask-polarity",
        "split op's below/above output registers are swapped",
        "TV002",
        conditional,
        _replace_at(
            cond_kernel,
            position,
            dataclasses.replace(
                op, reg_below=op.reg_above, reg_above=op.reg_below
            ),
        ),
    )

    # 2. branch-swap: the split is correct but everything downstream
    # consumes the sibling's register (children compiled onto the wrong
    # sides).
    swapped_children = _remap_registers(
        cond_kernel.ops, {op.reg_below: op.reg_above, op.reg_above: op.reg_below}
    )
    restored = list(swapped_children)
    restored[position] = op  # the split itself keeps its true wiring
    case(
        "branch-swap",
        "below/above subtrees each consume the sibling branch's mask",
        "TV002",
        conditional,
        cond_kernel.with_ops(tuple(restored)),
    )

    # 3. reordered-short-circuit: steps 0 and 1 of the sequential chain
    # evaluate in the wrong order (labels kept, registers rewired).
    step_ops = [o for o in seq_kernel.ops if isinstance(o, StepOp)]
    first_step, second_step = step_ops[0], step_ops[1]
    reordered = list(seq_kernel.ops)
    i0 = reordered.index(first_step)
    i1 = reordered.index(second_step)
    reordered[i0] = dataclasses.replace(
        second_step,
        reg_in=first_step.reg_in,
        reg_pass=first_step.reg_pass,
        reg_fail=first_step.reg_fail,
    )
    reordered[i1] = dataclasses.replace(
        first_step,
        reg_in=second_step.reg_in,
        reg_pass=second_step.reg_pass,
        reg_fail=second_step.reg_fail,
    )
    case(
        "reordered-short-circuit",
        "the first two conjuncts evaluate in swapped order",
        "TV003",
        sequential,
        seq_kernel.with_ops(tuple(reordered)),
    )

    # 4. dropped-step: the chain silently skips the second conjunct —
    # its step, fail verdict, and charge all vanish; the survivors of
    # step 0 feed step 2 directly.
    dropped = [
        o
        for o in seq_kernel.ops
        if getattr(o, "source_path", "") != second_step.source_path
    ]
    remapped = _remap_registers(dropped, {second_step.reg_pass: second_step.reg_in})
    case(
        "dropped-step",
        "one conjunct is never evaluated; its rows sail through",
        "TV003",
        sequential,
        seq_kernel.with_ops(remapped),
    )

    # 5. dropped-cost-charge: the kernel reads the attribute but never
    # bills it.
    position, op = _first(cond_kernel.ops, lambda o: isinstance(o, ChargeOp))
    case(
        "dropped-cost-charge",
        "an acquisition is performed but never charged",
        "TV007",
        conditional,
        _remove_at(cond_kernel, position),
    )

    # 6. double-cost-charge: the same acquisition is billed twice.
    case(
        "double-cost-charge",
        "one acquisition charged twice",
        "TV007",
        conditional,
        _insert_at(cond_kernel, position, op),
    )

    # 7. wrong-charge-amount: billed at a different price than the
    # schema's acquisition cost.
    assert isinstance(op, ChargeOp)
    case(
        "wrong-charge-amount",
        "acquisition billed at twice the schema cost",
        "TV007",
        conditional,
        _replace_at(
            cond_kernel, position, dataclasses.replace(op, amount=op.amount * 2.0)
        ),
    )

    # 8. charge-after-route: the charge is moved below the split onto
    # one branch's register — only some visiting rows get billed.
    split_position, split_op = _first(
        cond_kernel.ops, lambda o: isinstance(o, SplitOp)
    )
    assert isinstance(split_op, SplitOp)
    moved = _remove_at(cond_kernel, position)
    case(
        "charge-after-route",
        "the charge lands after routing, billing only the below branch",
        "TV007",
        conditional,
        _insert_at(
            moved,
            split_position,  # split shifted up one after the removal
            dataclasses.replace(op, reg=split_op.reg_below),
        ),
    )

    # 9. stale-statistics: a faithful kernel stamped one statistics
    # generation behind the engine.
    case(
        "stale-statistics",
        "kernel compiled before the last statistics bump",
        "TV010",
        conditional,
        dataclasses.replace(cond_kernel, statistics_version=1),
        expected_statistics_version=2,
    )

    # 10. flipped-verdict: a leaf decides the opposite of the plan.
    position, op = _first(
        cond_kernel.ops,
        lambda o: isinstance(o, VerdictOp) and o.leaf,
    )
    assert isinstance(op, VerdictOp)
    case(
        "flipped-verdict",
        "a verdict leaf accepts what the plan rejects",
        "TV005",
        conditional,
        _replace_at(
            cond_kernel, position, dataclasses.replace(op, value=not op.value)
        ),
    )

    # 11. dropped-verdict: a leaf's rows are never decided — a gap in
    # the partition (the leaf also loses its anchor).
    case(
        "dropped-verdict",
        "one leaf's rows receive no verdict at all",
        "TV006",
        conditional,
        _remove_at(cond_kernel, position),
    )

    # 12. overlapping-verdicts: the chain-final register is decided
    # twice — each verdict individually justified, jointly a double
    # termination.
    final_position, final_op = _first(
        seq_kernel.ops,
        lambda o: isinstance(o, VerdictOp) and not o.leaf and o.value,
    )
    case(
        "overlapping-verdicts",
        "the chain-final mask is decided twice",
        "TV006",
        sequential,
        _insert_at(seq_kernel, final_position, final_op),
    )

    # 13. wrong-split-value: the split tests a different threshold than
    # the plan node.
    case(
        "wrong-split-value",
        "split threshold off by one",
        "TV004",
        conditional,
        _replace_at(
            cond_kernel,
            split_position,
            dataclasses.replace(split_op, split_value=split_op.split_value + 1),
        ),
    )

    # 14. wrong-attribute-column: the split reads the wrong column.
    other_index = (split_op.attribute_index + 1) % len(schema)
    case(
        "wrong-attribute-column",
        "split reads a different attribute's column",
        "TV004",
        conditional,
        _replace_at(
            cond_kernel,
            split_position,
            dataclasses.replace(split_op, attribute_index=other_index),
        ),
    )

    # 15. foreign-predicate-bounds: a step evaluates a widened range —
    # not the plan's predicate.
    step_position = seq_kernel.ops.index(first_step)
    case(
        "foreign-predicate-bounds",
        "step evaluates a widened range, admitting extra rows",
        "TV004",
        sequential,
        _replace_at(
            seq_kernel,
            step_position,
            dataclasses.replace(first_step, high=first_step.high + 1),
        ),
    )

    # 16. undefined-register: an op reads a register no op ever writes.
    case(
        "undefined-register",
        "verdict consumes a register outside the declared budget",
        "TV009",
        sequential,
        seq_kernel.with_ops(
            seq_kernel.ops
            + (
                VerdictOp(
                    reg=seq_kernel.register_count,
                    value=True,
                    leaf=False,
                    source_path=ROOT_PATH,
                ),
            )
        ),
    )

    # 17. missing-node-kernel: the sequential node's entry anchor is
    # gone — the plan node has no kernel realization.
    position, _enter = _first(
        seq_kernel.ops, lambda o: isinstance(o, EnterOp)
    )
    case(
        "missing-node-kernel",
        "a plan node has no anchoring kernel op",
        "TV001",
        sequential,
        _remove_at(seq_kernel, position),
    )

    # 18. fail-path-true-verdict: rows failing the first conjunct are
    # accepted.
    fail_position, fail_op = _first(
        seq_kernel.ops,
        lambda o: isinstance(o, VerdictOp) and not o.leaf and not o.value,
    )
    assert isinstance(fail_op, VerdictOp)
    case(
        "fail-path-true-verdict",
        "rows rejected by a conjunct are marked accepted",
        "TV005",
        sequential,
        _replace_at(
            seq_kernel, fail_position, dataclasses.replace(fail_op, value=True)
        ),
    )

    # 19. wrong-cost-certificate: a structurally clean kernel whose
    # claimed cost bound is forged — only the conservation pass can
    # catch it, so it needs a distribution.
    if distribution is not None:
        true_cost = expected_cost(conditional, distribution)
        case(
            "wrong-cost-certificate",
            "clean kernel checked against a forged cost certificate",
            "TV008",
            conditional,
            cond_kernel,
            certificate_bound=true_cost * 1.5 + 1.0,
        )

    return cases


def clean_cases(
    query: ConjunctiveQuery | None = None,
) -> list[tuple[str, PlanNode, CompiledPlan]]:
    """Faithful (plan, kernel) pairs that must validate silently."""
    if query is None:
        query = default_corpus_query()
    schema = query.schema
    conditional = canonical_conditional_plan(query)
    sequential = canonical_sequential_plan(query)
    return [
        ("clean-conditional", conditional, lower_plan(conditional, schema)),
        ("clean-sequential", sequential, lower_plan(sequential, schema)),
    ]


class _ForgedCertificate:
    """A certificate stub claiming an arbitrary root bound."""

    def __init__(self, bound: float) -> None:
        self._bound = bound

    @property
    def root_bound(self) -> float:
        return self._bound


def run_corpus(
    query: ConjunctiveQuery | None = None,
    distribution: "Distribution | None" = None,
) -> list[str]:
    """Run every case; return human-readable failure strings (empty = pass).

    A mutant fails when the validator misses it (report ok) or misses
    its owning rule (``expected_code`` absent).  A clean case fails on
    *any* diagnostic — the validator must not cry wolf.
    """
    if query is None:
        query = default_corpus_query()
    failures: list[str] = []
    for mutant in miscompilation_cases(query, distribution):
        certificate: "CostCertificate | None" = None
        if mutant.certificate_bound is not None:
            certificate = _ForgedCertificate(  # type: ignore[assignment]
                mutant.certificate_bound
            )
        report = validate_translation(
            mutant.compiled,
            mutant.plan,
            query.schema,
            distribution=distribution,
            certificate=certificate,
            expected_statistics_version=mutant.expected_statistics_version,
            subject=mutant.name,
        )
        if report.ok:
            failures.append(
                f"{mutant.name}: validator accepted a miscompiled kernel "
                f"({mutant.description})"
            )
        elif not report.has(mutant.expected_code):
            failures.append(
                f"{mutant.name}: expected {mutant.expected_code}, got "
                f"{sorted(report.codes())}"
            )
    for name, plan, compiled in clean_cases(query):
        report = validate_translation(
            compiled,
            plan,
            query.schema,
            distribution=distribution,
            expected_statistics_version=compiled.statistics_version,
            subject=name,
        )
        if len(report) > 0:
            failures.append(
                f"{name}: validator flagged a faithful kernel: "
                f"{sorted(report.codes())}"
            )
    return failures
