"""The translation-validated columnar compile tier.

Lowers verified plan trees into a small typed kernel IR
(:mod:`repro.compile.ir`), executes kernels columnar-batch-at-a-time
(:mod:`repro.compile.executor`), and — before any kernel may run —
*proves* it equivalent to its source plan with a static translation
validator (:mod:`repro.compile.validate`) that emits stable ``TV*``
diagnostics into the verifier's reporting model.  A seeded
miscompilation corpus (:mod:`repro.compile.mutants`) self-tests the
validator.

The module is deterministic by construction: kernels are pure functions
of (plan, schema, statistics version), no RNG state is created or
consumed anywhere in the package, and repro-lint's ``DET004`` rule
enforces that at the AST level.
"""

from repro.compile.executor import execute_compiled
from repro.compile.ir import (
    ChargeOp,
    CompiledPlan,
    EnterOp,
    KernelOp,
    SplitOp,
    StepOp,
    VerdictOp,
    op_from_dict,
)
from repro.compile.lower import compile_plan, lower_plan
from repro.compile.mutants import (
    MiscompilationCase,
    clean_cases,
    default_corpus_query,
    miscompilation_cases,
    run_corpus,
)
from repro.compile.validate import DEFAULT_TV_TOLERANCE, validate_translation

__all__ = [
    "DEFAULT_TV_TOLERANCE",
    "ChargeOp",
    "CompiledPlan",
    "EnterOp",
    "KernelOp",
    "MiscompilationCase",
    "SplitOp",
    "StepOp",
    "VerdictOp",
    "clean_cases",
    "compile_plan",
    "default_corpus_query",
    "execute_compiled",
    "lower_plan",
    "miscompilation_cases",
    "op_from_dict",
    "run_corpus",
    "validate_translation",
]
