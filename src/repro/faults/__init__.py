"""Fault-tolerant acquisition: injection, retry/degradation, chaos replay.

The package models what the executor layer otherwise assumes away — that
``acquire()`` can fail.  :mod:`repro.faults.model` declares per-attribute
failure modes, :mod:`repro.faults.injector` replays them deterministically
over any acquisition backend from a single seeded generator,
:mod:`repro.faults.policy` bounds retries and selects a degraded path, and
:mod:`repro.faults.executor` runs conditional plans to *sound* three-valued
verdicts under those policies.
"""

from repro.faults.executor import (
    FaultedDatasetExecution,
    FaultedExecutionResult,
    FaultTolerantExecutor,
)
from repro.faults.injector import FaultInjector
from repro.faults.model import FAULT_KINDS, AttributeFaults, FaultSchedule
from repro.faults.policy import NO_RETRY, DegradationMode, FaultPolicy, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "AttributeFaults",
    "FaultSchedule",
    "FaultInjector",
    "RetryPolicy",
    "NO_RETRY",
    "DegradationMode",
    "FaultPolicy",
    "FaultTolerantExecutor",
    "FaultedExecutionResult",
    "FaultedDatasetExecution",
]
