"""Deterministic fault injection over any acquisition backend.

:class:`FaultInjector` wraps an :class:`~repro.execution.acquisition.AcquisitionSource`
and replays a :class:`~repro.faults.model.FaultSchedule` against it:
failed attempts raise :class:`~repro.exceptions.AcquisitionFailure`
(*after* charging the attempt's energy — a timed-out listen is not
free), corrupting modes silently deliver a stuck or noisy value, and an
attached :class:`~repro.faults.policy.RetryPolicy` makes ``acquire``
fight through transient failures with exponentially backed-off,
budgeted retries whose charges land in the same cost ledger.

Determinism is a hard requirement (the chaos suite replays schedules in
CI): all randomness flows from the single ``rng`` argument — a
:class:`numpy.random.Generator` the caller seeds — and the injector
draws from it only for attempts on attributes with a non-zero profile,
so a given (schedule, seed, plan, data) quadruple reproduces the exact
same fault sequence.  There is no module-level randomness.

Fault *state* outlives individual tuples: stuck-at-last remembers the
last delivered value across resets, burst outages span tuples, and
retry budgets deplete over the whole run.  :meth:`rebind` swaps in the
next tuple's backend while preserving that state; :meth:`reset` clears
the per-tuple read cache and cost only.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AcquisitionError, AcquisitionFailure
from repro.execution.acquisition import AcquisitionSource
from repro.faults.model import FaultSchedule
from repro.faults.policy import RetryPolicy

__all__ = ["FaultInjector"]


class FaultInjector(AcquisitionSource):
    """A fault-injecting, retrying proxy in front of a real source.

    Parameters
    ----------
    source:
        The backend actually producing values (and defining per-read
        costs — board-aware cost models meter through unchanged).
    schedule:
        What to inject, per attribute.
    rng:
        The **single** source of randomness.  Callers seed it
        (``np.random.default_rng(seed)``) and hand it in; the injector
        never touches global numpy state.
    retry_policy:
        When given, ``acquire`` retries failed attempts up to the
        policy's bounds before letting :class:`AcquisitionFailure`
        escape; retry charges are metered separately (:attr:`retry_cost`)
        on top of the base ledger.
    """

    def __init__(
        self,
        source: AcquisitionSource,
        schedule: FaultSchedule,
        rng: np.random.Generator,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if not isinstance(rng, np.random.Generator):
            raise AcquisitionError(
                "FaultInjector requires a numpy Generator as its single "
                f"seed source, got {type(rng).__name__}"
            )
        super().__init__(source.schema)
        self._source = source
        self._schedule = schedule.validated(source.schema)
        self._rng = rng
        self._retry_policy = retry_policy
        # Per-tuple ledgers (cleared by reset/rebind).
        self._tuple_base_cost = 0.0
        self._tuple_retry_cost = 0.0
        # Run-wide fault state (survives reset/rebind).
        self._last_delivered: dict[int, int] = {}
        self._outage_remaining: dict[int, int] = {}
        self._budget_spent: dict[int, int] = {}
        # Run-wide counters.
        self._attempts = 0
        self._failures: dict[str, int] = {}
        self._corruptions: dict[str, int] = {}
        self._retries_total = 0
        self._run_base_cost = 0.0
        self._run_retry_cost = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def source(self) -> AcquisitionSource:
        return self._source

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def retry_policy(self) -> RetryPolicy | None:
        return self._retry_policy

    @property
    def base_cost(self) -> float:
        """This tuple's first-attempt charges (what a fault-free run pays)."""
        return self._tuple_base_cost

    @property
    def retry_cost(self) -> float:
        """This tuple's retry surcharges (backoff-scaled re-attempts)."""
        return self._tuple_retry_cost

    @property
    def run_base_cost(self) -> float:
        return self._run_base_cost

    @property
    def run_retry_cost(self) -> float:
        return self._run_retry_cost

    @property
    def attempts(self) -> int:
        """Read attempts over the injector's lifetime (incl. failures)."""
        return self._attempts

    @property
    def retries_total(self) -> int:
        return self._retries_total

    @property
    def acquisitions_failed(self) -> int:
        """Failed attempts over the run (each retry that fails counts)."""
        return sum(self._failures.values())

    @property
    def failures_by_kind(self) -> dict[str, int]:
        return dict(self._failures)

    @property
    def corruptions(self) -> int:
        """Silently wrong deliveries (stuck/noise that changed the value)."""
        return sum(self._corruptions.values())

    @property
    def corruptions_by_kind(self) -> dict[str, int]:
        return dict(self._corruptions)

    @property
    def observed(self) -> dict[int, int]:
        """The values actually delivered for the current tuple."""
        return dict(self._cache)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """New tuple on the same backend; fault state persists."""
        super().reset()
        self._source.reset()
        self._tuple_base_cost = 0.0
        self._tuple_retry_cost = 0.0

    def rebind(self, source: AcquisitionSource) -> None:
        """Point at the next tuple's backend; fault state persists."""
        if source.schema is not self._schema:
            raise AcquisitionError(
                "rebound source schema differs from the injector's schema"
            )
        self._source = source
        super().reset()
        self._tuple_base_cost = 0.0
        self._tuple_retry_cost = 0.0

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def acquire(self, attribute_index: int) -> int:
        """Read one attribute through the fault model, retrying per policy."""
        if not 0 <= attribute_index < len(self._schema):
            raise AcquisitionError(
                f"attribute index {attribute_index} out of range "
                f"[0, {len(self._schema) - 1}]"
            )
        cached = self._cache.get(attribute_index)
        if cached is not None:
            return cached
        retry_number = 0
        while True:
            try:
                value = self._attempt(attribute_index, retry_number)
            except AcquisitionFailure:
                if not self._may_retry(attribute_index, retry_number):
                    raise
                self._budget_spent[attribute_index] = (
                    self._budget_spent.get(attribute_index, 0) + 1
                )
                self._retries_total += 1
                retry_number += 1
                continue
            self._cache[attribute_index] = value
            return value

    def _may_retry(self, attribute_index: int, retry_number: int) -> bool:
        policy = self._retry_policy
        if policy is None or retry_number >= policy.max_retries:
            return False
        budget = policy.budget_for(attribute_index)
        if budget is None:
            return True
        return self._budget_spent.get(attribute_index, 0) < budget

    def _read(self, attribute_index: int) -> int:
        # Unused: acquire() is fully overridden, but the ABC requires it.
        return self._source.acquire(attribute_index)

    def _charge(self, attribute_index: int, retry_number: int) -> None:
        # Backends meter stateful costs (board power-ups) via _cost_of;
        # charging through it keeps rich cost models exact under faults.
        charge = self._source._cost_of(attribute_index)
        if retry_number > 0:
            assert self._retry_policy is not None
            charge *= self._retry_policy.backoff_multiplier(retry_number)
            self._tuple_retry_cost += charge
            self._run_retry_cost += charge
        else:
            self._tuple_base_cost += charge
            self._run_base_cost += charge
        self._total_cost += charge

    def _fail(self, attribute_index: int, kind: str) -> None:
        self._failures[kind] = self._failures.get(kind, 0) + 1
        raise AcquisitionFailure(kind, attribute_index)

    def _attempt(self, attribute_index: int, retry_number: int) -> int:
        """One read attempt: charge energy, then roll the fault dice."""
        self._attempts += 1
        self._charge(attribute_index, retry_number)
        profile = self._schedule.for_index(attribute_index)
        if profile is None or profile.is_zero:
            # Fault-free attribute: no draw at all, so a zero schedule is
            # byte-identical to the plain backend.
            value = self._source._read(attribute_index)
            self._last_delivered[attribute_index] = value
            return value
        remaining = self._outage_remaining.get(attribute_index, 0)
        if remaining > 0:
            self._outage_remaining[attribute_index] = remaining - 1
            self._fail(attribute_index, "outage")
        draw = float(self._rng.random())
        if draw < profile.drop_rate:
            self._fail(attribute_index, "drop")
        draw -= profile.drop_rate
        if draw < profile.timeout_rate:
            self._fail(attribute_index, "timeout")
        draw -= profile.timeout_rate
        if draw < profile.outage_rate:
            # This attempt fails and starts a burst covering the next
            # outage_length - 1 attempts as well.
            self._outage_remaining[attribute_index] = profile.outage_length - 1
            self._fail(attribute_index, "outage")
        draw -= profile.outage_rate
        true_value = self._source._read(attribute_index)
        if draw < profile.stuck_rate:
            value = self._last_delivered.get(attribute_index, true_value)
            if value != true_value:
                self._corruptions["stuck"] = (
                    self._corruptions.get("stuck", 0) + 1
                )
            # A stuck sensor keeps reporting the same value: do not
            # refresh last_delivered from the true reading.
            self._last_delivered[attribute_index] = value
            return value
        draw -= profile.stuck_rate
        if draw < profile.noise_rate:
            scale = profile.noise_scale
            delta = int(self._rng.integers(-scale, scale + 1))
            domain = self._schema[attribute_index].domain_size
            value = min(max(true_value + delta, 1), domain)
            if value != true_value:
                self._corruptions["noise"] = (
                    self._corruptions.get("noise", 0) + 1
                )
            self._last_delivered[attribute_index] = value
            return value
        self._last_delivered[attribute_index] = true_value
        return true_value
