"""Retry and degradation policies for fault-tolerant acquisition.

:class:`RetryPolicy` bounds how hard the executor fights for a reading
before giving up: up to ``max_retries`` extra attempts per read, each
retry charged at the attribute's acquisition cost scaled by an
exponential backoff factor (a longer listen window burns proportionally
more energy), with an optional per-attribute retry *budget* across the
whole run so a dead sensor cannot bleed the node dry one tuple at a
time.  Every retry charge lands in the same cost ledger Equation 3
predicts over, so retries show up in profiles and reconcile against the
plan's expected cost plus the retry surcharge.

:class:`DegradationMode` selects what the executor does once retries are
exhausted, and :class:`FaultPolicy` bundles both with the knobs the
streaming and serving layers use to treat sustained outages as a replan
trigger.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import FaultConfigError

__all__ = ["RetryPolicy", "NO_RETRY", "DegradationMode", "FaultPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, budgeted, exponentially backed-off retries.

    Parameters
    ----------
    max_retries:
        Extra attempts after a failed read, per ``acquire`` call.  Zero
        disables retrying entirely.
    backoff_base:
        Retry ``k`` (1-based) is charged ``cost * backoff_base ** (k - 1)``
        — the energy model of listening exponentially longer.  Must be
        >= 1 so the charge never undercuts a plain read.
    attribute_budgets:
        Optional per-attribute retry budgets for the whole run (dataset /
        stream), keyed by schema index.  Once an attribute's budget is
        spent, further failures on it degrade immediately.
    default_budget:
        Budget for attributes absent from ``attribute_budgets``;
        ``None`` means unbounded.
    """

    max_retries: int = 2
    backoff_base: float = 2.0
    attribute_budgets: Mapping[int, int] = field(default_factory=dict)
    default_budget: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 1.0:
            raise FaultConfigError(
                f"backoff_base must be >= 1, got {self.backoff_base}"
            )
        for index, budget in self.attribute_budgets.items():
            if budget < 0:
                raise FaultConfigError(
                    f"retry budget for attribute {index} must be >= 0, "
                    f"got {budget}"
                )
        if self.default_budget is not None and self.default_budget < 0:
            raise FaultConfigError(
                f"default_budget must be >= 0, got {self.default_budget}"
            )
        object.__setattr__(
            self, "attribute_budgets", dict(self.attribute_budgets)
        )

    def budget_for(self, attribute_index: int) -> int | None:
        """The run-wide retry budget for one attribute (None = unbounded)."""
        return self.attribute_budgets.get(attribute_index, self.default_budget)

    def backoff_multiplier(self, retry_number: int) -> float:
        """Cost multiplier for retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise FaultConfigError(
                f"retry_number is 1-based, got {retry_number}"
            )
        return float(self.backoff_base ** (retry_number - 1))


NO_RETRY = RetryPolicy(max_retries=0)


class DegradationMode(enum.Enum):
    """What the executor does when an attribute stays unavailable.

    - ``ABSTAIN`` — the tuple is withdrawn from the result set and
      reported as abstained.  Trivially sound; costs recall.
    - ``SKIP`` — skip-to-expensive-predicate: the conditional plan's
      cheap routing is abandoned for this tuple and the original query's
      predicates are evaluated directly on real values.  Sound by
      construction; abstains only when a query-essential attribute
      itself is unavailable and the verdict is not already decided.
    - ``IMPUTE`` — marginal-probability imputation: an unavailable
      *conditioning* read follows the branch the training marginal makes
      more likely.  Positive verdicts reached through an imputed branch
      are re-confirmed on real values before being emitted (see
      :attr:`FaultPolicy.confirm_positives`), which restores soundness
      at the price of extra acquisitions on the confirm path.
    """

    ABSTAIN = "abstain"
    SKIP = "skip"
    IMPUTE = "impute"


@dataclass(frozen=True)
class FaultPolicy:
    """The complete fault-handling contract for one execution context.

    ``confirm_positives`` only matters under ``IMPUTE``: when True (the
    default), a True verdict reached through an imputed branch is
    re-derived from the query's own predicates on actually-acquired
    values — the verifier's FT001 rule flags configurations that turn
    this off.  ``outage_replan_threshold`` is the fraction of recent
    tuples that hit at least one acquisition failure above which the
    streaming layer and the service treat the situation as a sustained
    outage and trigger a replan / cache invalidation; ``None`` disables
    the trigger.  ``outage_window`` is the number of recent tuples the
    fraction is measured over.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    degradation: DegradationMode = DegradationMode.ABSTAIN
    confirm_positives: bool = True
    outage_replan_threshold: float | None = None
    outage_window: int = 64

    def __post_init__(self) -> None:
        if self.outage_replan_threshold is not None and not (
            0.0 < self.outage_replan_threshold <= 1.0
        ):
            raise FaultConfigError(
                "outage_replan_threshold must lie in (0, 1], got "
                f"{self.outage_replan_threshold}"
            )
        if self.outage_window < 1:
            raise FaultConfigError(
                f"outage_window must be >= 1, got {self.outage_window}"
            )
