"""Fault-tolerant plan execution with verifier-checked degraded paths.

:class:`FaultTolerantExecutor` runs a conditional plan against a
:class:`~repro.faults.injector.FaultInjector` and keeps producing
*sound* answers when reads fail.  Retries are the injector's job; this
layer decides what happens once retries are exhausted, per the
:class:`~repro.faults.policy.DegradationMode` in force:

- **ABSTAIN** — the tuple is withdrawn and reported; verdict ``None``.
- **SKIP** — skip-to-expensive-predicate: abandon the plan's cheap
  conditioning for this tuple and evaluate the original query's
  predicates directly.  One proven-false predicate decides ``False``
  even when other reads fail; the tuple abstains only when a
  query-essential read itself stays unavailable with no predicate
  falsified.
- **IMPUTE** — an unavailable *conditioning* read follows the branch the
  training marginal makes more likely; positive verdicts reached through
  an imputed branch are re-confirmed on real values before being emitted
  (unless ``confirm_positives`` is off — which the verifier's FT001 rule
  flags as unsound).

Soundness here means: a ``True`` verdict implies the query holds on the
values the executor *actually observed*.  Silently corrupting faults
(stuck-at-last, noise) are undetectable by construction, so guarantees
are stated against delivered values, not ground truth — the chaos suite
asserts exactly this invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.attributes import Schema
from repro.core.plan import ConditionNode, PlanNode, SequentialNode, VerdictLeaf
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import AcquisitionFailure, FaultConfigError, PlanError
from repro.execution.acquisition import TupleSource
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultSchedule
from repro.faults.policy import DegradationMode, FaultPolicy
from repro.probability.base import Distribution

__all__ = [
    "FaultedExecutionResult",
    "FaultedDatasetExecution",
    "FaultTolerantExecutor",
]


@dataclass(frozen=True)
class FaultedExecutionResult:
    """Outcome of one tuple's execution under faults.

    ``verdict`` is three-valued: ``True`` (selected), ``False``
    (rejected), or ``None`` (abstained — the tuple is withdrawn from the
    result set and must be surfaced to the caller).  ``observed`` maps
    each acquired attribute to the value actually delivered, which is
    the reference frame for the soundness guarantee.
    """

    verdict: bool | None
    cost: float
    base_cost: float
    retry_cost: float
    acquired: frozenset[int]
    failed: frozenset[int]
    imputed: frozenset[int]
    degraded: bool
    observed: Mapping[int, int]

    @property
    def abstained(self) -> bool:
        return self.verdict is None

    @property
    def reads(self) -> int:
        return len(self.acquired)


@dataclass(frozen=True)
class FaultedDatasetExecution:
    """Per-row results plus run-wide fault accounting for one dataset.

    The cost ledger satisfies ``total_cost == base_cost + retry_cost``
    exactly (the conservation law the chaos suite checks), and the fault
    counters are snapshots of the single injector that served every row.
    """

    results: tuple[FaultedExecutionResult, ...]
    acquisitions_failed: int
    retries_total: int
    attempts: int
    corruptions: int
    failures_by_kind: Mapping[str, int] = field(default_factory=dict)

    @property
    def rows(self) -> int:
        return len(self.results)

    @property
    def selected(self) -> tuple[int, ...]:
        return tuple(
            i for i, r in enumerate(self.results) if r.verdict is True
        )

    @property
    def rejected(self) -> tuple[int, ...]:
        return tuple(
            i for i, r in enumerate(self.results) if r.verdict is False
        )

    @property
    def abstained(self) -> tuple[int, ...]:
        return tuple(i for i, r in enumerate(self.results) if r.abstained)

    @property
    def tuples_abstained(self) -> int:
        return sum(1 for r in self.results if r.abstained)

    @property
    def tuples_degraded(self) -> int:
        return sum(1 for r in self.results if r.degraded)

    @property
    def total_cost(self) -> float:
        return float(sum(r.cost for r in self.results))

    @property
    def base_cost(self) -> float:
        return float(sum(r.base_cost for r in self.results))

    @property
    def retry_cost(self) -> float:
        return float(sum(r.retry_cost for r in self.results))

    @property
    def ledger_gap(self) -> float:
        """The absolute Eq. 3 conservation gap: |total - (base + retry)|.

        This is *the* audited derivation — the chaos CLI and the chaos
        test matrix both call it rather than re-deriving the gap ad hoc
        (repro-lint LED002 enforces that discipline outside the fault
        modules).
        """
        return abs(self.total_cost - (self.base_cost + self.retry_cost))

    def ledger_conserved(self, tolerance: float = 1e-6) -> bool:
        """Does the two-sided ledger conserve within relative tolerance?"""
        return self.ledger_gap <= tolerance * max(1.0, self.total_cost)

    @property
    def costs(self) -> np.ndarray:
        return np.array([r.cost for r in self.results], dtype=float)


class _TupleState:
    """Mutable bookkeeping for one tuple's degraded walk."""

    __slots__ = ("failed", "imputed", "degraded")

    def __init__(self) -> None:
        self.failed: set[int] = set()
        self.imputed: set[int] = set()
        self.degraded = False


class FaultTolerantExecutor:
    """Executes plans through a fault injector with graceful degradation.

    Parameters
    ----------
    schema:
        Table schema; must match every source the executor is handed.
    policy:
        The :class:`FaultPolicy` in force; defaults to retrying twice and
        abstaining on exhaustion.
    query:
        The original query — required for ``SKIP`` (its predicates *are*
        the degraded path) and for confirming imputed positives under
        ``IMPUTE``.  The verifier's FT002 rule enforces this statically.
    distribution:
        Training distribution for ``IMPUTE``'s marginals.  Without one,
        imputation falls back to ``SKIP`` semantics at the failed read.
    """

    def __init__(
        self,
        schema: Schema,
        policy: FaultPolicy | None = None,
        query: ConjunctiveQuery | None = None,
        distribution: Distribution | None = None,
    ) -> None:
        self._schema = schema
        self._policy = policy if policy is not None else FaultPolicy()
        self._query = query
        self._distribution = distribution
        mode = self._policy.degradation
        if mode is not DegradationMode.ABSTAIN and query is None:
            raise FaultConfigError(
                f"degradation mode {mode.value!r} needs the original query "
                "to evaluate the degraded path; pass query= or use ABSTAIN"
            )
        if query is not None and query.schema is not schema:
            raise FaultConfigError("query schema differs from executor schema")

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def policy(self) -> FaultPolicy:
        return self._policy

    @property
    def query(self) -> ConjunctiveQuery | None:
        return self._query

    def injector(
        self, values: Sequence[int], schedule: FaultSchedule, rng: np.random.Generator
    ) -> FaultInjector:
        """A fault injector over one tuple with this executor's retry policy."""
        return FaultInjector(
            TupleSource(self._schema, values),
            schedule,
            rng,
            retry_policy=self._policy.retry,
        )

    def execute_source(
        self, plan: PlanNode, source: FaultInjector
    ) -> FaultedExecutionResult:
        """Run a plan on one tuple through an already-wired injector."""
        if source.schema is not self._schema:
            raise PlanError("source schema differs from executor schema")
        state = _TupleState()
        verdict = self._walk(plan, source, state)
        if (
            verdict is True
            and state.imputed
            and self._policy.confirm_positives
        ):
            # An imputed branch routed us to TRUE: re-derive the verdict
            # from the query's own predicates on real values.
            verdict = self._skip_evaluate(source, state)
        return FaultedExecutionResult(
            verdict=verdict,
            cost=source.total_cost,
            base_cost=source.base_cost,
            retry_cost=source.retry_cost,
            acquired=source.acquired_indices,
            failed=frozenset(state.failed),
            imputed=frozenset(state.imputed),
            degraded=state.degraded,
            observed=source.observed,
        )

    def run(
        self,
        plan: PlanNode,
        data: np.ndarray,
        schedule: FaultSchedule,
        rng: np.random.Generator,
    ) -> FaultedDatasetExecution:
        """Execute every row through one shared injector (faults persist).

        A single :class:`FaultInjector` serves the whole dataset so burst
        outages span rows, stuck values carry over, and retry budgets
        deplete run-wide — :meth:`FaultInjector.rebind` swaps the backing
        row between tuples.
        """
        rows = np.asarray(data)
        injector: FaultInjector | None = None
        results: list[FaultedExecutionResult] = []
        for row in rows:
            source = TupleSource(self._schema, row)
            if injector is None:
                injector = FaultInjector(
                    source, schedule, rng, retry_policy=self._policy.retry
                )
            else:
                injector.rebind(source)
            results.append(self.execute_source(plan, injector))
        if injector is None:
            return FaultedDatasetExecution(
                results=(),
                acquisitions_failed=0,
                retries_total=0,
                attempts=0,
                corruptions=0,
            )
        return FaultedDatasetExecution(
            results=tuple(results),
            acquisitions_failed=injector.acquisitions_failed,
            retries_total=injector.retries_total,
            attempts=injector.attempts,
            corruptions=injector.corruptions,
            failures_by_kind=injector.failures_by_kind,
        )

    # ------------------------------------------------------------------
    # Degraded plan walk
    # ------------------------------------------------------------------

    def _walk(
        self, node: PlanNode, source: FaultInjector, state: _TupleState
    ) -> bool | None:
        if isinstance(node, VerdictLeaf):
            return node.verdict
        if isinstance(node, SequentialNode):
            for step in node.steps:
                try:
                    value = source.acquire(step.attribute_index)
                except AcquisitionFailure:
                    return self._degrade(
                        source, state, step.attribute_index, node=None
                    )
                if not step.predicate.satisfied_by(value):
                    return False
            return True
        if isinstance(node, ConditionNode):
            try:
                value = source.acquire(node.attribute_index)
            except AcquisitionFailure:
                return self._degrade(
                    source, state, node.attribute_index, node=node
                )
            branch = node.above if value >= node.split_value else node.below
            return self._walk(branch, source, state)
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    def _degrade(
        self,
        source: FaultInjector,
        state: _TupleState,
        attribute_index: int,
        node: ConditionNode | None,
    ) -> bool | None:
        """Retries are spent; pick the degraded path for this tuple."""
        state.failed.add(attribute_index)
        state.degraded = True
        mode = self._policy.degradation
        if mode is DegradationMode.ABSTAIN:
            return None
        if (
            mode is DegradationMode.IMPUTE
            and node is not None
            and self._distribution is not None
        ):
            # Follow the branch the training marginal favours.  The
            # confirm-positives pass in execute_source keeps this sound.
            p_below = self._distribution.split_probability(
                node.attribute_index,
                node.split_value,
                RangeVector.full(self._schema),
            )
            state.imputed.add(attribute_index)
            branch = node.below if p_below >= 0.5 else node.above
            return self._walk(branch, source, state)
        # SKIP, or IMPUTE with nothing to impute from / a failed
        # predicate read: evaluate the query's own predicates directly.
        return self._skip_evaluate(source, state)

    def _skip_evaluate(
        self, source: FaultInjector, state: _TupleState
    ) -> bool | None:
        """Evaluate the original query on real values (the SKIP path).

        One falsified predicate decides ``False`` outright; otherwise any
        unreadable predicate attribute forces an abstain — never a
        fabricated ``True``.
        """
        query = self._query
        assert query is not None  # guaranteed by the constructor
        any_failed = False
        for predicate, index in zip(query.predicates, query.attribute_indices):
            try:
                value = source.acquire(index)
            except AcquisitionFailure:
                state.failed.add(index)
                any_failed = True
                continue
            if not predicate.satisfied_by(value):
                return False
        return None if any_failed else True
