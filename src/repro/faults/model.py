"""The acquisition fault model: what can go wrong with a physical read.

The paper's premise is that attributes are *acquired* from flaky physical
sources — TinyDB motes lose readings, time out, and return stuck values.
This module describes those failure modes declaratively so they can be
injected deterministically (:class:`~repro.faults.injector.FaultInjector`),
replayed from the CLI (``repro chaos``), and reasoned about by tests.

Per attribute, five failure modes are modelled:

- **drop** — the reading is lost in transit; the attempt fails.
- **timeout** — the sensor never answers; the attempt fails.
- **outage** — a burst failure: once an outage starts, every attempt on
  the attribute fails for the next ``outage_length`` attempts (spanning
  tuples), modelling a dead sensor board or a partitioned node.
- **stuck** — the read "succeeds" but returns the last value the sensor
  ever delivered (stuck-at-last), silently corrupting the tuple.
- **noise** — the read succeeds but the value is perturbed by a bounded
  integer offset, clamped to the attribute's domain.

Rates are per-attempt probabilities and must sum to at most 1 for one
attribute.  A schedule with every rate zero is exactly the fault-free
backend — the property tests rely on that identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterator, Mapping

from repro.core.attributes import Schema
from repro.exceptions import FaultConfigError

__all__ = ["FAULT_KINDS", "AttributeFaults", "FaultSchedule"]

# The failure-mode vocabulary; injector counters are keyed by these names.
FAULT_KINDS = ("drop", "timeout", "outage", "stuck", "noise")

_RATE_FIELDS = ("drop_rate", "timeout_rate", "outage_rate", "stuck_rate", "noise_rate")


@dataclass(frozen=True)
class AttributeFaults:
    """Per-attribute failure-mode rates.

    ``outage_rate`` is the probability an attempt *starts* a burst outage
    of ``outage_length`` attempts; ``noise_scale`` bounds the absolute
    integer perturbation a noisy read applies.
    """

    drop_rate: float = 0.0
    timeout_rate: float = 0.0
    outage_rate: float = 0.0
    stuck_rate: float = 0.0
    noise_rate: float = 0.0
    outage_length: int = 4
    noise_scale: int = 1

    def __post_init__(self) -> None:
        total = 0.0
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultConfigError(
                    f"{name} must lie in [0, 1], got {rate}"
                )
            total += rate
        if total > 1.0 + 1e-12:
            raise FaultConfigError(
                f"fault rates must sum to <= 1 per attribute, got {total}"
            )
        if self.outage_length < 1:
            raise FaultConfigError(
                f"outage_length must be >= 1, got {self.outage_length}"
            )
        if self.noise_scale < 1:
            raise FaultConfigError(
                f"noise_scale must be >= 1, got {self.noise_scale}"
            )

    @property
    def failure_rate(self) -> float:
        """Probability an attempt produces *no* value (drop/timeout/outage)."""
        return self.drop_rate + self.timeout_rate + self.outage_rate

    @property
    def is_zero(self) -> bool:
        """True when this profile injects nothing at all."""
        return all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)

    def as_dict(self) -> dict[str, Any]:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != f.default
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AttributeFaults":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultConfigError(
                f"unknown fault fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(payload))


@dataclass(frozen=True)
class FaultSchedule:
    """A complete fault configuration: one profile per faulty attribute.

    Attributes absent from ``profiles`` are fault-free.  The schedule
    carries *no* randomness of its own — determinism flows from the single
    ``rng`` argument handed to :class:`~repro.faults.injector.FaultInjector`,
    so the same (schedule, seed, plan, data) quadruple replays the exact
    same fault sequence in CI and in ``repro chaos --seed``.
    """

    profiles: Mapping[int, AttributeFaults] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index in self.profiles:
            if not isinstance(index, int) or index < 0:
                raise FaultConfigError(
                    f"fault schedule keys must be attribute indices >= 0, "
                    f"got {index!r}"
                )
        object.__setattr__(self, "profiles", dict(self.profiles))

    def __iter__(self) -> Iterator[int]:
        return iter(self.profiles)

    def for_index(self, attribute_index: int) -> AttributeFaults | None:
        """The profile injected on ``attribute_index`` (None = fault-free)."""
        return self.profiles.get(attribute_index)

    @property
    def is_zero(self) -> bool:
        """True when no attribute injects anything (the identity schedule)."""
        return all(profile.is_zero for profile in self.profiles.values())

    def validated(self, schema: Schema) -> "FaultSchedule":
        """This schedule, after checking every index fits ``schema``."""
        for index in self.profiles:
            if index >= len(schema):
                raise FaultConfigError(
                    f"fault schedule names attribute index {index}, but the "
                    f"schema has only {len(schema)} attributes"
                )
        return self

    @classmethod
    def zero(cls) -> "FaultSchedule":
        """The identity schedule: inject nothing anywhere."""
        return cls(profiles={})

    @classmethod
    def uniform(cls, schema: Schema, **rates: float | int) -> "FaultSchedule":
        """One identical profile on every attribute of ``schema``."""
        profile = AttributeFaults(**rates)  # type: ignore[arg-type]
        return cls(profiles={index: profile for index in range(len(schema))})

    def to_dict(self, schema: Schema) -> dict[str, Any]:
        """JSON-friendly form keyed by attribute *name* (the CLI format)."""
        self.validated(schema)
        return {
            "faults": {
                schema[index].name: profile.as_dict()
                for index, profile in sorted(self.profiles.items())
            }
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], schema: Schema
    ) -> "FaultSchedule":
        """Parse the ``repro chaos --schedule`` JSON format."""
        entries = payload.get("faults")
        if not isinstance(entries, Mapping):
            raise FaultConfigError(
                'fault schedule JSON must carry a "faults" object keyed by '
                "attribute name"
            )
        profiles: dict[int, AttributeFaults] = {}
        for name, spec in entries.items():
            if name not in schema:
                raise FaultConfigError(
                    f"fault schedule names unknown attribute {name!r}"
                )
            profiles[schema.index_of(name)] = AttributeFaults.from_dict(spec)
        return cls(profiles=profiles)
