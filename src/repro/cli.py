"""Command-line interface for the acquisitional query planner.

Mirrors the basestation workflow of the paper's architecture
(Section 2.5) as shell commands:

    repro generate lab --rows 50000 --out-dir ./trace
    repro plan    --schema trace/schema.json --trace trace/train.csv \
                  --query "SELECT * WHERE light >= 9 AND temp <= 5" \
                  --planner heuristic --max-splits 5 --out plan.json
    repro explain --schema trace/schema.json --trace trace/train.csv \
                  --query "SELECT * WHERE light >= 9 AND temp <= 5"
    repro execute --schema trace/schema.json --plan plan.json \
                  --trace trace/test.csv
    repro compare --schema trace/schema.json --trace trace/train.csv \
                  --test trace/test.csv --query "SELECT * WHERE ..."
    repro serve-bench --schema trace/schema.json --trace trace/train.csv \
                  --live trace/test.csv --shapes 20 --requests 400
    repro serve-sharded --schema trace/schema.json --trace trace/train.csv \
                  --workers 4 --trace-out traced.jsonl --slo-out slo.json \
                  --out report.json
    repro obs-report --trace traced.jsonl --report report.json --json
    repro cache-stats --schema trace/schema.json --trace trace/train.csv \
                  --query "SELECT * WHERE ..." --repeat 25
    repro lint-plan --schema trace/schema.json --plan plan.json \
                  --trace trace/train.csv --query "SELECT * WHERE ..."
    repro lint-plan --suite
    repro lint-code src/repro/service/service.py --json
    repro lint-code --suite --out lint-code.json
    repro analyze --schema trace/schema.json --plan plan.json \
                  --query "SELECT * WHERE ..."
    repro analyze --schema trace/schema.json --plan plan.json --fix \
                  --out plan.min.json
    repro analyze --suite
    repro profile --schema trace/schema.json --trace trace/train.csv \
                  --test trace/test.csv --query "SELECT * WHERE ..."
    repro metrics --schema trace/schema.json --trace trace/train.csv \
                  --query "SELECT * WHERE ..." --repeat 25 --format prometheus
    repro chaos   --schema trace/schema.json --plan plan.json \
                  --trace trace/test.csv --query "SELECT * WHERE ..." \
                  --schedule faults.json --seed 7 --degradation skip
    repro compile --schema trace/schema.json --plan plan.json \
                  --trace trace/train.csv --out plan.kernel.json
    repro compile --suite

Every command reads/writes the JSON/CSV formats of
:mod:`repro.data.trace_io`, so artifacts interoperate with the library
API and external tooling.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.analysis import (
    analyze_plan,
    certificate_mutations,
    certify_plan,
    check_certificate,
    check_dataflow,
    dataflow_mutations,
    optimize_plan,
    render_analysis,
)
from repro.core.analysis import annotate_plan, plan_summary
from repro.core.attributes import Attribute, Schema
from repro.core.cost import dataset_execution
from repro.data.garden import generate_garden_dataset
from repro.data.lab import generate_lab_dataset
from repro.data.split import time_split
from repro.data.synthetic import generate_synthetic_dataset
from repro.data.trace_io import (
    load_plan,
    load_schema,
    load_trace,
    save_plan,
    save_schema,
    save_trace,
)
from repro.data.workload import (
    garden_queries,
    lab_queries,
    query_text,
    random_range_query,
    zipf_draws,
)
from repro.engine.engine import AcquisitionalEngine
from repro.engine.language import parse_query
from repro.exceptions import ReproError
from repro.faults import (
    DegradationMode,
    FaultPolicy,
    FaultSchedule,
    FaultTolerantExecutor,
    RetryPolicy,
)
from repro.lint import lint_paths, lint_repo, run_corpus
from repro.obs import (
    DEFAULT_DRIFT_THRESHOLD,
    SEGMENTS,
    DriftMonitor,
    PlanProfile,
    Tracer,
    assemble_traces,
    critical_paths,
    latency_decomposition,
    profile_report_dict,
    reconcile_costs,
    render_profile_report,
    render_prometheus,
    trace_summary,
)
from repro.planning.corrseq import CorrSeqPlanner
from repro.planning.exhaustive import ExhaustivePlanner
from repro.planning.greedy_conditional import GreedyConditionalPlanner
from repro.planning.greedy_sequential import GreedySequentialPlanner
from repro.planning.naive import NaivePlanner
from repro.planning.optimal_sequential import OptimalSequentialPlanner
from repro.planning.split_points import SplitPointPolicy
from repro.core.predicates import RangePredicate
from repro.core.query import ConjunctiveQuery
from repro.probability.empirical import EmpiricalDistribution
from repro.service.service import AcquisitionalService
from repro.verify import (
    VerificationReport,
    iter_plan_paths,
    verify_bytecode,
    verify_plan,
)
from repro.verify.mutations import (
    canonical_conditional_plan,
    canonical_sequential_plan,
)

__all__ = ["main", "build_parser"]

logger = logging.getLogger("repro.cli")

PLANNER_CHOICES = ("naive", "greedy-seq", "opt-seq", "corr-seq", "heuristic", "exhaustive")
LOG_LEVELS = ("debug", "info", "warning", "error")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conditional query plans for acquisitional query processing",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="warning",
        help="stderr logging verbosity (default: warning)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a dataset (schema JSON + train/test CSV)"
    )
    generate.add_argument(
        "dataset", choices=("lab", "garden", "synthetic"), help="generator"
    )
    generate.add_argument("--rows", type=int, default=20_000)
    generate.add_argument("--motes", type=int, default=None)
    generate.add_argument("--gamma", type=int, default=3, help="synthetic only")
    generate.add_argument(
        "--selectivity", type=float, default=0.5, help="synthetic only"
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--train-fraction", type=float, default=0.5)
    generate.add_argument("--out-dir", type=Path, required=True)

    def add_common(sub, with_trace=True):
        sub.add_argument("--schema", type=Path, required=True)
        if with_trace:
            sub.add_argument(
                "--trace", type=Path, required=True, help="training trace CSV"
            )

    plan = commands.add_parser("plan", help="plan a query and save the plan")
    add_common(plan)
    plan.add_argument("--query", required=True, help="SELECT ... WHERE ...")
    plan.add_argument("--planner", choices=PLANNER_CHOICES, default="heuristic")
    plan.add_argument("--max-splits", type=int, default=5)
    plan.add_argument("--spsf", type=float, default=None)
    plan.add_argument("--smoothing", type=float, default=0.0)
    plan.add_argument("--out", type=Path, default=None, help="plan JSON path")

    explain = commands.add_parser(
        "explain", help="print an annotated plan for a query"
    )
    add_common(explain)
    explain.add_argument("--query", required=True)
    explain.add_argument("--planner", choices=PLANNER_CHOICES, default="heuristic")
    explain.add_argument("--max-splits", type=int, default=5)
    explain.add_argument("--spsf", type=float, default=None)
    explain.add_argument("--smoothing", type=float, default=0.0)

    execute = commands.add_parser(
        "execute", help="run a saved plan over a trace and report costs"
    )
    execute.add_argument("--schema", type=Path, required=True)
    execute.add_argument("--plan", type=Path, required=True)
    execute.add_argument("--trace", type=Path, required=True)

    compare = commands.add_parser(
        "compare", help="plan with every algorithm and compare test costs"
    )
    add_common(compare)
    compare.add_argument("--test", type=Path, required=True, help="test trace CSV")
    compare.add_argument("--query", required=True)
    compare.add_argument("--max-splits", type=int, default=5)
    compare.add_argument("--smoothing", type=float, default=0.0)
    compare.add_argument(
        "--include-exhaustive",
        action="store_true",
        help="also run the exponential optimal planner (small inputs only)",
    )

    serve_bench = commands.add_parser(
        "serve-bench",
        help="throughput of the serving layer on a Zipf workload, cache on vs off",
    )
    add_common(serve_bench)
    serve_bench.add_argument(
        "--live", type=Path, default=None, help="live trace CSV (default: --trace)"
    )
    serve_bench.add_argument("--shapes", type=int, default=20)
    serve_bench.add_argument("--requests", type=int, default=400)
    serve_bench.add_argument("--zipf", type=float, default=1.1)
    serve_bench.add_argument("--rows-per-request", type=int, default=64)
    serve_bench.add_argument("--batch-size", type=int, default=1)
    serve_bench.add_argument("--capacity", type=int, default=64)
    serve_bench.add_argument("--policy", choices=("lru", "lfu"), default="lfu")
    serve_bench.add_argument("--smoothing", type=float, default=0.0)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument(
        "--exec-backend",
        choices=("interp", "compiled"),
        default="interp",
        help="execution backend: the tree-walking interpreter or the "
        "translation-validated columnar compile tier (TV-rejected plans "
        "fall back to the interpreter)",
    )
    serve_bench.add_argument("--out", type=Path, default=None, help="JSON report path")
    serve_bench.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the cache-on service's metrics snapshot (JSON with an "
        "embedded Prometheus text rendering)",
    )
    serve_bench.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="stream JSON-lines trace events from the cache-on service",
    )

    cache_stats = commands.add_parser(
        "cache-stats",
        help="run statements through the serving layer and print service.stats()",
    )
    add_common(cache_stats)
    cache_stats.add_argument(
        "--query",
        action="append",
        required=True,
        help="statement to serve (repeatable)",
    )
    cache_stats.add_argument("--repeat", type=int, default=10)
    cache_stats.add_argument(
        "--live", type=Path, default=None, help="live trace CSV (default: --trace)"
    )
    cache_stats.add_argument("--capacity", type=int, default=64)
    cache_stats.add_argument("--policy", choices=("lru", "lfu"), default="lru")
    cache_stats.add_argument("--smoothing", type=float, default=0.0)

    serve_sharded = commands.add_parser(
        "serve-sharded",
        help="drive a Zipf workload through the sharded async serving tier",
    )
    add_common(serve_sharded)
    serve_sharded.add_argument(
        "--live", type=Path, default=None, help="live trace CSV (default: --trace)"
    )
    serve_sharded.add_argument("--workers", type=int, default=4)
    serve_sharded.add_argument("--shapes", type=int, default=24)
    serve_sharded.add_argument("--requests", type=int, default=400)
    serve_sharded.add_argument("--zipf", type=float, default=1.1)
    serve_sharded.add_argument("--rows-per-request", type=int, default=48)
    serve_sharded.add_argument(
        "--concurrency",
        type=int,
        default=64,
        help="requests submitted per concurrent wave",
    )
    serve_sharded.add_argument(
        "--backend", choices=("process", "inproc"), default="process"
    )
    serve_sharded.add_argument(
        "--shed-mode", choices=("abstain", "skip"), default="abstain"
    )
    serve_sharded.add_argument("--soft-limit", type=int, default=256)
    serve_sharded.add_argument("--hard-limit", type=int, default=1024)
    serve_sharded.add_argument(
        "--no-coalescing",
        action="store_true",
        help="dispatch every request individually (baseline mode)",
    )
    serve_sharded.add_argument(
        "--induce-outage",
        type=int,
        default=None,
        metavar="SHARD",
        help="kill this shard halfway through the workload",
    )
    serve_sharded.add_argument(
        "--outage-mode",
        choices=("skip", "abstain"),
        default="skip",
        help="re-route (skip) or shed (abstain) a dead shard's requests",
    )
    serve_sharded.add_argument("--capacity", type=int, default=256)
    serve_sharded.add_argument("--policy", choices=("lru", "lfu"), default="lfu")
    serve_sharded.add_argument("--smoothing", type=float, default=0.0)
    serve_sharded.add_argument("--seed", type=int, default=0)
    serve_sharded.add_argument(
        "--exec-backend",
        choices=("interp", "compiled"),
        default="interp",
        help="per-shard execution backend: the tree-walking interpreter "
        "or the translation-validated columnar compile tier",
    )
    serve_sharded.add_argument("--out", type=Path, default=None, help="JSON report path")
    serve_sharded.add_argument(
        "--prometheus-out",
        type=Path,
        default=None,
        help="write the merged shard-labeled Prometheus exposition",
    )
    serve_sharded.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="enable distributed tracing and stream the merged JSON-lines "
        "trace (front-door events plus shard spans piggybacked on replies)",
    )
    serve_sharded.add_argument(
        "--slo-out",
        type=Path,
        default=None,
        help="write the front door's SLO snapshot (burn rates, budgets) "
        "as JSON",
    )
    serve_sharded.add_argument(
        "--slo-latency-ms",
        type=float,
        default=250.0,
        help="latency SLO target in milliseconds (default: 250)",
    )

    shard_stats = commands.add_parser(
        "shard-stats",
        help="boot a sharded cluster, serve statements, print cluster stats JSON",
    )
    add_common(shard_stats)
    shard_stats.add_argument(
        "--query",
        action="append",
        required=True,
        help="statement to serve (repeatable)",
    )
    shard_stats.add_argument("--repeat", type=int, default=10)
    shard_stats.add_argument(
        "--live", type=Path, default=None, help="live trace CSV (default: --trace)"
    )
    shard_stats.add_argument("--workers", type=int, default=2)
    shard_stats.add_argument("--rows-per-request", type=int, default=48)
    shard_stats.add_argument(
        "--backend", choices=("process", "inproc"), default="inproc"
    )
    shard_stats.add_argument("--capacity", type=int, default=256)
    shard_stats.add_argument("--policy", choices=("lru", "lfu"), default="lfu")
    shard_stats.add_argument("--smoothing", type=float, default=0.0)

    obs_report = commands.add_parser(
        "obs-report",
        help="analyze a merged distributed trace: waterfalls, critical "
        "paths, SLO state, and the trace-vs-ledger Eq. 3 reconciliation",
        description="Assemble span trees from a JSON-lines trace file "
        "(as written by serve-sharded --trace-out), decompose tail "
        "latency into route/queue/coalesce/execute segments, rank the "
        "slowest critical paths, and — given the serve-sharded JSON "
        "report — check that span-attributed acquisition cost "
        "reconciles with each shard's Eq. 3 ledger.  Exit status: 0 "
        "when every trace is a complete single-root tree and the "
        "ledgers reconcile, 1 on incomplete trees or reconciliation "
        "drift, 2 on usage errors.",
    )
    obs_report.add_argument(
        "--trace",
        type=Path,
        required=True,
        help="JSON-lines trace file (serve-sharded --trace-out)",
    )
    obs_report.add_argument(
        "--report",
        type=Path,
        default=None,
        help="serve-sharded JSON report (--out) to reconcile against",
    )
    obs_report.add_argument(
        "--top", type=int, default=5, help="critical paths to rank"
    )
    obs_report.add_argument(
        "--percentile",
        type=float,
        default=95.0,
        help="tail percentile for the latency decomposition",
    )
    obs_report.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the full report as JSON instead of text",
    )
    obs_report.add_argument(
        "--out", type=Path, default=None, help="also write the JSON report here"
    )

    lint = commands.add_parser(
        "lint-plan",
        help="statically verify a plan file, a bytecode file, or every "
        "planner x dataset combination (--suite)",
        description="Statically verify a plan against the full rule catalog "
        "(STR/SEM/RNG/COST/DF/BC codes).  Exit status: 0 when no ERROR-level "
        "diagnostic fires (warnings do not fail), 1 on any ERROR, 2 on usage "
        "or I/O errors.  `repro analyze` shares these exit-code semantics.  "
        "Honours the global --log-level flag.",
    )
    lint.add_argument("--schema", type=Path, default=None)
    lint.add_argument("--plan", type=Path, default=None, help="plan JSON to lint")
    lint.add_argument(
        "--bytecode", type=Path, default=None, help="compiled plan file to lint"
    )
    lint.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="training trace CSV; enables the Eq. 3 cost-conservation rules",
    )
    lint.add_argument(
        "--query",
        default=None,
        help="statement the plan should answer; enables the semantic rules",
    )
    lint.add_argument("--smoothing", type=float, default=0.0)
    lint.add_argument(
        "--suite",
        action="store_true",
        help="lint the plans of all five planners on Garden, Lab, and "
        "synthetic workloads; exit 1 on any ERROR diagnostic",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON report output"
    )

    analyze = commands.add_parser(
        "analyze",
        help="dataflow-analyze a plan: per-node abstract states, DF* "
        "diagnostics, --fix rewriting, or the CI suite (--suite)",
        description="Run the interval-domain abstract interpretation over a "
        "plan and report the DF* dataflow diagnostics (dead branches, "
        "decided predicates, redundant re-acquisitions, infeasible splits) "
        "alongside a tree rendering of each node's abstract state.  "
        "--fix rewrites the plan with the analysis-driven optimizer (dead-"
        "branch elimination and predicate subsumption; the result is "
        "re-verified before it is written).  --suite analyzes every "
        "planner x dataset combination, checks planner cost certificates "
        "(DF101), and runs the DF mutation corpus.  Exit status matches "
        "`repro lint-plan`: 0 when no ERROR-level diagnostic fires "
        "(warnings do not fail), 1 on any ERROR, 2 on usage or I/O errors.  "
        "Honours the global --log-level flag.",
    )
    analyze.add_argument("--schema", type=Path, default=None)
    analyze.add_argument(
        "--plan", type=Path, default=None, help="plan JSON to analyze"
    )
    analyze.add_argument(
        "--query",
        default=None,
        help="statement the plan should answer; enables query-truth facts "
        "and query-aware --fix subsumption",
    )
    analyze.add_argument(
        "--fix",
        action="store_true",
        help="rewrite the plan with optimize_plan and write it back "
        "(to --out, or over --plan)",
    )
    analyze.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where --fix writes the optimized plan (default: --plan)",
    )
    analyze.add_argument(
        "--suite",
        action="store_true",
        help="analyze the plans of all five planners on Garden, Lab, and "
        "synthetic workloads, verify cost certificates, and self-test the "
        "DF rules on the mutation corpus; exit 1 on any ERROR diagnostic",
    )
    analyze.add_argument(
        "--smoothing", type=float, default=0.0, help="suite distribution smoothing"
    )
    analyze.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON report output"
    )

    lint_code = commands.add_parser(
        "lint-code",
        help="run the repro-lint static analyzer over source files or the "
        "whole package plus its violation corpus (--suite)",
        description="Run the domain-aware static analyzer (DET/RC/ASY/LED "
        "rule families; see docs/LINTING.md) over the given source files, "
        "or with --suite first self-test every rule on the seeded "
        "violation corpus and then scan the whole repro package.  Exit "
        "status matches `repro lint-plan`/`repro analyze`: 0 when no "
        "ERROR-level finding fires (warnings do not fail), 1 on any ERROR "
        "or corpus failure, 2 on usage or I/O errors.  Honours the global "
        "--log-level flag.",
    )
    lint_code.add_argument(
        "paths",
        type=Path,
        nargs="*",
        help="Python source files to lint (omit with --suite)",
    )
    lint_code.add_argument(
        "--suite",
        action="store_true",
        help="self-test every rule on the violation corpus, then lint "
        "every module of the repro package; exit 1 on any ERROR finding "
        "or corpus failure",
    )
    lint_code.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package root for --suite's repo scan and for deriving "
        "module names (default: the installed repro source tree)",
    )
    lint_code.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON report output"
    )
    lint_code.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the JSON report to this file (the CI artifact)",
    )

    profile = commands.add_parser(
        "profile",
        help="plan a query, execute it with per-node profiling, and print an "
        "EXPLAIN-ANALYZE-style tree of predicted vs observed behaviour",
    )
    add_common(profile)
    profile.add_argument(
        "--test", type=Path, default=None, help="execution trace CSV (default: --trace)"
    )
    profile.add_argument("--query", required=True, help="SELECT ... WHERE ...")
    profile.add_argument("--planner", choices=PLANNER_CHOICES, default="heuristic")
    profile.add_argument("--max-splits", type=int, default=5)
    profile.add_argument("--spsf", type=float, default=None)
    profile.add_argument("--smoothing", type=float, default=0.0)
    profile.add_argument(
        "--drift-threshold",
        type=float,
        default=DEFAULT_DRIFT_THRESHOLD,
        help="normalized chi-square score above which the plan is flagged "
        f"as drifted (default: {DEFAULT_DRIFT_THRESHOLD:g})",
    )
    profile.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON report output"
    )
    profile.add_argument(
        "--out", type=Path, default=None, help="also write the report to a file"
    )

    metrics = commands.add_parser(
        "metrics",
        help="serve statements through the serving layer and print its "
        "metrics snapshot (JSON or Prometheus text exposition)",
    )
    add_common(metrics)
    metrics.add_argument(
        "--query",
        action="append",
        required=True,
        help="statement to serve (repeatable)",
    )
    metrics.add_argument("--repeat", type=int, default=10)
    metrics.add_argument(
        "--live", type=Path, default=None, help="live trace CSV (default: --trace)"
    )
    metrics.add_argument(
        "--format", choices=("json", "prometheus"), default="prometheus"
    )
    metrics.add_argument("--capacity", type=int, default=64)
    metrics.add_argument("--policy", choices=("lru", "lfu"), default="lru")
    metrics.add_argument("--smoothing", type=float, default=0.0)
    metrics.add_argument(
        "--profiling",
        action="store_true",
        help="enable per-plan execution profiling in the service",
    )

    chaos = commands.add_parser(
        "chaos",
        help="replay a fault schedule against a saved plan and audit "
        "soundness plus the retry cost ledger",
        description="Run a saved plan over a trace through the seeded "
        "fault injector, degrade failed acquisitions per --degradation, "
        "and audit the outcome: every selected tuple must satisfy the "
        "query on its observed (delivered) values, and the cost ledger "
        "must reconcile (total == base + retry).  The replay is "
        "deterministic for a fixed --seed.  Exit status: 0 when the "
        "audit passes, 1 when a selected tuple is unsound or the ledger "
        "drifts, 2 on usage or I/O errors.",
    )
    chaos.add_argument("--schema", type=Path, required=True)
    chaos.add_argument("--plan", type=Path, required=True)
    chaos.add_argument("--trace", type=Path, required=True, help="replay trace CSV")
    chaos.add_argument(
        "--schedule",
        type=Path,
        required=True,
        help="fault schedule JSON "
        '({"faults": {"<attr>": {"drop_rate": 0.2, ...}}})',
    )
    chaos.add_argument(
        "--query",
        default=None,
        help="statement the plan answers; required for skip/impute "
        "degradation, enables the soundness audit",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--degradation", choices=("abstain", "skip", "impute"), default="abstain"
    )
    chaos.add_argument("--max-retries", type=int, default=2)
    chaos.add_argument("--backoff-base", type=float, default=2.0)
    chaos.add_argument(
        "--train",
        type=Path,
        default=None,
        help="training trace CSV; fits the distribution consulted by "
        "impute degradation (skip semantics without it)",
    )
    chaos.add_argument("--smoothing", type=float, default=0.0)
    chaos.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON report output"
    )

    compile_cmd = commands.add_parser(
        "compile",
        help="lower a plan into the columnar kernel IR and prove the "
        "translation, or run the compile-tier CI suite (--suite)",
        description="Lower a plan file into the typed kernel IR and run "
        "the translation validator (TV001-TV010; see docs/COMPILER.md).  "
        "With --trace, the TV008 Eq. 3 conservation check runs against a "
        "distribution fitted to the trace.  --out writes the kernel IR "
        "as JSON (only when the proof succeeds).  --suite first "
        "self-tests the validator on the seeded miscompilation corpus "
        "(every mutant class must be caught, every clean kernel must "
        "pass silently), then lowers and proves every planner x dataset "
        "plan.  Exit status matches `repro lint-plan`: 0 when the "
        "translation is proven (no ERROR-level TV diagnostic), 1 on any "
        "ERROR or corpus failure, 2 on usage or I/O errors.",
    )
    compile_cmd.add_argument("--schema", type=Path, default=None)
    compile_cmd.add_argument(
        "--plan", type=Path, default=None, help="plan JSON to compile"
    )
    compile_cmd.add_argument(
        "--trace",
        type=Path,
        default=None,
        help="training trace CSV; enables the TV008 Eq. 3 conservation "
        "check",
    )
    compile_cmd.add_argument("--smoothing", type=float, default=0.0)
    compile_cmd.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the proven kernel IR as JSON (with --suite: the "
        "suite report)",
    )
    compile_cmd.add_argument(
        "--suite",
        action="store_true",
        help="run the miscompilation corpus self-test, then lower and "
        "prove every planner x dataset plan; exit 1 on any failure",
    )
    compile_cmd.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON report output"
    )

    learn_bench = commands.add_parser(
        "learn-bench",
        help="run the learned-planner benchmark: bandit vs oracle, "
        "never-replan, and chi-square-refit baselines",
        description="Generate the adversarial drifting stream (the "
        "optimal predicate order flips every segment), run the oracle / "
        "never-replan / chi-square-refit / bandit strategies over it, "
        "and report totals, cumulative-regret curves, the regret "
        "ledger, and the PR's hard gates (bandit beats both non-oracle "
        "baselines, ledger conserved, exploration within budget, LRN "
        "provenance verified).  Exit status: 0 when every gate passes, "
        "1 otherwise, 2 on usage errors.",
    )
    learn_bench.add_argument(
        "--segments", type=int, default=6, help="number of regime segments"
    )
    learn_bench.add_argument(
        "--segment-length", type=int, default=500, help="tuples per segment"
    )
    learn_bench.add_argument("--seed", type=int, default=0)
    learn_bench.add_argument(
        "--window", type=int, default=96, help="statistics window / warmup"
    )
    learn_bench.add_argument("--smoothing", type=float, default=0.5)
    learn_bench.add_argument(
        "--delta", type=float, default=0.2, help="PAO confidence parameter"
    )
    learn_bench.add_argument(
        "--burst-pulls",
        type=int,
        default=8,
        help="minimum full-information pulls per exploration burst",
    )
    learn_bench.add_argument(
        "--posterior-decay",
        type=float,
        default=0.95,
        help="D-UCB observation-weight discount",
    )
    learn_bench.add_argument(
        "--drift-threshold",
        type=float,
        default=8.0,
        help="normalized chi-square refit trigger",
    )
    learn_bench.add_argument(
        "--regret-budget",
        type=float,
        default=None,
        help="exploration budget in Eq. 3 units (default: 64 worst-case "
        "pulls)",
    )
    learn_bench.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    learn_bench.add_argument(
        "--json", action="store_true", dest="as_json", help="JSON report output"
    )

    return parser


def _planner_for(
    parsed,
    name: str,
    distribution: EmpiricalDistribution,
    max_splits: int,
    spsf: float | None,
):
    """Planner for a parsed statement, honouring its query class.

    Boolean (OR-containing) WHERE clauses only run through the exhaustive
    planner; sequential/heuristic planning is conjunctive-only.
    """
    if not parsed.is_conjunctive:
        schema = distribution.schema
        if spsf is not None:
            policy = SplitPointPolicy.from_spsf(schema, spsf)
        else:
            # Coarse default: two candidates per attribute plus the always-
            # included predicate boundaries keeps the exponential search
            # tractable on full-size schemas.
            policy = SplitPointPolicy.equal_width(schema, [2] * len(schema))
        return ExhaustivePlanner(
            distribution, split_policy=policy, max_subproblems=500_000
        )
    return _build_planner(name, distribution, max_splits, spsf)


def _build_planner(
    name: str,
    distribution: EmpiricalDistribution,
    max_splits: int,
    spsf: float | None,
):
    policy = None
    if spsf is not None:
        policy = SplitPointPolicy.from_spsf(distribution.schema, spsf)
    if name == "naive":
        return NaivePlanner(distribution)
    if name == "greedy-seq":
        return GreedySequentialPlanner(distribution)
    if name == "opt-seq":
        return OptimalSequentialPlanner(distribution)
    if name == "corr-seq":
        return CorrSeqPlanner(distribution)
    if name == "heuristic":
        return GreedyConditionalPlanner(
            distribution,
            CorrSeqPlanner(distribution),
            max_splits=max_splits,
            split_policy=policy,
        )
    if name == "exhaustive":
        return ExhaustivePlanner(distribution, split_policy=policy)
    raise ReproError(f"unknown planner {name!r}")


def _command_generate(args: argparse.Namespace) -> int:
    out_dir: Path = args.out_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    if args.dataset == "lab":
        dataset = generate_lab_dataset(
            n_readings=args.rows, n_motes=args.motes or 12, seed=args.seed
        )
        schema, data = dataset.schema, dataset.data
    elif args.dataset == "garden":
        dataset = generate_garden_dataset(
            n_motes=args.motes or 11, n_epochs=args.rows, seed=args.seed
        )
        schema, data = dataset.schema, dataset.data
    else:
        dataset = generate_synthetic_dataset(
            n_attributes=args.motes or 10,
            gamma=args.gamma,
            selectivity=args.selectivity,
            n_rows=args.rows,
            seed=args.seed,
        )
        schema, data = dataset.schema, dataset.data

    train, test = time_split(data, args.train_fraction)
    save_schema(schema, out_dir / "schema.json")
    save_trace(train, schema, out_dir / "train.csv")
    save_trace(test, schema, out_dir / "test.csv")
    logger.info(
        "wrote %s/schema.json (%d attributes), train.csv (%d rows), "
        "test.csv (%d rows)",
        out_dir,
        len(schema),
        len(train),
        len(test),
    )
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    distribution = EmpiricalDistribution(schema, train, smoothing=args.smoothing)
    parsed = parse_query(args.query, schema)
    planner = _planner_for(
        parsed, args.planner, distribution, args.max_splits, args.spsf
    )
    result = planner.plan(parsed.query)
    summary = plan_summary(result.plan)
    print(f"planner: {result.planner}")
    print(f"expected cost/tuple: {result.expected_cost:.2f}")
    print(f"plan: {summary.describe()}")
    print(result.plan.pretty())
    if args.out is not None:
        save_plan(result.plan, args.out)
        logger.info("plan written to %s", args.out)
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    distribution = EmpiricalDistribution(schema, train, smoothing=args.smoothing)
    parsed = parse_query(args.query, schema)
    planner = _planner_for(
        parsed, args.planner, distribution, args.max_splits, args.spsf
    )
    result = planner.plan(parsed.query)
    print(f"query: {args.query.strip()}")
    print(f"where clause: {parsed.query.describe()}")
    print(f"planner: {result.planner}")
    print(f"expected cost/tuple: {result.expected_cost:.2f}")
    print(f"plan: {plan_summary(result.plan).describe()}\n")
    print(annotate_plan(result.plan, distribution))
    return 0


def _command_execute(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    plan = load_plan(args.plan)
    trace = load_trace(args.trace, schema)
    outcome = dataset_execution(plan, trace, schema)
    matches = int(outcome.verdicts.sum())
    print(f"tuples scanned : {len(trace)}")
    print(f"tuples matched : {matches} ({outcome.pass_fraction:.1%})")
    print(f"total cost     : {outcome.total_cost:.1f}")
    print(f"mean cost/tuple: {outcome.mean_cost:.2f}")
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    plan = load_plan(args.plan)
    trace = load_trace(args.trace, schema)
    with open(args.schedule, encoding="utf-8") as handle:
        schedule = FaultSchedule.from_dict(json.load(handle), schema)
    query = None
    if args.query is not None:
        parsed = parse_query(args.query, schema)
        if not parsed.is_conjunctive:
            raise ReproError("chaos needs a conjunctive WHERE clause")
        query = parsed.query
    mode = DegradationMode[args.degradation.upper()]
    if mode is not DegradationMode.ABSTAIN and query is None:
        raise ReproError(f"--degradation {args.degradation} needs --query")
    distribution = None
    if args.train is not None:
        train = load_trace(args.train, schema)
        distribution = EmpiricalDistribution(schema, train, smoothing=args.smoothing)
    policy = FaultPolicy(
        retry=RetryPolicy(
            max_retries=args.max_retries, backoff_base=args.backoff_base
        ),
        degradation=mode,
    )
    executor = FaultTolerantExecutor(
        schema, policy, query=query, distribution=distribution
    )
    outcome = executor.run(plan, trace, schedule, np.random.default_rng(args.seed))

    unsound: list[int] = []
    if query is not None:
        for row in outcome.selected:
            observed = outcome.results[row].observed
            for predicate, index in zip(query.predicates, query.attribute_indices):
                value = observed.get(index)
                if value is None or not predicate.satisfied_by(value):
                    unsound.append(row)
                    break
    ledger_ok = outcome.ledger_conserved()
    failed = bool(unsound) or not ledger_ok

    if args.as_json:
        payload = {
            "seed": args.seed,
            "degradation": args.degradation,
            "tuples_scanned": outcome.rows,
            "tuples_selected": len(outcome.selected),
            "tuples_abstained": outcome.tuples_abstained,
            "tuples_degraded": outcome.tuples_degraded,
            "abstained_rows": list(outcome.abstained),
            "acquisitions_failed": outcome.acquisitions_failed,
            "retries_total": outcome.retries_total,
            "failures_by_kind": dict(outcome.failures_by_kind),
            "base_cost": outcome.base_cost,
            "retry_cost": outcome.retry_cost,
            "total_cost": outcome.total_cost,
            "ledger_ok": ledger_ok,
            "unsound_rows": unsound,
            "ok": not failed,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"tuples scanned     : {outcome.rows}")
        print(f"tuples selected    : {len(outcome.selected)}")
        print(f"tuples abstained   : {outcome.tuples_abstained}")
        print(f"tuples degraded    : {outcome.tuples_degraded}")
        print(f"acquisitions failed: {outcome.acquisitions_failed}")
        print(f"retries            : {outcome.retries_total}")
        if outcome.failures_by_kind:
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(outcome.failures_by_kind.items())
            )
            print(f"failures by kind   : {kinds}")
        print(
            f"cost ledger        : total {outcome.total_cost:.1f} = "
            f"base {outcome.base_cost:.1f} + retry {outcome.retry_cost:.1f} "
            f"[{'ok' if ledger_ok else 'DRIFT'}]"
        )
        if query is not None:
            verdict = "sound" if not unsound else f"UNSOUND rows {unsound}"
            print(f"selected tuples    : {verdict}")
        else:
            print("selected tuples    : soundness audit skipped (no --query)")
        print(f"chaos audit        : {'FAILED' if failed else 'passed'}")
    return 1 if failed else 0


def _command_compare(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    test = load_trace(args.test, schema)
    distribution = EmpiricalDistribution(schema, train, smoothing=args.smoothing)
    parsed = parse_query(args.query, schema)

    names = ["naive", "corr-seq", "heuristic"]
    if args.include_exhaustive:
        names.append("exhaustive")
    print(f"{'planner':<12} {'expected':>10} {'test cost':>10} {'vs naive':>9}")
    baseline = None
    if not parsed.is_conjunctive:
        names = ["exhaustive"]
    for name in names:
        planner = _planner_for(parsed, name, distribution, args.max_splits, None)
        result = planner.plan(parsed.query)
        measured = dataset_execution(result.plan, test, schema).mean_cost
        if baseline is None:
            baseline = measured
        gain = baseline / measured if measured > 0 else float("inf")
        print(
            f"{name:<12} {result.expected_cost:>10.2f} "
            f"{measured:>10.2f} {gain:>8.2f}x"
        )
    return 0


def _workload_shapes(schema: Schema, n_shapes: int, seed: int) -> list[str]:
    """Distinct random conjunctive query shapes as statement texts."""
    rng = np.random.default_rng(seed)
    names = list(schema.names)
    shapes: list[str] = []
    seen: set[str] = set()
    attempt = 0
    while len(shapes) < n_shapes:
        width = int(rng.integers(2, min(4, len(names)) + 1))
        attributes = [
            str(name)
            for name in rng.choice(names, size=min(width, len(names)), replace=False)
        ]
        query = random_range_query(
            schema, attributes, seed=seed + 101 * attempt
        )
        attempt += 1
        text = query_text(query)
        if text not in seen:
            seen.add(text)
            shapes.append(text)
    return shapes


def _request_matrix(
    live: np.ndarray, position: int, rows_per_request: int
) -> np.ndarray:
    """A rows_per_request slice of the live trace, cycling past the end."""
    indices = (position * rows_per_request + np.arange(rows_per_request)) % len(
        live
    )
    return live[indices]


def _run_workload(
    service: AcquisitionalService,
    requests: list[tuple[str, np.ndarray]],
    batch_size: int,
) -> float:
    """Serve every request; returns queries/second."""
    start = time.perf_counter()
    if batch_size > 1:
        for begin in range(0, len(requests), batch_size):
            service.execute_batch(requests[begin : begin + batch_size])
    else:
        for text, readings in requests:
            service.execute(text, readings)
    elapsed = time.perf_counter() - start
    return len(requests) / elapsed if elapsed > 0 else float("inf")


def _command_serve_bench(args: argparse.Namespace) -> int:
    if args.requests < 1 or args.shapes < 1:
        raise ReproError("serve-bench needs at least one shape and one request")
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    live = load_trace(args.live, schema) if args.live is not None else train

    shapes = _workload_shapes(schema, args.shapes, args.seed)
    draws = zipf_draws(args.requests, len(shapes), skew=args.zipf, seed=args.seed)
    requests = [
        (shapes[shape], _request_matrix(live, position, args.rows_per_request))
        for position, shape in enumerate(draws)
    ]

    results = {}
    trace_stream = None
    warm_service = None
    try:
        for enabled in (False, True):
            engine = AcquisitionalEngine(schema, train, smoothing=args.smoothing)
            tracer = None
            if enabled and args.trace_out is not None:
                trace_stream = args.trace_out.open("w", encoding="utf-8")
                tracer = Tracer(stream=trace_stream)
            service = AcquisitionalService(
                engine,
                cache_capacity=args.capacity,
                cache_policy=args.policy,
                cache_enabled=enabled,
                tracer=tracer,
                exec_backend=args.exec_backend,
            )
            qps = _run_workload(service, requests, args.batch_size)
            results["cache_on" if enabled else "cache_off"] = {
                "queries_per_second": round(qps, 2),
                "stats": service.stats(),
            }
            if enabled:
                warm_service = service
    finally:
        if trace_stream is not None:
            trace_stream.close()
    if args.trace_out is not None:
        logger.info("trace events written to %s", args.trace_out)
    if args.metrics_out is not None and warm_service is not None:
        snapshot = warm_service.metrics.snapshot()
        args.metrics_out.write_text(
            json.dumps(
                {
                    "snapshot": snapshot,
                    "prometheus": render_prometheus(snapshot),
                },
                indent=2,
            )
            + "\n"
        )
        logger.info("metrics snapshot written to %s", args.metrics_out)

    on = results["cache_on"]["queries_per_second"]
    off = results["cache_off"]["queries_per_second"]
    speedup = on / off if off > 0 else float("inf")
    print(
        f"workload: {args.requests} requests over {len(shapes)} shapes "
        f"(zipf {args.zipf}), {args.rows_per_request} rows/request"
    )
    print(f"cache off: {off:>10.1f} q/s")
    print(f"cache on : {on:>10.1f} q/s   ({speedup:.1f}x)")
    cache_stats = results["cache_on"]["stats"]["cache"]
    print(
        f"hit rate {cache_stats['hit_rate']:.1%}, "
        f"{cache_stats['evictions']} evictions, "
        f"{cache_stats['invalidations']} invalidations "
        f"({cache_stats['policy']}, capacity {cache_stats['capacity']})"
    )
    if args.out is not None:
        report = {
            "config": {
                "shapes": len(shapes),
                "requests": args.requests,
                "zipf": args.zipf,
                "rows_per_request": args.rows_per_request,
                "batch_size": args.batch_size,
                "capacity": args.capacity,
                "policy": args.policy,
                "exec_backend": args.exec_backend,
            },
            "speedup": round(speedup, 2),
            **results,
        }
        args.out.write_text(json.dumps(report, indent=2))
        logger.info("report written to %s", args.out)
    return 0


def _command_cache_stats(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    live = load_trace(args.live, schema) if args.live is not None else train
    engine = AcquisitionalEngine(schema, train, smoothing=args.smoothing)
    service = AcquisitionalService(
        engine, cache_capacity=args.capacity, cache_policy=args.policy
    )
    for text in args.query:
        fingerprint = service.fingerprint(text)
        print(f"{fingerprint.digest}  {text.strip()}")
        for _repeat in range(args.repeat):
            service.execute(text, live)
    print(json.dumps(service.stats(), indent=2))
    return 0


def _cluster_config(
    args: argparse.Namespace, schema: Schema, train: np.ndarray, workers: int
) -> "ClusterConfig":
    from repro.cluster import ClusterConfig, ShardConfig

    return ClusterConfig(
        shard_config=ShardConfig(
            schema=schema,
            history=train,
            smoothing=args.smoothing,
            cache_capacity=args.capacity,
            cache_policy=args.policy,
            exec_backend=getattr(args, "exec_backend", "interp"),
        ),
        shards=workers,
        backend=args.backend,
        coalescing=not getattr(args, "no_coalescing", False),
        soft_limit=getattr(args, "soft_limit", 256),
        hard_limit=getattr(args, "hard_limit", 1024),
        shed_mode=getattr(args, "shed_mode", "abstain"),
        outage_mode=getattr(args, "outage_mode", "skip"),
        tracing=getattr(args, "trace_out", None) is not None,
        slo_latency_ms=getattr(args, "slo_latency_ms", 250.0),
    )


async def _drive_cluster(
    cluster: "ShardedServiceCluster",
    requests: list[tuple[str, np.ndarray]],
    concurrency: int,
    outage_shard: int | None,
) -> tuple[list, float]:
    """Submit the workload in concurrent waves; returns (responses, seconds).

    With an outage shard configured, the shard is killed after half the
    workload has been submitted — mid-wave traffic exercises the
    re-route/shed path.
    """
    from repro.exceptions import ClusterError

    import asyncio

    responses: list = []
    halfway = len(requests) // 2
    outage_pending = outage_shard is not None
    start = time.perf_counter()
    position = 0
    while position < len(requests):
        wave = requests[position : position + concurrency]
        task = asyncio.ensure_future(cluster.execute_many(wave))
        if outage_pending and position + len(wave) > halfway:
            # Kill the shard while this wave is in flight so its pending
            # requests exercise the re-route/shed path, not just future
            # routing.  The small sleep lets the wave's dispatches reach
            # the workers before the plug is pulled.
            await asyncio.sleep(0.01)
            try:
                cluster.induce_outage(outage_shard)
            except ClusterError as error:
                logger.warning("outage injection skipped: %s", error)
            outage_pending = False
        responses.extend(await task)
        position += len(wave)
    return responses, time.perf_counter() - start


def _command_serve_sharded(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import ShardedServiceCluster

    if args.requests < 1 or args.shapes < 1 or args.workers < 1:
        raise ReproError(
            "serve-sharded needs at least one worker, shape, and request"
        )
    if args.concurrency < 1:
        raise ReproError("--concurrency must be >= 1")
    if args.induce_outage is not None and not (
        0 <= args.induce_outage < args.workers
    ):
        raise ReproError(
            f"--induce-outage shard must be in [0, {args.workers})"
        )
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    live = load_trace(args.live, schema) if args.live is not None else train

    shapes = _workload_shapes(schema, args.shapes, args.seed)
    draws = zipf_draws(args.requests, len(shapes), skew=args.zipf, seed=args.seed)
    # Requests in one concurrent wave model one acquisition epoch: they
    # read the same sensor window, so repeated shapes within a wave are
    # coalescible (acquire once, serve many).
    requests = [
        (
            shapes[shape],
            _request_matrix(
                live, position // args.concurrency, args.rows_per_request
            ),
        )
        for position, shape in enumerate(draws)
    ]

    async def main() -> dict:
        config = _cluster_config(args, schema, train, args.workers)
        tracer = None
        trace_stream = None
        if args.trace_out is not None:
            # The front door's tracer is the merge point: its own events
            # stream here directly, and shard spans (piggybacked on
            # replies) land in the same file through ingest().
            trace_stream = args.trace_out.open("w", encoding="utf-8")
            tracer = Tracer(stream=trace_stream, name="fd")
        try:
            async with ShardedServiceCluster(config, tracer=tracer) as cluster:
                responses, elapsed = await _drive_cluster(
                    cluster, requests, args.concurrency, args.induce_outage
                )
                stats = await cluster.stats()
                exposition = await cluster.prometheus()
        finally:
            if trace_stream is not None:
                trace_stream.close()
        served = sum(1 for r in responses if r.ok)
        shed = sum(1 for r in responses if r.shed)
        failed = len(responses) - served - shed
        front = stats["front_door"]
        report = {
            "config": {
                "workers": args.workers,
                "backend": args.backend,
                "shapes": len(shapes),
                "requests": args.requests,
                "zipf": args.zipf,
                "rows_per_request": args.rows_per_request,
                "concurrency": args.concurrency,
                "coalescing": not args.no_coalescing,
                "shed_mode": args.shed_mode,
                "soft_limit": args.soft_limit,
                "hard_limit": args.hard_limit,
                "induced_outage": args.induce_outage,
            },
            "queries_per_second": round(len(responses) / elapsed, 2)
            if elapsed > 0
            else float("inf"),
            "served": served,
            "shed": shed,
            "failed": failed,
            "front_door": front,
            "shards": stats["shards"],
            "merged_metrics": stats["merged_metrics"],
        }
        if args.prometheus_out is not None:
            args.prometheus_out.write_text(exposition)
            logger.info("exposition written to %s", args.prometheus_out)
        if args.slo_out is not None:
            args.slo_out.write_text(json.dumps(front["slo"], indent=2) + "\n")
            logger.info("SLO snapshot written to %s", args.slo_out)
        return report

    report = asyncio.run(main())
    if args.trace_out is not None:
        logger.info("trace events written to %s", args.trace_out)
    front = report["front_door"]
    coalescing = front["coalescing"]
    print(
        f"workload: {report['config']['requests']} requests over "
        f"{report['config']['shapes']} shapes (zipf {args.zipf}), "
        f"{args.workers} workers ({args.backend})"
    )
    print(
        f"served {report['served']}, shed {report['shed']}, "
        f"failed {report['failed']} at {report['queries_per_second']:.1f} q/s"
    )
    print(
        f"coalescing: {coalescing['dispatched_requests']} dispatched, "
        f"{coalescing['coalesced_requests']} coalesced"
    )
    print(
        f"admission: {front['admission']['requests_shed']} shed, "
        f"{front['admission']['shed_cost_avoided']} Eq.3 cost avoided"
    )
    slo = front["slo"]
    print(
        f"slo: {slo['requests']} requests, "
        f"latency burn {slo['latency']['burn_rate']:.2f}, "
        f"error burn {slo['errors']['burn_rate']:.2f}"
    )
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2))
        logger.info("report written to %s", args.out)
    return 0


def _command_shard_stats(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import ShardedServiceCluster

    if args.workers < 1 or args.repeat < 1:
        raise ReproError("shard-stats needs at least one worker and repeat")
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    live = load_trace(args.live, schema) if args.live is not None else train
    readings = live[: args.rows_per_request]

    async def main() -> dict:
        config = _cluster_config(args, schema, train, args.workers)
        async with ShardedServiceCluster(config) as cluster:
            for text in args.query:
                for _repeat in range(args.repeat):
                    response = await cluster.execute(text, readings)
                    if not response.ok:
                        raise ReproError(
                            f"statement failed on shard "
                            f"{response.shard}: {response.error}"
                        )
            return await cluster.stats()

    stats = asyncio.run(main())
    print(json.dumps(stats, indent=2))
    return 0


def _render_obs_report(payload: dict) -> str:
    """Terminal rendering of the obs-report payload."""
    lines: list[str] = []
    summary = payload["summary"]
    lines.append(
        f"traces: {summary['traces']} ({summary['complete']} complete), "
        f"{summary['events']} events; {summary['coalesced']} coalesced, "
        f"{summary['shed']} shed, {summary['rerouted']} rerouted, "
        f"{summary['degraded']} degraded"
    )
    latency = payload["latency"]
    if latency.get("total_ms"):
        tail_label = f"p{latency['percentile']:g}"
        totals = latency["total_ms"]
        lines.append(
            f"latency: p50 {totals['p50']:.3f} ms, "
            f"{tail_label} {totals[tail_label]:.3f} ms, "
            f"max {totals['max']:.3f} ms over {latency['requests']} requests"
        )
        lines.append(f"waterfall ({tail_label} tail mean / tail share):")
        for name in SEGMENTS:
            cell = latency["segments"][name]
            nested = "  (nested in execute)" if name in ("acquire", "plan") else ""
            lines.append(
                f"  {name:<13} {cell['tail_mean_ms']:>10.3f} ms "
                f"{cell['tail_share']:>7.1%}{nested}"
            )
    paths = payload["critical_paths"]
    if paths:
        lines.append(f"critical paths (top {len(paths)}):")
        for path in paths:
            flags = " ".join(
                name
                for name in ("coalesced", "rerouted", "shed")
                if path[name]
            )
            if not path["ok"] and not path["shed"]:
                flags = f"{flags} error".strip()
            suffix = f"  [{flags}]" if flags else ""
            lines.append(
                f"  {path['trace']:<12} {path['segments']['total']:>10.3f} ms"
                f"  dominant={path['dominant']}"
                f"  {path['fingerprint'][:12]}{suffix}"
            )
    reconciliation = payload.get("reconciliation")
    if reconciliation is not None:
        verdict = "ok" if reconciliation["ok"] else "MISMATCH"
        lines.append(f"Eq. 3 reconciliation: {verdict}")
        for shard, row in reconciliation["shards"].items():
            if row["ok"] is None:
                lines.append(
                    f"  shard {shard}: attributed {row['attributed']}, "
                    f"{row['note']}"
                )
            else:
                mark = "ok" if row["ok"] else "MISMATCH"
                lines.append(
                    f"  shard {shard}: attributed {row['attributed']} "
                    f"vs ledger {row['recorded']} [{mark}]"
                )
        shed = reconciliation.get("shed")
        if shed is not None:
            mark = "ok" if shed["ok"] else "MISMATCH"
            lines.append(
                f"  shed: attributed {shed['attributed']} "
                f"vs ledger {shed['recorded']} [{mark}]"
            )
    slo = payload.get("slo")
    if slo is not None:
        lines.append(
            f"slo: {slo['requests']} requests; "
            f"latency burn {slo['latency']['burn_rate']:.2f} "
            f"(budget {slo['latency']['budget_remaining']:.1%} left), "
            f"error burn {slo['errors']['burn_rate']:.2f} "
            f"(budget {slo['errors']['budget_remaining']:.1%} left)"
        )
    if payload["findings"]:
        lines.append("findings:")
        lines.extend(f"  - {finding}" for finding in payload["findings"])
    return "\n".join(lines)


def _command_obs_report(args: argparse.Namespace) -> int:
    if args.top < 0:
        raise ReproError("--top must be >= 0")
    if not 0.0 < args.percentile <= 100.0:
        raise ReproError("--percentile must be in (0, 100]")
    records = []
    with args.trace.open(encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{args.trace}:{number}: not valid JSON ({error})"
                ) from error
    trees = list(assemble_traces(records).values())
    summary = trace_summary(trees)
    payload: dict = {
        "trace_file": str(args.trace),
        "summary": summary,
        "latency": latency_decomposition(trees, percentile=args.percentile),
        "critical_paths": critical_paths(trees, top=args.top),
    }
    findings: list[str] = []
    if summary["traces"] == 0:
        findings.append("no distributed traces in the input")
    elif summary["complete"] != summary["traces"]:
        findings.append(
            f"{summary['traces'] - summary['complete']} incomplete "
            f"trace trees (multiple roots or orphaned spans)"
        )
    if args.report is not None:
        report = json.loads(args.report.read_text())
        front = report.get("front_door", {})
        reconciliation = reconcile_costs(
            trees, report.get("shards", {}), front.get("admission")
        )
        payload["reconciliation"] = reconciliation
        if not reconciliation["ok"]:
            findings.append(
                "span-attributed acquisition cost does not reconcile "
                "with the Eq. 3 ledgers"
            )
        if front.get("slo") is not None:
            payload["slo"] = front["slo"]
    payload["findings"] = findings
    payload["ok"] = not findings
    text = json.dumps(payload, indent=2)
    if args.out is not None:
        args.out.write_text(text + "\n")
        logger.info("report written to %s", args.out)
    if args.as_json:
        print(text)
    else:
        print(_render_obs_report(payload))
    return 0 if not findings else 1


def _command_profile(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    test = load_trace(args.test, schema) if args.test is not None else train
    distribution = EmpiricalDistribution(schema, train, smoothing=args.smoothing)
    parsed = parse_query(args.query, schema)
    planner = _planner_for(
        parsed, args.planner, distribution, args.max_splits, args.spsf
    )
    result = planner.plan(parsed.query)

    profile = PlanProfile(schema)
    dataset_execution(result.plan, test, schema, observer=profile)
    monitor = DriftMonitor(
        result.plan,
        distribution,
        expected=result.expected_cost,
        threshold=args.drift_threshold,
    )

    if args.as_json:
        payload = profile_report_dict(
            result.plan,
            distribution,
            profile,
            expected=result.expected_cost,
            monitor=monitor,
        )
        payload["query"] = args.query.strip()
        payload["planner"] = result.planner
        rendered = json.dumps(payload, indent=2)
    else:
        header = (
            f"query: {args.query.strip()}\n"
            f"planner: {result.planner}\n"
        )
        rendered = header + render_profile_report(
            result.plan,
            distribution,
            profile,
            expected=result.expected_cost,
            monitor=monitor,
        )
    print(rendered)
    if args.out is not None:
        args.out.write_text(rendered + "\n")
        logger.info("profile report written to %s", args.out)
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    train = load_trace(args.trace, schema)
    live = load_trace(args.live, schema) if args.live is not None else train
    engine = AcquisitionalEngine(schema, train, smoothing=args.smoothing)
    service = AcquisitionalService(
        engine,
        cache_capacity=args.capacity,
        cache_policy=args.policy,
        profiling=args.profiling,
    )
    for text in args.query:
        for _repeat in range(args.repeat):
            service.execute(text, live)
    service.stats()  # refresh the gauges before the snapshot is taken
    snapshot = service.metrics.snapshot()
    if args.format == "json":
        print(json.dumps(snapshot, indent=2))
    else:
        print(render_prometheus(snapshot), end="")
    return 0


def _lint_suite_datasets():
    """Small planner-verification workloads: every dataset family, sized so
    even the exhaustive planner finishes in seconds."""
    garden = generate_garden_dataset(
        n_motes=1,
        n_epochs=300,
        seed=7,
        domain_sizes={"hour": 6, "temp": 6, "humidity": 6, "voltage": 4},
    )
    lab = generate_lab_dataset(
        n_readings=300,
        n_motes=4,
        seed=11,
        domain_sizes={"hour": 6, "voltage": 4, "light": 6, "temp": 6, "humidity": 6},
    )
    synthetic = generate_synthetic_dataset(
        n_attributes=4, gamma=1, selectivity=0.5, n_rows=300, seed=13
    )
    return [
        ("garden", garden, garden_queries(garden, 4, seed=3)),
        ("lab", lab, lab_queries(lab, 4, seed=5)),
        ("synthetic", synthetic, [synthetic.query()]),
    ]


def _lint_suite_planners(distribution: EmpiricalDistribution) -> dict:
    """The five planners the verifier gates, smallest-config exhaustive."""
    schema = distribution.schema
    policy = SplitPointPolicy.equal_width(schema, [1] * len(schema))
    return {
        "naive": NaivePlanner(distribution),
        "opt-seq": OptimalSequentialPlanner(distribution),
        "greedy-seq": GreedySequentialPlanner(distribution),
        "greedy-split": GreedyConditionalPlanner(
            distribution, CorrSeqPlanner(distribution), max_splits=5
        ),
        "exhaustive": ExhaustivePlanner(
            distribution, split_policy=policy, max_subproblems=300_000
        ),
    }


def _command_lint_suite(args: argparse.Namespace) -> int:
    total_errors = 0
    total_warnings = 0
    rows = []
    reports = []
    for dataset_name, dataset, queries in _lint_suite_datasets():
        schema = dataset.schema
        distribution = EmpiricalDistribution(
            schema, dataset.data, smoothing=args.smoothing or 0.5
        )
        for planner_name, planner in _lint_suite_planners(distribution).items():
            errors = 0
            warnings = 0
            for query in queries:
                result = planner.plan_timed(query)
                report = verify_plan(
                    result.plan,
                    schema,
                    query=query,
                    distribution=distribution,
                    claimed_cost=result.expected_cost,
                    check_compiled=True,
                    subject=f"{dataset_name}/{planner_name}: {query.describe()}",
                )
                errors += len(report.errors)
                warnings += len(report.warnings)
                if report.diagnostics:
                    reports.append(report)
            rows.append((dataset_name, planner_name, len(queries), errors, warnings))
            total_errors += errors
            total_warnings += warnings

    if args.as_json:
        print(
            json.dumps(
                {
                    "ok": total_errors == 0,
                    "errors": total_errors,
                    "warnings": total_warnings,
                    "results": [
                        {
                            "dataset": dataset,
                            "planner": planner,
                            "queries": queries,
                            "errors": errors,
                            "warnings": warnings,
                        }
                        for dataset, planner, queries, errors, warnings in rows
                    ],
                    "reports": [report.as_dict() for report in reports],
                },
                indent=2,
            )
        )
    else:
        print(f"{'dataset':<11} {'planner':<13} {'queries':>7} {'errors':>7} {'warnings':>9}")
        for dataset, planner, queries, errors, warnings in rows:
            print(f"{dataset:<11} {planner:<13} {queries:>7} {errors:>7} {warnings:>9}")
        for report in reports:
            print()
            print(report.format())
        verdict = "clean" if total_errors == 0 else "FAILED"
        print(
            f"\nlint-plan suite {verdict}: {total_errors} error(s), "
            f"{total_warnings} warning(s) across {len(rows)} planner/dataset runs"
        )
    return 0 if total_errors == 0 else 1


def _command_lint_plan(args: argparse.Namespace) -> int:
    if args.suite:
        return _command_lint_suite(args)
    if args.schema is None:
        raise ReproError("lint-plan needs --schema (or --suite)")
    if (args.plan is None) == (args.bytecode is None):
        raise ReproError(
            "lint-plan needs exactly one of --plan or --bytecode (or --suite)"
        )
    schema = load_schema(args.schema)
    distribution = None
    if args.trace is not None:
        train = load_trace(args.trace, schema)
        distribution = EmpiricalDistribution(
            schema, train, smoothing=args.smoothing
        )
    query = None
    if args.query is not None:
        query = parse_query(args.query, schema).query
    if args.plan is not None:
        plan = load_plan(args.plan)
        report = verify_plan(
            plan,
            schema,
            query=query,
            distribution=distribution,
            check_compiled=True,
            subject=str(args.plan),
        )
    else:
        code = args.bytecode.read_bytes()
        report = verify_bytecode(
            code,
            schema,
            query=query,
            distribution=distribution,
            subject=str(args.bytecode),
        )
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _command_lint_code(args: argparse.Namespace) -> int:
    """Static source analysis: file mode, or corpus self-test + repo scan."""
    if args.suite:
        if args.paths:
            raise ReproError("lint-code --suite takes no positional files")
        corpus_failures = run_corpus()
        report = lint_repo(root=args.root)
        payload = {
            "ok": report.ok and not corpus_failures,
            "corpus": {
                "ok": not corpus_failures,
                "failures": corpus_failures,
            },
            "report": report.as_dict(),
        }
        if args.out is not None:
            args.out.write_text(json.dumps(payload, indent=2) + "\n")
        if args.as_json:
            print(json.dumps(payload, indent=2))
        else:
            if corpus_failures:
                print(f"corpus FAILED ({len(corpus_failures)} case(s)):")
                for failure in corpus_failures:
                    print(f"  - {failure}")
            else:
                print("corpus ok: every rule fires on its seeded violation")
            print(report.format())
        return 0 if report.ok and not corpus_failures else 1

    if not args.paths:
        raise ReproError("lint-code needs source files (or --suite)")
    report = lint_paths(args.paths, root=args.root)
    if args.out is not None:
        args.out.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.format())
    return 0 if report.ok else 1


def _analysis_self_test() -> list[str]:
    """The DF rules' negative and positive controls; returns failures.

    Every seeded mutation must fire its documented code, and the
    canonical clean plans (plus an honest certificate) must stay silent
    — a silently-dead DF rule fails the suite even when every planner
    output happens to be clean.
    """
    schema = Schema(
        (
            Attribute(name="pressure", domain_size=8, cost=10.0),
            Attribute(name="flow", domain_size=8, cost=4.0),
        )
    )
    query = ConjunctiveQuery(
        schema=schema,
        predicates=(
            RangePredicate(attribute="pressure", low=3, high=6),
            RangePredicate(attribute="flow", low=2, high=7),
        ),
    )
    rng = np.random.default_rng(29)
    data = np.column_stack(
        [rng.integers(1, 9, size=300), rng.integers(1, 9, size=300)]
    )
    distribution = EmpiricalDistribution(schema, data, smoothing=0.5)
    failures: list[str] = []
    for case in dataflow_mutations(query):
        codes = {f.code for f in check_dataflow(case.plan, schema, query=query)}
        if case.expected_code not in codes:
            failures.append(
                f"mutation {case.name!r} did not fire {case.expected_code} "
                f"(got {sorted(codes)})"
            )
    for cert_case in certificate_mutations(query, distribution):
        codes = {
            f.code
            for f in check_certificate(
                cert_case.plan, cert_case.certificate, distribution, query=query
            )
        }
        if cert_case.expected_code not in codes:
            failures.append(
                f"certificate mutation {cert_case.name!r} did not fire "
                f"{cert_case.expected_code} (got {sorted(codes)})"
            )
    for name, plan in (
        ("sequential", canonical_sequential_plan(query)),
        ("conditional", canonical_conditional_plan(query)),
    ):
        findings = check_dataflow(plan, schema, query=query)
        if findings:
            failures.append(
                f"clean {name} plan fired {sorted(f.code for f in findings)}"
            )
    clean_plan = canonical_conditional_plan(query)
    honest = certify_plan(clean_plan, distribution)
    stray = check_certificate(clean_plan, honest, distribution, query=query)
    if stray:
        failures.append(
            f"honest certificate fired {sorted(f.code for f in stray)}"
        )
    return failures


def _command_analyze_suite(args: argparse.Namespace) -> int:
    total_errors = 0
    total_warnings = 0
    rows = []
    reports = []
    gate_failures: list[str] = []
    for dataset_name, dataset, queries in _lint_suite_datasets():
        schema = dataset.schema
        distribution = EmpiricalDistribution(
            schema, dataset.data, smoothing=args.smoothing or 0.5
        )
        for planner_name, planner in _lint_suite_planners(distribution).items():
            errors = 0
            warnings = 0
            certified = 0
            for query in queries:
                result = planner.plan_timed(query)
                report = verify_plan(
                    result.plan,
                    schema,
                    query=query,
                    distribution=distribution,
                    claimed_cost=result.expected_cost,
                    certificate=result.certificate,
                    subject=f"{dataset_name}/{planner_name}: {query.describe()}",
                )
                errors += len(report.errors)
                warnings += len(report.warnings)
                if result.certificate is not None and not report.has("DF101"):
                    certified += 1
                if report.diagnostics:
                    reports.append(report)
            # CI gate: every exhaustive plan must ship a DP-cache
            # certificate that survives independent re-derivation.
            if planner_name == "exhaustive" and certified != len(queries):
                gate_failures.append(
                    f"{dataset_name}/exhaustive: only {certified}/{len(queries)}"
                    " plans certified DF101-clean"
                )
            rows.append(
                (dataset_name, planner_name, len(queries), errors, warnings, certified)
            )
            total_errors += errors
            total_warnings += warnings

    corpus_failures = _analysis_self_test()
    failed = bool(total_errors or gate_failures or corpus_failures)
    if args.as_json:
        print(
            json.dumps(
                {
                    "ok": not failed,
                    "errors": total_errors,
                    "warnings": total_warnings,
                    "results": [
                        {
                            "dataset": dataset,
                            "planner": planner,
                            "queries": queries,
                            "errors": errors,
                            "warnings": warnings,
                            "certified": certified,
                        }
                        for dataset, planner, queries, errors, warnings, certified
                        in rows
                    ],
                    "certificate_gate_failures": gate_failures,
                    "mutation_corpus_failures": corpus_failures,
                    "reports": [report.as_dict() for report in reports],
                },
                indent=2,
            )
        )
    else:
        print(
            f"{'dataset':<11} {'planner':<13} {'queries':>7} {'errors':>7} "
            f"{'warnings':>9} {'certified':>9}"
        )
        for dataset, planner, queries, errors, warnings, certified in rows:
            print(
                f"{dataset:<11} {planner:<13} {queries:>7} {errors:>7} "
                f"{warnings:>9} {certified:>9}"
            )
        for report in reports:
            print()
            print(report.format())
        for message in gate_failures:
            print(f"\ncertificate gate FAILED: {message}")
        for message in corpus_failures:
            print(f"\nmutation corpus FAILED: {message}")
        verdict = "FAILED" if failed else "clean"
        print(
            f"\nanalyze suite {verdict}: {total_errors} error(s), "
            f"{total_warnings} warning(s) across {len(rows)} planner/dataset "
            f"runs; {len(corpus_failures)} corpus failure(s)"
        )
    return 1 if failed else 0


def _command_analyze(args: argparse.Namespace) -> int:
    if args.suite:
        return _command_analyze_suite(args)
    if args.schema is None or args.plan is None:
        raise ReproError("analyze needs --schema and --plan (or --suite)")
    schema = load_schema(args.schema)
    plan = load_plan(args.plan)
    query = None
    if args.query is not None:
        query = parse_query(args.query, schema).query
    analysis = analyze_plan(plan, schema, query=query)
    findings = check_dataflow(plan, schema, query=query, analysis=analysis)
    report = VerificationReport.from_findings(findings, subject=str(args.plan))
    fix_summary = None
    if args.fix:
        optimized = optimize_plan(plan, schema, query=query)
        nodes_before = sum(1 for _ in iter_plan_paths(plan))
        nodes_after = sum(1 for _ in iter_plan_paths(optimized))
        destination = args.out if args.out is not None else args.plan
        save_plan(optimized, destination)
        fix_summary = {
            "out": str(destination),
            "nodes_before": nodes_before,
            "nodes_after": nodes_after,
        }
    if args.as_json:
        payload = {
            "subject": str(args.plan),
            "report": report.as_dict(),
            "states": {
                facts.path: facts.state.describe(schema) for facts in analysis
            },
        }
        if fix_summary is not None:
            payload["fix"] = fix_summary
        print(json.dumps(payload, indent=2))
    else:
        print(render_analysis(analysis))
        print()
        print(report.format())
        if fix_summary is not None:
            print(
                f"\nfix: wrote optimized plan to {fix_summary['out']} "
                f"({fix_summary['nodes_before']} -> "
                f"{fix_summary['nodes_after']} nodes)"
            )
    return 0 if report.ok else 1


def _command_compile_suite(args: argparse.Namespace) -> int:
    from repro.compile import default_corpus_query, lower_plan, validate_translation
    from repro.compile.mutants import run_corpus as run_tv_corpus

    # Validator self-test: every seeded miscompilation class must be
    # caught, every clean kernel must pass silently — with and without
    # the distribution that arms the TV008 conservation check.
    corpus_query = default_corpus_query()
    corpus_schema = corpus_query.schema
    rng = np.random.default_rng(17)
    corpus_data = rng.integers(1, 9, size=(400, len(corpus_schema)))
    corpus_distribution = EmpiricalDistribution(
        corpus_schema, corpus_data, smoothing=0.5
    )
    corpus_failures = run_tv_corpus()
    corpus_failures += run_tv_corpus(distribution=corpus_distribution)

    total_errors = 0
    total_warnings = 0
    rows = []
    reports = []
    for dataset_name, dataset, queries in _lint_suite_datasets():
        schema = dataset.schema
        distribution = EmpiricalDistribution(
            schema, dataset.data, smoothing=args.smoothing or 0.5
        )
        for planner_name, planner in _lint_suite_planners(distribution).items():
            errors = 0
            warnings = 0
            for query in queries:
                result = planner.plan_timed(query)
                compiled = lower_plan(result.plan, schema)
                report = validate_translation(
                    compiled,
                    result.plan,
                    schema,
                    distribution=distribution,
                    subject=f"{dataset_name}/{planner_name}: {query.describe()}",
                )
                errors += len(report.errors)
                warnings += len(report.warnings)
                if report.diagnostics:
                    reports.append(report)
            rows.append((dataset_name, planner_name, len(queries), errors, warnings))
            total_errors += errors
            total_warnings += warnings

    failed = bool(total_errors or corpus_failures)
    document = {
        "ok": not failed,
        "errors": total_errors,
        "warnings": total_warnings,
        "corpus": {
            "ok": not corpus_failures,
            "failures": corpus_failures,
        },
        "results": [
            {
                "dataset": dataset,
                "planner": planner,
                "queries": queries,
                "errors": errors,
                "warnings": warnings,
            }
            for dataset, planner, queries, errors, warnings in rows
        ],
        "reports": [report.as_dict() for report in reports],
    }
    if args.out is not None:
        args.out.write_text(json.dumps(document, indent=2) + "\n")
        logger.info("compile suite report written to %s", args.out)
    if args.as_json:
        print(json.dumps(document, indent=2))
    else:
        if corpus_failures:
            print(f"miscompilation corpus FAILED ({len(corpus_failures)} case(s)):")
            for failure in corpus_failures:
                print(f"  - {failure}")
        else:
            print(
                "miscompilation corpus ok: every mutant class caught, "
                "clean kernels silent"
            )
        print()
        print(f"{'dataset':<11} {'planner':<13} {'queries':>7} {'errors':>7} {'warnings':>9}")
        for dataset, planner, queries, errors, warnings in rows:
            print(f"{dataset:<11} {planner:<13} {queries:>7} {errors:>7} {warnings:>9}")
        for report in reports:
            print()
            print(report.format())
        verdict = "FAILED" if failed else "clean"
        print(
            f"\ncompile suite {verdict}: {total_errors} error(s), "
            f"{total_warnings} warning(s) across {len(rows)} planner/dataset "
            f"runs; {len(corpus_failures)} corpus failure(s)"
        )
    return 1 if failed else 0


def _command_compile(args: argparse.Namespace) -> int:
    if args.suite:
        return _command_compile_suite(args)
    if args.schema is None or args.plan is None:
        raise ReproError("compile needs --schema and --plan (or --suite)")
    from repro.compile import compile_plan

    schema = load_schema(args.schema)
    plan = load_plan(args.plan)
    distribution = None
    if args.trace is not None:
        train = load_trace(args.trace, schema)
        distribution = EmpiricalDistribution(
            schema, train, smoothing=args.smoothing
        )
    compiled, report = compile_plan(plan, schema, distribution=distribution)
    if args.out is not None and report.ok:
        args.out.write_text(json.dumps(compiled.to_dict(), indent=2) + "\n")
        logger.info("kernel IR written to %s", args.out)
    if args.as_json:
        print(
            json.dumps(
                {
                    "subject": str(args.plan),
                    "ok": report.ok,
                    "ops": len(compiled.ops),
                    "registers": compiled.register_count,
                    "report": report.as_dict(),
                },
                indent=2,
            )
        )
    else:
        print(
            f"lowered {args.plan}: {len(compiled.ops)} op(s) over "
            f"{compiled.register_count} register(s)"
        )
        print(report.format())
    return 0 if report.ok else 1


def _command_learn_bench(args: argparse.Namespace) -> int:
    from repro.learn import run_learned_bench

    report = run_learned_bench(
        n_segments=args.segments,
        segment_length=args.segment_length,
        seed=args.seed,
        window=args.window,
        smoothing=args.smoothing,
        delta=args.delta,
        burst_pulls=args.burst_pulls,
        posterior_decay=args.posterior_decay,
        drift_threshold=args.drift_threshold,
        regret_budget=args.regret_budget,
    )
    payload = report.as_dict()
    if args.out is not None:
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        logger.info("learned benchmark report written to %s", args.out)
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"adversarial stream: {report.tuples} tuples, "
            f"{report.segments} segments, seed {report.seed}"
        )
        print(f"{'strategy':<18} {'total':>12} {'mean':>9} {'replans':>8}")
        for run in report.strategies:
            print(
                f"{run.name:<18} {run.total_cost:>12.0f} "
                f"{run.mean_cost:>9.2f} {run.replans:>8}"
            )
        ledger = payload["ledger"]
        print(
            f"ledger: warmup {ledger['warmup_cost']:.0f} + conditioning "
            f"{ledger['conditioning_cost']:.0f} + base "
            f"{ledger['base_cost']:.0f} + exploration "
            f"{ledger['exploration_cost']:.0f} (budget {ledger['budget']:.0f})"
        )
        for gate, passed in report.gates.items():
            print(f"  gate {gate}: {'pass' if passed else 'FAIL'}")
    return 0 if report.all_gates_pass else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
        force=True,
    )
    handlers = {
        "generate": _command_generate,
        "plan": _command_plan,
        "explain": _command_explain,
        "execute": _command_execute,
        "compare": _command_compare,
        "serve-bench": _command_serve_bench,
        "cache-stats": _command_cache_stats,
        "serve-sharded": _command_serve_sharded,
        "shard-stats": _command_shard_stats,
        "obs-report": _command_obs_report,
        "lint-plan": _command_lint_plan,
        "lint-code": _command_lint_code,
        "analyze": _command_analyze,
        "profile": _command_profile,
        "metrics": _command_metrics,
        "chaos": _command_chaos,
        "compile": _command_compile,
        "learn-bench": _command_learn_bench,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
