"""Known-bad plan mutations: the verifier's self-test corpus.

A verifier that silently passes broken plans is worse than none, so the
verifier ships with its own negative controls: each
:class:`MutationCase` seeds one specific defect class into an otherwise
correct plan — dropped conjunct, flipped verdict, overlapping split
ranges, out-of-bounds bytecode offset, wrong ``size_bytes`` — and names
the documented error code the verifier must report for it.  The
mutation self-test (``tests/test_verifier_mutations.py``) asserts every
case is caught with exactly that code, and the property tests reuse the
canonical builders as known-clean baselines.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    SequentialStep,
    VerdictLeaf,
)
from repro.core.predicates import RangePredicate, Truth
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import QueryError
from repro.execution.bytecode import compile_plan

__all__ = [
    "MutationCase",
    "plan_mutations",
    "bytecode_mutations",
    "canonical_sequential_plan",
    "canonical_conditional_plan",
]


@dataclass(frozen=True)
class MutationCase:
    """One seeded defect and the error code that must catch it."""

    name: str
    description: str
    expected_code: str
    plan: PlanNode | None = None
    code: bytes | None = None


def _require_mutable_query(query: ConjunctiveQuery) -> None:
    """The corpus needs room to mutate; reject degenerate queries early."""
    if len(query.predicates) < 2:
        raise QueryError("mutation corpus needs a query with >= 2 predicates")
    first = query.predicates[0]
    index = query.attribute_indices[0]
    domain = query.schema[index].domain_size
    if not isinstance(first, RangePredicate) or not 2 <= first.low <= first.high < domain:
        raise QueryError(
            "mutation corpus needs a first predicate low >= 2 and "
            "high < domain so both split branches are meaningful"
        )


def _leaf_for(query: ConjunctiveQuery, ranges: RangeVector) -> PlanNode:
    """The correct leaf for a context: verdict if decided, else the
    remaining conjuncts in predicate order."""
    truth = query.truth_under(ranges)
    if truth is not Truth.UNDETERMINED:
        return VerdictLeaf(verdict=truth is Truth.TRUE)
    return SequentialNode(
        steps=tuple(
            SequentialStep(predicate=predicate, attribute_index=index)
            for predicate, index in query.undetermined_predicates(ranges)
        )
    )


def canonical_sequential_plan(query: ConjunctiveQuery) -> SequentialNode:
    """The Naive plan: every conjunct in predicate order — verifier-clean."""
    steps = tuple(
        SequentialStep(predicate=predicate, attribute_index=index)
        for predicate, index in zip(query.predicates, query.attribute_indices)
    )
    return SequentialNode(steps=steps)


def canonical_conditional_plan(query: ConjunctiveQuery) -> ConditionNode:
    """A correct one-split plan: condition the first predicate's attribute
    at its lower bound, so the below branch proves the query FALSE."""
    _require_mutable_query(query)
    predicate = query.predicates[0]
    assert isinstance(predicate, RangePredicate)
    index = query.attribute_indices[0]
    full = RangeVector.full(query.schema)
    below_ranges, above_ranges = full.split(index, predicate.low)
    return ConditionNode(
        attribute=predicate.attribute,
        attribute_index=index,
        split_value=predicate.low,
        below=_leaf_for(query, below_ranges),
        above=_leaf_for(query, above_ranges),
    )


def plan_mutations(query: ConjunctiveQuery) -> list[MutationCase]:
    """Seeded plan-tree defects, one per semantic/range rule."""
    _require_mutable_query(query)
    schema = query.schema
    sequential = canonical_sequential_plan(query)
    steps = sequential.steps
    first_predicate = query.predicates[0]
    assert isinstance(first_predicate, RangePredicate)
    first_index = query.attribute_indices[0]
    full = RangeVector.full(schema)
    below_ranges, _above_ranges = full.split(first_index, first_predicate.low)

    last = steps[-1]
    foreign_bound = 1 if getattr(last.predicate, "low", 1) != 1 else 2
    foreign = SequentialStep(
        predicate=RangePredicate(
            attribute=last.predicate.attribute,
            low=1,
            high=foreign_bound,
        ),
        attribute_index=last.attribute_index,
    )

    conditional = canonical_conditional_plan(query)
    overlapping_inner = ConditionNode(
        attribute=conditional.attribute,
        attribute_index=conditional.attribute_index,
        split_value=conditional.split_value,
        below=_leaf_for(query, below_ranges),
        above=_leaf_for(query, below_ranges),
    )

    return [
        MutationCase(
            name="dropped-conjunct",
            description="leaf omits the query's last predicate",
            expected_code="SEM001",
            plan=SequentialNode(steps=steps[:-1]),
        ),
        MutationCase(
            name="duplicate-step",
            description="leaf tests the first predicate twice",
            expected_code="SEM002",
            plan=SequentialNode(steps=steps + (steps[0],)),
        ),
        MutationCase(
            name="foreign-predicate",
            description="leaf swaps the last conjunct for a different range",
            expected_code="SEM003",
            plan=SequentialNode(steps=steps[:-1] + (foreign,)),
        ),
        MutationCase(
            name="flipped-verdict",
            description="TRUE verdict on a branch that proves the query FALSE",
            expected_code="SEM006",
            plan=ConditionNode(
                attribute=conditional.attribute,
                attribute_index=conditional.attribute_index,
                split_value=conditional.split_value,
                below=VerdictLeaf(verdict=True),
                above=conditional.above,
            ),
        ),
        MutationCase(
            name="unjustified-verdict",
            description="verdict leaf while every conjunct is still open",
            expected_code="SEM005",
            plan=VerdictLeaf(verdict=True),
        ),
        MutationCase(
            name="overlapping-split",
            description="below branch re-splits the same attribute at the "
            "same value, outside its own range context",
            expected_code="RNG001",
            plan=ConditionNode(
                attribute=conditional.attribute,
                attribute_index=conditional.attribute_index,
                split_value=conditional.split_value,
                below=overlapping_inner,
                above=conditional.above,
            ),
        ),
    ]


def bytecode_mutations(query: ConjunctiveQuery) -> list[MutationCase]:
    """Seeded wire-format defects, patched into a compiled correct plan.

    The canonical conditional plan compiles to a condition node at offset
    0 (head byte, split ``u16`` at 1, below offset ``u16`` at 3, above
    offset ``u16`` at 5) — the patches below poke those fields directly.
    """
    baseline = compile_plan(canonical_conditional_plan(query))

    def patched(offset: int, fmt: str, *values: int) -> bytes:
        code = bytearray(baseline)
        struct.pack_into(fmt, code, offset, *values)
        return bytes(code)

    below_offset = struct.unpack_from(">H", baseline, 3)[0]

    return [
        MutationCase(
            name="oob-offset",
            description="above-child offset points past the end of the plan",
            expected_code="BC001",
            code=patched(5, ">H", len(baseline) + 16),
        ),
        MutationCase(
            name="cycle",
            description="below-child offset points back at the root",
            expected_code="BC002",
            code=patched(3, ">H", 0),
        ),
        MutationCase(
            name="shared-node",
            description="both children resolve to the same node",
            expected_code="BC004",
            code=patched(5, ">H", below_offset),
        ),
        MutationCase(
            name="wrong-size",
            description="trailing padding breaks len(code) == size_bytes()",
            expected_code="BC005",
            code=baseline + b"\x00\x00\x00",
        ),
        MutationCase(
            name="truncated",
            description="final byte lost in transit",
            expected_code="BC001",
            code=baseline[:-1],
        ),
        MutationCase(
            name="unknown-kind",
            description="root head byte mangled to the reserved kind 3",
            expected_code="BC006",
            code=patched(0, ">B", 0xC0),
        ),
        MutationCase(
            name="bad-split",
            description="split value zeroed below the domain minimum",
            expected_code="RNG003",
            code=patched(1, ">H", 0),
        ),
    ]
