"""Verifier entry points: one plan, one byte string, or many of each.

:func:`verify_plan` runs the tree rules (structure, semantics, ranges)
plus — when a distribution is supplied — cost conservation, and
optionally cross-checks the compiled form.  :func:`verify_bytecode`
starts from the wire format instead: the layout must pass the ``BC*``
safety rules before the decoded tree is put through the same tree rules.
:class:`PlanVerifier` binds a schema/query/distribution once for callers
that verify plans in a loop (the engine's debug mode, the cache
admission gate, the CLI suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.attributes import Schema
from repro.core.boolean import BooleanQuery
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanVerificationError, ReproError
from repro.execution.bytecode import compile_plan
from repro.probability.base import Distribution
from repro.verify.bytecode_check import check_bytecode
from repro.verify.diagnostics import VerificationReport, make_diagnostic
from repro.verify.rules import check_cost, check_tree

if TYPE_CHECKING:
    from repro.analysis.certificates import CostCertificate
    from repro.compile.ir import CompiledPlan
    from repro.faults.policy import FaultPolicy
    from repro.learn.bandit import LearnedProvenance

__all__ = [
    "PlanVerifier",
    "verify_plan",
    "verify_bytecode",
    "assert_valid_plan",
    "DEFAULT_COST_TOLERANCE",
]

AnyQuery = ConjunctiveQuery | BooleanQuery

# Relative tolerance for Eq. 3 cost comparisons.  Planner bookkeeping is
# float arithmetic over a different summation order than the recomputation,
# so exact equality is out; anything beyond this is a real drift.
DEFAULT_COST_TOLERANCE = 1e-6


def verify_plan(
    plan: PlanNode,
    schema: Schema,
    query: AnyQuery | None = None,
    distribution: Distribution | None = None,
    claimed_cost: float | None = None,
    cost_model: AcquisitionCostModel | None = None,
    ranges: RangeVector | None = None,
    check_compiled: bool = False,
    tolerance: float = DEFAULT_COST_TOLERANCE,
    subject: str = "plan",
    certificate: "CostCertificate | None" = None,
    fault_policy: "FaultPolicy | None" = None,
    compiled: "CompiledPlan | None" = None,
    provenance: "LearnedProvenance | None" = None,
) -> VerificationReport:
    """Statically verify a plan tree; nothing is executed.

    ``query`` enables the semantic-equivalence rules, ``distribution``
    the cost-conservation rules (with ``claimed_cost`` compared when
    given), and ``check_compiled`` additionally compiles the plan and
    runs the bytecode safety rules over the result.  The dataflow rules
    (``DF001``-``DF004``) always run; a ``certificate`` (with a
    distribution) additionally re-derives its cost-bound claims
    (``DF101``).  A ``fault_policy`` enables the fault-tolerance rules
    (``FT001``-``FT003``): the degraded paths the policy selects must
    remain semantically sound.  A ``compiled`` kernel (from
    :func:`repro.compile.lower_plan`) additionally runs the translation
    validator (``TV001``-``TV010``): the kernel must be provably
    equivalent to the plan before the compiled execution tier may use
    it.  A learned-planner ``provenance`` (from
    :class:`repro.learn.planner.BanditPlanner` or the learned stream
    executor) additionally runs the ``LRN`` rules: regret-budget
    conservation, arm-posterior well-formedness, and plan/served-arm
    agreement.
    """
    # Imported lazily: repro.analysis imports this package's submodules.
    from repro.analysis.certificates import check_certificate
    from repro.analysis.checks import check_dataflow

    findings = check_tree(plan, schema, query=query, ranges=ranges)
    findings.extend(check_dataflow(plan, schema, query=query, ranges=ranges))
    if fault_policy is not None:
        from repro.verify.ft import check_fault_tolerance

        ft_query = query if isinstance(query, ConjunctiveQuery) else None
        findings.extend(
            check_fault_tolerance(plan, schema, fault_policy, query=ft_query)
        )
    structurally_sound = not any(
        finding.code.startswith(("STR", "RNG")) for finding in findings
    )
    if distribution is not None and structurally_sound:
        findings.extend(
            check_cost(
                plan,
                distribution,
                claimed_cost=claimed_cost,
                tolerance=tolerance,
                cost_model=cost_model,
                ranges=ranges,
            )
        )
        if certificate is not None:
            findings.extend(
                check_certificate(
                    plan,
                    certificate,
                    distribution,
                    query=query,
                    ranges=ranges,
                    cost_model=cost_model,
                )
            )
    if check_compiled and structurally_sound:
        try:
            code = compile_plan(plan)
        except ReproError as error:
            findings.append(
                make_diagnostic(
                    "BC005", "root", f"plan does not compile: {error}"
                )
            )
        else:
            byte_findings, _decoded = check_bytecode(code, schema)
            findings.extend(byte_findings)
    if provenance is not None and structurally_sound:
        from repro.verify.learn import check_learned

        findings.extend(check_learned(plan, provenance, tolerance=tolerance))
    if compiled is not None and structurally_sound:
        from repro.compile.validate import validate_translation

        tv_report = validate_translation(
            compiled,
            plan,
            schema,
            distribution=distribution,
            certificate=certificate,
            cost_model=cost_model,
            subject=subject,
        )
        findings.extend(tv_report.diagnostics)
    return VerificationReport.from_findings(findings, subject=subject)


def verify_bytecode(
    code: bytes,
    schema: Schema,
    query: AnyQuery | None = None,
    distribution: Distribution | None = None,
    claimed_cost: float | None = None,
    cost_model: AcquisitionCostModel | None = None,
    tolerance: float = DEFAULT_COST_TOLERANCE,
    subject: str = "bytecode",
) -> VerificationReport:
    """Statically verify a compiled plan byte string.

    The ``BC*`` layout rules run first; only a byte string that decodes
    cleanly is put through the tree rules (semantics, ranges, cost).
    """
    findings, plan = check_bytecode(code, schema)
    if plan is not None:
        tree_report = verify_plan(
            plan,
            schema,
            query=query,
            distribution=distribution,
            claimed_cost=claimed_cost,
            cost_model=cost_model,
            tolerance=tolerance,
        )
        findings.extend(tree_report.diagnostics)
    return VerificationReport.from_findings(findings, subject=subject)


def assert_valid_plan(
    plan: PlanNode,
    schema: Schema,
    query: AnyQuery | None = None,
    distribution: Distribution | None = None,
    claimed_cost: float | None = None,
    cost_model: AcquisitionCostModel | None = None,
    check_compiled: bool = True,
    subject: str = "plan",
    certificate: "CostCertificate | None" = None,
    fault_policy: "FaultPolicy | None" = None,
    provenance: "LearnedProvenance | None" = None,
) -> VerificationReport:
    """Verify and raise :class:`PlanVerificationError` on any ERROR."""
    report = verify_plan(
        plan,
        schema,
        query=query,
        distribution=distribution,
        claimed_cost=claimed_cost,
        cost_model=cost_model,
        check_compiled=check_compiled,
        subject=subject,
        certificate=certificate,
        fault_policy=fault_policy,
        provenance=provenance,
    )
    if not report.ok:
        raise PlanVerificationError(report.format(), report=report)
    return report


class PlanVerifier:
    """A verifier bound to one schema and (optionally) one distribution.

    The serving layer verifies every admitted plan against the same
    statistics snapshot; binding the context once keeps call sites to
    ``verifier.verify(plan, query, claimed_cost=...)``.
    """

    def __init__(
        self,
        schema: Schema,
        distribution: Distribution | None = None,
        cost_model: AcquisitionCostModel | None = None,
        tolerance: float = DEFAULT_COST_TOLERANCE,
        check_compiled: bool = False,
    ) -> None:
        self.schema = schema
        self.distribution = distribution
        self.cost_model = cost_model
        self.tolerance = tolerance
        self.check_compiled = check_compiled

    def verify(
        self,
        plan: PlanNode,
        query: AnyQuery | None = None,
        claimed_cost: float | None = None,
        subject: str = "plan",
        certificate: "CostCertificate | None" = None,
        fault_policy: "FaultPolicy | None" = None,
        compiled: "CompiledPlan | None" = None,
        provenance: "LearnedProvenance | None" = None,
    ) -> VerificationReport:
        return verify_plan(
            plan,
            self.schema,
            query=query,
            distribution=self.distribution,
            claimed_cost=claimed_cost,
            cost_model=self.cost_model,
            check_compiled=self.check_compiled,
            tolerance=self.tolerance,
            subject=subject,
            certificate=certificate,
            fault_policy=fault_policy,
            compiled=compiled,
            provenance=provenance,
        )

    def verify_bytecode(
        self,
        code: bytes,
        query: AnyQuery | None = None,
        claimed_cost: float | None = None,
        subject: str = "bytecode",
    ) -> VerificationReport:
        return verify_bytecode(
            code,
            self.schema,
            query=query,
            distribution=self.distribution,
            claimed_cost=claimed_cost,
            cost_model=self.cost_model,
            tolerance=self.tolerance,
            subject=subject,
        )

    def admit(
        self,
        plan: PlanNode,
        query: AnyQuery | None = None,
        claimed_cost: float | None = None,
        certificate: "CostCertificate | None" = None,
    ) -> bool:
        """Admission predicate for :class:`~repro.service.cache.PlanCache`."""
        return self.verify(
            plan, query=query, claimed_cost=claimed_cost, certificate=certificate
        ).ok
