"""Fault-tolerance rules (``FT*``): degraded paths must stay sound.

When a plan will execute under a :class:`~repro.faults.policy.FaultPolicy`,
the degraded paths the policy selects are part of the plan's semantics and
deserve the same static scrutiny as the tree itself:

- ``FT001`` — ``IMPUTE`` with ``confirm_positives`` disabled emits
  positive verdicts derived from a guessed branch, violating the
  no-false-positives guarantee (ERROR).
- ``FT002`` — ``SKIP``/``IMPUTE`` need the original query at degradation
  time (its predicates *are* the fallback path); configuring them without
  one leaves the executor nothing sound to fall back to (ERROR).
- ``FT003`` — a conditioning-only attribute (one the plan reads but the
  query never tests) is a single point of failure under ``ABSTAIN``:
  every tuple routed through it abstains when it fails, even though the
  verdict never needed the attribute (WARNING — prefer ``SKIP``).

The rules are static — nothing is executed — and compose with the rest of
:func:`repro.verify.verifier.verify_plan` via its ``fault_policy``
parameter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.attributes import Schema
from repro.core.plan import ConditionNode, PlanNode
from repro.core.query import ConjunctiveQuery
from repro.verify.diagnostics import Diagnostic, make_diagnostic

if TYPE_CHECKING:
    from repro.faults.policy import FaultPolicy

__all__ = ["check_fault_tolerance"]


def _condition_paths(plan: PlanNode) -> list[tuple[str, ConditionNode]]:
    """Every condition node in the tree with its root-relative path."""
    found: list[tuple[str, ConditionNode]] = []

    def walk(node: PlanNode, path: str) -> None:
        if isinstance(node, ConditionNode):
            found.append((path, node))
            walk(node.below, f"{path}/below")
            walk(node.above, f"{path}/above")

    walk(plan, "root")
    return found


def check_fault_tolerance(
    plan: PlanNode,
    schema: Schema,
    policy: "FaultPolicy",
    query: ConjunctiveQuery | None = None,
) -> list[Diagnostic]:
    """Run the ``FT*`` rules for a plan executing under ``policy``."""
    # Imported lazily: repro.faults is a higher layer than repro.verify.
    from repro.faults.policy import DegradationMode

    findings: list[Diagnostic] = []
    mode = policy.degradation
    if mode is DegradationMode.IMPUTE and not policy.confirm_positives:
        findings.append(
            make_diagnostic(
                "FT001",
                "root",
                "IMPUTE degradation with confirm_positives disabled emits "
                "unverified positive verdicts from guessed branches",
                hint="enable confirm_positives or degrade with SKIP/ABSTAIN",
            )
        )
    if mode is not DegradationMode.ABSTAIN and query is None:
        findings.append(
            make_diagnostic(
                "FT002",
                "root",
                f"degradation mode {mode.value!r} requires the original "
                "query as its fallback path, but none is bound",
                hint="verify with query= or execute with ABSTAIN degradation",
            )
        )
    if query is not None and mode is DegradationMode.ABSTAIN:
        query_indices = set(query.attribute_indices)
        flagged: set[int] = set()
        for path, node in _condition_paths(plan):
            index = node.attribute_index
            if index in query_indices or index in flagged:
                continue
            if not 0 <= index < len(schema):
                continue  # STR002's finding; nothing sound to add here
            flagged.add(index)
            findings.append(
                make_diagnostic(
                    "FT003",
                    path,
                    f"conditioning-only attribute {schema[index].name!r} is "
                    "a single point of failure under ABSTAIN: tuples abstain "
                    "on a read the verdict never needed",
                    hint="prefer SKIP degradation so the query's own "
                    "predicates decide the tuple",
                )
            )
    return findings
