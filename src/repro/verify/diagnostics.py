"""Diagnostic records and the stable error-code catalog.

Every finding the verifier emits is a :class:`Diagnostic`: a stable
code (``SEM001``, ``BC004``, ...), a severity, the path of the node it
anchors to, a human-readable message, and a fix hint.  Codes are API —
tests, CI gates, and the cache-admission filter match on them — so they
are registered centrally in :data:`CODE_CATALOG` and never reused or
renumbered.  ``docs/VERIFIER.md`` renders the same catalog for humans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "Severity",
    "Diagnostic",
    "VerificationReport",
    "CODE_CATALOG",
    "make_diagnostic",
]


class Severity(enum.Enum):
    """How bad a finding is: ERROR blocks caching/shipping, WARNING is
    wasted energy or a smell, INFO is context."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return ("info", "warning", "error").index(self.value)

    def __str__(self) -> str:
        return self.value


# code -> (severity, title) for every rule the verifier implements.
# Stable: codes are never renumbered or reused for a different rule.
CODE_CATALOG: dict[str, tuple[Severity, str]] = {
    # Structural soundness (plan tree vs schema)
    "STR001": (Severity.ERROR, "unknown plan node type"),
    "STR002": (Severity.ERROR, "attribute index out of schema range"),
    "STR003": (Severity.ERROR, "attribute name disagrees with schema index"),
    "STR004": (Severity.ERROR, "predicate bounds exceed attribute domain"),
    # Semantic equivalence (plan vs query)
    "SEM001": (Severity.ERROR, "dropped conjunct: undetermined predicate missing from leaf"),
    "SEM002": (Severity.ERROR, "duplicate predicate step on one attribute"),
    "SEM003": (Severity.ERROR, "leaf evaluates a predicate that is not the query's"),
    "SEM004": (Severity.WARNING, "leaf step re-tests a predicate the range context already decides"),
    "SEM005": (Severity.ERROR, "verdict leaf not justified by its range context"),
    "SEM006": (Severity.ERROR, "verdict leaf contradicts its range context"),
    "SEM007": (Severity.ERROR, "sequential leaf under a non-conjunctive query"),
    # Range soundness (condition splits vs reachable context)
    "RNG001": (Severity.ERROR, "split unreachable: value outside the parent range context"),
    "RNG002": (Severity.WARNING, "condition split below an already-decided context"),
    "RNG003": (Severity.ERROR, "degenerate split below the domain minimum"),
    # Cost conservation (Equation 3, given a probability model)
    "COST001": (Severity.ERROR, "claimed expected cost disagrees with Eq. 3 recomputation"),
    "COST002": (Severity.ERROR, "branch probability outside [0, 1]"),
    "COST003": (Severity.ERROR, "leaf reach probabilities do not partition the context"),
    "COST004": (Severity.WARNING, "dead branch: reach probability is zero under the model"),
    # Dataflow analysis (interval abstract interpretation over the tree)
    "DF001": (Severity.WARNING, "dead branch: no tuple can reach it"),
    "DF002": (Severity.WARNING, "step predicate already decided by the path facts"),
    "DF003": (Severity.WARNING, "redundant re-acquisition of an already-observed attribute"),
    "DF004": (Severity.ERROR, "split value outside the feasible interval at the node"),
    "DF101": (Severity.ERROR, "cost-bound certificate violation"),
    # Fault tolerance (degraded-path soundness under a FaultPolicy)
    "FT001": (Severity.ERROR, "imputed positives emitted without confirmation"),
    "FT002": (Severity.ERROR, "SKIP/IMPUTE degradation configured without the query"),
    "FT003": (Severity.WARNING, "conditioning-only attribute is a SPOF under ABSTAIN"),
    # Bytecode safety (compiled plan byte strings)
    "BC001": (Severity.ERROR, "offset out of bounds or truncated node"),
    "BC002": (Severity.ERROR, "cyclic control flow in child offsets"),
    "BC003": (Severity.WARNING, "orphan bytes unreachable from the root"),
    "BC004": (Severity.ERROR, "overlapping or shared node extents"),
    "BC005": (Severity.ERROR, "size model mismatch: bytecode does not round-trip"),
    "BC006": (Severity.ERROR, "unknown node kind"),
    "BC007": (Severity.ERROR, "malformed node encoding"),
    "BC008": (Severity.ERROR, "plan nesting exceeds the verifiable depth"),
    # Translation validation (compiled kernel IR vs source plan)
    "TV001": (Severity.ERROR, "kernel does not cover the plan tree node-for-node"),
    "TV002": (Severity.ERROR, "mask wiring disagrees with the plan's branch structure"),
    "TV003": (Severity.ERROR, "sequential short-circuit chain broken or reordered"),
    "TV004": (Severity.ERROR, "kernel op parameters disagree with the plan node"),
    "TV005": (Severity.ERROR, "kernel verdict disagrees with the plan's decision"),
    "TV006": (Severity.ERROR, "kernel verdict masks do not partition the batch"),
    "TV007": (Severity.ERROR, "kernel cost charges disagree with path-static chargedness"),
    "TV008": (Severity.ERROR, "kernel cost counters do not conserve the Eq. 3 decomposition"),
    "TV009": (Severity.ERROR, "malformed kernel IR"),
    "TV010": (Severity.ERROR, "kernel compiled under stale statistics"),
    # Learned-planner provenance (bandit posteriors + regret ledger)
    "LRN001": (Severity.ERROR, "exploration spend exceeds the regret budget"),
    "LRN002": (Severity.ERROR, "regret-ledger sides do not reconcile with the observed total"),
    "LRN003": (Severity.ERROR, "malformed arm posterior"),
    "LRN004": (Severity.ERROR, "served arm missing from the branch's arm set"),
    "LRN005": (Severity.ERROR, "emitted plan disagrees with the served arm's order"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, node path, message, fix hint.

    ``path`` locates the node in the tree (``root``, ``root/below/above``,
    ``root/steps[2]``) or, for bytecode rules, the byte offset
    (``@0x001c``).
    """

    code: str
    severity: Severity
    path: str
    message: str
    hint: str = ""

    def format(self) -> str:
        line = f"{self.severity.value.upper():<7} {self.code} {self.path}: {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "path": self.path,
            "message": self.message,
            "hint": self.hint,
        }


def make_diagnostic(code: str, path: str, message: str, hint: str = "") -> Diagnostic:
    """Build a diagnostic with the catalog's severity for ``code``."""
    severity, _title = CODE_CATALOG[code]
    return Diagnostic(code=code, severity=severity, path=path, message=message, hint=hint)


@dataclass(frozen=True)
class VerificationReport:
    """The ordered findings of one verification run."""

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)
    subject: str = "plan"

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """No ERROR-severity findings (warnings do not block)."""
        return not self.errors

    def codes(self) -> frozenset[str]:
        return frozenset(d.code for d in self.diagnostics)

    def has(self, code: str) -> bool:
        return any(d.code == code for d in self.diagnostics)

    def merged(self, other: "VerificationReport") -> "VerificationReport":
        return VerificationReport(
            diagnostics=self.diagnostics + other.diagnostics, subject=self.subject
        )

    def format(self) -> str:
        if not self.diagnostics:
            return f"{self.subject}: clean (no diagnostics)"
        lines = [
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        ]
        lines.extend(d.format() for d in self.diagnostics)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_findings(
        cls, findings: Iterable[Diagnostic], subject: str = "plan"
    ) -> "VerificationReport":
        ordered = sorted(
            findings, key=lambda d: (-d.severity.rank, d.code, d.path)
        )
        return cls(diagnostics=tuple(ordered), subject=subject)
