"""Bytecode safety rules over compiled plans.

The Section 2.5 wire format ships plans into the network as opaque byte
strings, and the mote-side :class:`~repro.execution.bytecode.ByteCodeInterpreter`
trusts its input: a corrupted child offset sends it out of bounds, a
cycle hangs it, and a wrong length silently mis-prices dissemination.
This module is a *safe decoder*: it walks the byte layout with explicit
bounds, cycle, and overlap accounting, and converts every defect into a
diagnostic instead of an exception — random byte mutations must be
rejected, never crash the verifier (tested property).

Only after the layout walk comes back clean does it decode the plan via
:func:`~repro.execution.bytecode.decompile_plan` and demand the lossless
round-trip invariant ``compile_plan(decompile_plan(code)) == code`` with
``len(code) == plan.size_bytes()`` (BC005).
"""

from __future__ import annotations

import struct

from repro.core.attributes import Schema
from repro.core.plan import PlanNode
from repro.execution.bytecode import compile_plan, decompile_plan
from repro.exceptions import ReproError
from repro.verify.diagnostics import Diagnostic, Severity, make_diagnostic

__all__ = ["check_bytecode", "MAX_VERIFIABLE_DEPTH"]

_KIND_CONDITION = 0
_KIND_SEQUENTIAL = 1
_KIND_VERDICT = 2
_PAYLOAD_MASK = 0x3F
_FLAG_NEGATED = 0x01

# Guard for the checker's (and decompiler's) recursion; far above any plan a
# planner emits, far below Python's recursion limit.
MAX_VERIFIABLE_DEPTH = 128


def _at(address: int) -> str:
    return f"@0x{address:04x}"


def check_bytecode(
    code: bytes, schema: Schema
) -> tuple[list[Diagnostic], PlanNode | None]:
    """Run the ``BC*`` rules; return diagnostics and the decoded plan.

    The plan is only returned when the byte string decodes cleanly (no
    ERROR-severity layout findings), so callers can feed it to the tree
    rules for semantic/range/cost verification.
    """
    findings: list[Diagnostic] = []
    if not code:
        findings.append(
            make_diagnostic("BC001", _at(0), "empty bytecode has no root node")
        )
        return findings, None

    # extents: node start -> one-past-end, filled by the layout walk.
    extents: dict[int, int] = {}

    def walk(address: int, depth: int, ancestors: frozenset[int]) -> None:
        if depth > MAX_VERIFIABLE_DEPTH:
            findings.append(
                make_diagnostic(
                    "BC008",
                    _at(address),
                    f"plan nesting exceeds the verifiable depth "
                    f"({MAX_VERIFIABLE_DEPTH})",
                )
            )
            return
        if address in ancestors:
            findings.append(
                make_diagnostic(
                    "BC002",
                    _at(address),
                    "child offset points back to an ancestor node: "
                    "the interpreter would loop forever",
                )
            )
            return
        if address in extents:
            findings.append(
                make_diagnostic(
                    "BC004",
                    _at(address),
                    "node is shared by more than one parent: the layout "
                    "is a DAG, not the tree the size model prices",
                )
            )
            return
        if not 0 <= address < len(code):
            findings.append(
                make_diagnostic(
                    "BC001",
                    _at(address),
                    f"child offset {address} outside the "
                    f"{len(code)}-byte plan",
                )
            )
            return
        head = code[address]
        kind = head >> 6
        payload = head & _PAYLOAD_MASK
        if kind == _KIND_VERDICT:
            if payload > 1:
                findings.append(
                    make_diagnostic(
                        "BC007",
                        _at(address),
                        f"verdict payload bits 0x{payload:02x} are not a "
                        "boolean",
                    )
                )
                return
            extents[address] = address + 1
            return
        if kind == _KIND_SEQUENTIAL:
            if payload:
                findings.append(
                    make_diagnostic(
                        "BC007",
                        _at(address),
                        f"sequential head carries stray payload bits "
                        f"0x{payload:02x}",
                    )
                )
                return
            if address + 2 > len(code):
                findings.append(
                    make_diagnostic(
                        "BC001", _at(address), "sequential header truncated"
                    )
                )
                return
            count = code[address + 1]
            end = address + 2 + 6 * count
            if end > len(code):
                findings.append(
                    make_diagnostic(
                        "BC001",
                        _at(address),
                        f"sequential leaf of {count} steps runs past the "
                        f"end of the {len(code)}-byte plan",
                    )
                )
                return
            for position in range(count):
                cursor = address + 2 + 6 * position
                attribute_index, low, high, flags = struct.unpack_from(
                    ">BHHB", code, cursor
                )
                step_at = _at(cursor)
                if attribute_index >= len(schema):
                    findings.append(
                        make_diagnostic(
                            "BC007",
                            step_at,
                            f"step attribute index {attribute_index} out of "
                            f"range for a schema of {len(schema)} attributes",
                        )
                    )
                if low > high:
                    findings.append(
                        make_diagnostic(
                            "BC007",
                            step_at,
                            f"step encodes the empty range [{low}, {high}]",
                        )
                    )
                if flags & ~_FLAG_NEGATED:
                    findings.append(
                        make_diagnostic(
                            "BC007",
                            step_at,
                            f"step carries unknown flag bits 0x{flags:02x}",
                        )
                    )
            extents[address] = end
            return
        if kind == _KIND_CONDITION:
            if address + 7 > len(code):
                findings.append(
                    make_diagnostic(
                        "BC001", _at(address), "condition node truncated"
                    )
                )
                return
            split_value, below_address, above_address = struct.unpack_from(
                ">HHH", code, address + 1
            )
            if payload >= len(schema):
                findings.append(
                    make_diagnostic(
                        "BC007",
                        _at(address),
                        f"condition attribute index {payload} out of range "
                        f"for a schema of {len(schema)} attributes",
                    )
                )
                return
            if split_value < 2:
                findings.append(
                    make_diagnostic(
                        "RNG003",
                        _at(address),
                        f"split at {split_value} is below the 1-based "
                        "domain minimum; the below branch is empty",
                    )
                )
                return
            extents[address] = address + 7
            children = ancestors | {address}
            walk(below_address, depth + 1, children)
            walk(above_address, depth + 1, children)
            return
        findings.append(
            make_diagnostic(
                "BC006", _at(address), f"unknown node kind {kind}"
            )
        )

    walk(0, 0, frozenset())

    # Overlap and orphan accounting over the visited extents.
    ordered = sorted(extents.items())
    previous_end = 0
    covered = 0
    for start, end in ordered:
        if start < previous_end:
            findings.append(
                make_diagnostic(
                    "BC004",
                    _at(start),
                    f"node extent [{start}, {end}) overlaps the node "
                    f"ending at {previous_end}",
                )
            )
        covered += end - start
        previous_end = max(previous_end, end)
    if covered < len(code) and not any(
        finding.severity is Severity.ERROR for finding in findings
    ):
        findings.append(
            make_diagnostic(
                "BC003",
                _at(0),
                f"{len(code) - covered} byte(s) unreachable from the root: "
                "dead weight in the dissemination cost",
            )
        )

    if any(finding.severity is Severity.ERROR for finding in findings):
        return findings, None

    try:
        plan = decompile_plan(code, schema)
        recompiled = compile_plan(plan)
    except (ReproError, struct.error, IndexError) as error:
        findings.append(
            make_diagnostic(
                "BC005",
                _at(0),
                f"bytecode does not round-trip through the decompiler: {error}",
            )
        )
        return findings, None
    if recompiled != code or plan.size_bytes() != len(code):
        findings.append(
            make_diagnostic(
                "BC005",
                _at(0),
                f"size model mismatch: {len(code)} byte(s) on the wire, "
                f"size_bytes() = {plan.size_bytes()}, canonical recompile = "
                f"{len(recompiled)} byte(s)",
                hint="layout is non-canonical or carries padding",
            )
        )
        return findings, plan
    return findings, plan
