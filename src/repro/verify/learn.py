"""``LRN`` rules: audit a learned plan's bandit provenance.

A plan emitted by the learned planner carries a
:class:`~repro.learn.bandit.LearnedProvenance` — per-branch arm
posteriors plus the regret-ledger snapshot.  These rules re-check, from
the provenance alone, the contracts the learning loop claims to uphold:

- ``LRN001`` — the exploration side of the ledger never exceeds the
  regret budget (the bandit's hard gate actually held);
- ``LRN002`` — the ledger's four sides (warmup, conditioning, base,
  exploration) reconcile with the observed total cost, and no side is
  negative: every joule the stream metered landed on exactly one side;
- ``LRN003`` — every arm posterior is well-formed: non-negative pulls
  and weights, finite non-negative means sitting inside their own
  confidence interval, ``lcb <= ucb``;
- ``LRN004`` — each branch's served arm exists, arm ids are unique and
  densely numbered, and the arm set is non-empty;
- ``LRN005`` — the emitted plan is the plan the provenance says it is:
  walking the tree, every branch path resolves to a leaf whose step
  order equals the served arm's recorded order.

Like every verifier family these are static checks over data the
subject hands us — nothing is executed and nothing is trusted twice:
the ledger's own ``conserved()`` helper is *not* called, the sums are
re-derived here.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.plan import ConditionNode, PlanNode, SequentialNode, VerdictLeaf
from repro.verify.diagnostics import Diagnostic, make_diagnostic

if TYPE_CHECKING:
    from repro.learn.bandit import BranchProvenance, LearnedProvenance

__all__ = ["check_learned"]

_BOUND_SLACK = 1e-9


def check_learned(
    plan: PlanNode,
    provenance: "LearnedProvenance",
    tolerance: float = 1e-6,
) -> list[Diagnostic]:
    """Run the ``LRN`` family over ``plan`` and its provenance."""
    findings: list[Diagnostic] = []
    findings.extend(_check_ledger(provenance, tolerance))
    leaves = _collect_leaves(plan)
    for branch in provenance.branches:
        findings.extend(_check_branch(branch))
        findings.extend(_check_branch_plan(branch, leaves))
    return findings


def _check_ledger(
    provenance: "LearnedProvenance", tolerance: float
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    ledger = provenance.ledger
    if ledger.exploration_cost > ledger.budget * (1.0 + tolerance) + _BOUND_SLACK:
        findings.append(
            make_diagnostic(
                "LRN001",
                "root",
                f"exploration spend {ledger.exploration_cost:.6f} exceeds "
                f"the regret budget {ledger.budget:.6f}",
            )
        )
    sides = {
        "warmup": ledger.warmup_cost,
        "conditioning": ledger.conditioning_cost,
        "base": ledger.base_cost,
        "exploration": ledger.exploration_cost,
    }
    for name, value in sides.items():
        if not math.isfinite(value) or value < 0.0:
            findings.append(
                make_diagnostic(
                    "LRN002",
                    "root",
                    f"ledger side {name!r} is not a finite non-negative "
                    f"charge: {value}",
                )
            )
            return findings
    total = sum(sides.values())
    observed = provenance.observed_total
    scale = max(1.0, abs(observed))
    if abs(total - observed) > tolerance * scale:
        findings.append(
            make_diagnostic(
                "LRN002",
                "root",
                f"ledger sides sum to {total:.6f} but the stream metered "
                f"{observed:.6f} (gap {abs(total - observed):.6f})",
            )
        )
    return findings


def _check_branch(branch: "BranchProvenance") -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    arm_ids = [arm.arm_id for arm in branch.arms]
    if not branch.arms:
        findings.append(
            make_diagnostic(
                "LRN004", branch.path, "branch provenance carries no arms"
            )
        )
        return findings
    if sorted(arm_ids) != list(range(len(arm_ids))):
        findings.append(
            make_diagnostic(
                "LRN004",
                branch.path,
                f"arm ids are not densely numbered: {sorted(arm_ids)}",
            )
        )
    if branch.served_arm not in arm_ids:
        findings.append(
            make_diagnostic(
                "LRN004",
                branch.path,
                f"served arm {branch.served_arm} is not among arms "
                f"{sorted(arm_ids)}",
            )
        )
    if branch.span < 0.0 or not math.isfinite(branch.span):
        findings.append(
            make_diagnostic(
                "LRN003",
                branch.path,
                f"branch span must be finite and >= 0: {branch.span}",
            )
        )
    for arm in branch.arms:
        detail = _posterior_defect(arm)
        if detail is not None:
            findings.append(
                make_diagnostic(
                    "LRN003",
                    branch.path,
                    f"arm {arm.arm_id}: {detail}",
                )
            )
    return findings


def _posterior_defect(arm) -> str | None:
    if arm.pulls < 0:
        return f"negative pull count {arm.pulls}"
    if arm.weight < 0.0 or not math.isfinite(arm.weight):
        return f"observation weight must be finite and >= 0: {arm.weight}"
    if not math.isfinite(arm.mean) or arm.mean < 0.0:
        return f"mean cost must be finite and >= 0: {arm.mean}"
    if math.isnan(arm.lcb) or math.isnan(arm.ucb):
        return f"confidence bounds must not be NaN: [{arm.lcb}, {arm.ucb}]"
    if arm.lcb > arm.ucb + _BOUND_SLACK:
        return f"inverted confidence interval [{arm.lcb}, {arm.ucb}]"
    if arm.mean < arm.lcb - _BOUND_SLACK or arm.mean > arm.ucb + _BOUND_SLACK:
        return (
            f"mean {arm.mean} outside its own confidence interval "
            f"[{arm.lcb}, {arm.ucb}]"
        )
    if arm.prior < 0.0 or not math.isfinite(arm.prior):
        return f"prior cost must be finite and >= 0: {arm.prior}"
    return None


def _collect_leaves(plan: PlanNode) -> dict[str, PlanNode]:
    leaves: dict[str, PlanNode] = {}

    def walk(node: PlanNode, path: str) -> None:
        if isinstance(node, ConditionNode):
            walk(node.below, f"{path}/below")
            walk(node.above, f"{path}/above")
        else:
            leaves[path] = node

    walk(plan, "root")
    return leaves


def _check_branch_plan(
    branch: "BranchProvenance", leaves: dict[str, PlanNode]
) -> list[Diagnostic]:
    leaf = leaves.get(branch.path)
    if leaf is None:
        return [
            make_diagnostic(
                "LRN005",
                branch.path,
                "provenance branch path does not resolve to a leaf of the "
                "emitted plan",
            )
        ]
    served = next(
        (arm for arm in branch.arms if arm.arm_id == branch.served_arm), None
    )
    if served is None:
        return []  # already reported as LRN004
    if isinstance(leaf, SequentialNode):
        plan_order = tuple(step.attribute_index for step in leaf.steps)
    elif isinstance(leaf, VerdictLeaf):
        plan_order = ()
    else:  # pragma: no cover - defensive: unknown leaf kinds
        plan_order = None
    if plan_order != served.order:
        return [
            make_diagnostic(
                "LRN005",
                branch.path,
                f"emitted leaf order {plan_order} disagrees with the served "
                f"arm's order {served.order}",
            )
        ]
    return []
