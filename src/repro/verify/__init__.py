"""Static analysis over conditional-plan IR and compiled bytecode.

Plans cross two trust boundaries in the paper's architecture: the
planner hands an opaque tree to the execution layer, and Section 2.5
ships that tree into the network as a byte string.  Theorem 3.1 makes
dataset-relative plan optimization NP-complete, so planners lean on
heuristics — and a buggy heuristic, a corrupted byte, or a stale cached
plan silently returns wrong tuples or burns acquisition energy.  This
package is the correctness backstop: a rule-based verifier that walks
plans *without executing them* and emits structured diagnostics with
stable error codes (see :mod:`repro.verify.diagnostics` for the
catalog, mirrored in ``docs/VERIFIER.md``).

Six rule families:

- **semantic equivalence** — every root-to-leaf path decides exactly
  the query's conjuncts (``SEM*``);
- **range soundness** — condition splits partition the reachable range
  context; dead and degenerate branches are flagged (``RNG*``,
  ``STR*``);
- **cost conservation** — the claimed expected cost matches an
  independent Equation 3 recomputation and branch probabilities are
  sound (``COST*``);
- **dataflow analysis** — an interval-domain abstract interpretation
  (:mod:`repro.analysis`) proves dead branches, decided step
  predicates, redundant re-acquisitions, infeasible splits, and
  cost-bound certificate violations (``DF*``);
- **bytecode safety** — compiled plans have in-bounds, acyclic,
  non-overlapping node layouts and round-trip losslessly (``BC*``);
- **fault tolerance** — when a plan will run under a
  :class:`~repro.faults.FaultPolicy`, its degraded paths must remain
  semantically sound (``FT*``, :mod:`repro.verify.ft`);
- **learned provenance** — a plan emitted by the bandit planner must
  carry a regret ledger that conserves the budget and well-formed arm
  posteriors that agree with the emitted tree (``LRN*``,
  :mod:`repro.verify.learn`).

Entry points: :func:`verify_plan`, :func:`verify_bytecode`,
:func:`assert_valid_plan`, and :class:`PlanVerifier` for callers that
verify many plans against one schema/distribution.  A mutation corpus
for self-testing the verifier lives in :mod:`repro.verify.mutations`.
"""

from repro.verify.diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    Severity,
    VerificationReport,
)
from repro.verify.ft import check_fault_tolerance
from repro.verify.learn import check_learned
from repro.verify.mutations import MutationCase, bytecode_mutations, plan_mutations
from repro.verify.paths import ROOT_PATH, iter_plan_paths, node_at, step_path
from repro.verify.verifier import (
    PlanVerifier,
    assert_valid_plan,
    verify_bytecode,
    verify_plan,
)

__all__ = [
    "Severity",
    "Diagnostic",
    "VerificationReport",
    "CODE_CATALOG",
    "PlanVerifier",
    "verify_plan",
    "verify_bytecode",
    "assert_valid_plan",
    "check_fault_tolerance",
    "check_learned",
    "MutationCase",
    "plan_mutations",
    "bytecode_mutations",
    "ROOT_PATH",
    "iter_plan_paths",
    "node_at",
    "step_path",
]
