"""Tree-level verification rules: structure, semantics, ranges, cost.

All rules share one recursive walk that threads the *range context* — the
:class:`~repro.core.ranges.RangeVector` subproblem implied by the
condition splits on the path from the root (Section 3.2).  The context is
what makes the checks static: a leaf is judged against what the splits
above it *prove* about the tuple, never by executing the plan.

The semantic rules accept both query classes.  For a
:class:`~repro.core.query.ConjunctiveQuery` the leaf contract is exact:
a sequential leaf must test precisely the predicates still undetermined
in its context, and a verdict leaf must state the truth the context
proves.  For a :class:`~repro.core.boolean.BooleanQuery` sequential
leaves are rejected outright (fail-fast conjunction semantics do not
implement a general formula — the same restriction
:func:`~repro.planning.base.require_conjunctive` enforces at planning
time), while verdict leaves are still checked against ``truth_under``.

The cost rule consumes the shared per-node Equation 3 decomposition
(:func:`repro.core.cost.cost_decomposition` — the same helper behind
:func:`repro.obs.drift.predict_plan`): probability-sanity checks run
over its per-node records, and the summed decomposition is required to
agree with the closed-form :func:`repro.core.cost.expected_cost`
recursion, as is any claimed cost the planner reported.
"""

from __future__ import annotations

from repro.core.attributes import Schema
from repro.core.boolean import BooleanQuery
from repro.core.cost import cost_decomposition, expected_cost
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    VerdictLeaf,
)
from repro.core.predicates import Predicate, Truth
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import PlanError
from repro.probability.base import Distribution
from repro.verify.diagnostics import Diagnostic, make_diagnostic

__all__ = ["check_tree", "check_cost"]

AnyQuery = ConjunctiveQuery | BooleanQuery


def check_tree(
    plan: PlanNode,
    schema: Schema,
    query: AnyQuery | None = None,
    ranges: RangeVector | None = None,
) -> list[Diagnostic]:
    """Structural, range-soundness, and (with ``query``) semantic rules.

    ``ranges`` narrows the root context for verifying subtrees; it
    defaults to the full attribute space.
    """
    findings: list[Diagnostic] = []
    context = ranges if ranges is not None else RangeVector.full(schema)
    _walk(plan, context, "root", schema, query, findings)
    return findings


def _walk(
    node: PlanNode,
    ranges: RangeVector,
    path: str,
    schema: Schema,
    query: AnyQuery | None,
    findings: list[Diagnostic],
) -> None:
    if isinstance(node, VerdictLeaf):
        if query is not None:
            _check_verdict(node.verdict, ranges, path, query, findings)
        return
    if isinstance(node, SequentialNode):
        _check_sequential(node, ranges, path, schema, query, findings)
        return
    if isinstance(node, ConditionNode):
        index = node.attribute_index
        if not 0 <= index < len(schema):
            findings.append(
                make_diagnostic(
                    "STR002",
                    path,
                    f"condition node attribute index {index} out of range "
                    f"for a schema of {len(schema)} attributes",
                    hint="plan was built against a different schema",
                )
            )
            return
        attribute = schema[index]
        if node.attribute != attribute.name:
            findings.append(
                make_diagnostic(
                    "STR003",
                    path,
                    f"condition node names {node.attribute!r} but index "
                    f"{index} is {attribute.name!r}",
                )
            )
        if node.split_value < 2:
            findings.append(
                make_diagnostic(
                    "RNG003",
                    path,
                    f"split at {node.split_value} is below the 1-based "
                    "domain minimum; the below branch is empty",
                )
            )
            return
        interval = ranges[index]
        if not interval.low < node.split_value <= interval.high:
            findings.append(
                make_diagnostic(
                    "RNG001",
                    path,
                    f"split {attribute.name} >= {node.split_value} is "
                    f"unreachable given ancestor range "
                    f"[{interval.low}, {interval.high}]: the branches do "
                    "not partition the context",
                    hint="an ancestor split already decided this test",
                )
            )
            return
        if query is not None and query.truth_under(ranges) is not Truth.UNDETERMINED:
            findings.append(
                make_diagnostic(
                    "RNG002",
                    path,
                    f"context already decides the query; splitting on "
                    f"{attribute.name} acquires data for nothing",
                    hint="replace the subtree with a verdict leaf",
                )
            )
        below_ranges, above_ranges = ranges.split(index, node.split_value)
        _walk(node.below, below_ranges, path + "/below", schema, query, findings)
        _walk(node.above, above_ranges, path + "/above", schema, query, findings)
        return
    findings.append(
        make_diagnostic(
            "STR001", path, f"unknown plan node type {type(node).__name__}"
        )
    )


def _check_verdict(
    verdict: bool,
    ranges: RangeVector,
    path: str,
    query: AnyQuery,
    findings: list[Diagnostic],
) -> None:
    truth = query.truth_under(ranges)
    if truth is Truth.UNDETERMINED:
        findings.append(
            make_diagnostic(
                "SEM005",
                path,
                f"verdict {verdict} is not justified: the range context "
                "leaves the query undetermined",
                hint="the leaf must still evaluate the open predicates",
            )
        )
    elif (truth is Truth.TRUE) != verdict:
        findings.append(
            make_diagnostic(
                "SEM006",
                path,
                f"verdict {verdict} contradicts the range context, which "
                f"proves the query {truth.value.upper()}",
                hint="flipped verdict: the plan answers the wrong way",
            )
        )


def _check_sequential(
    node: SequentialNode,
    ranges: RangeVector,
    path: str,
    schema: Schema,
    query: AnyQuery | None,
    findings: list[Diagnostic],
) -> None:
    conjunctive = isinstance(query, ConjunctiveQuery)
    if isinstance(query, BooleanQuery) and node.steps:
        findings.append(
            make_diagnostic(
                "SEM007",
                path,
                "sequential (fail-fast conjunction) leaf cannot implement "
                "a non-conjunctive query",
                hint="boolean formulas need condition-node resolution",
            )
        )
        return

    query_predicates: dict[int, Predicate] | None = None
    undetermined: dict[int, Predicate] = {}
    proven_false: set[int] = set()
    if conjunctive:
        assert isinstance(query, ConjunctiveQuery)
        query_predicates = {
            index: predicate
            for predicate, index in zip(query.predicates, query.attribute_indices)
        }
        for index, predicate in query_predicates.items():
            truth = predicate.truth_under(ranges[index])
            if truth is Truth.UNDETERMINED:
                undetermined[index] = predicate
            elif truth is Truth.FALSE:
                proven_false.add(index)

    seen: set[int] = set()
    tests_proven_false = False
    for position, step in enumerate(node.steps):
        step_path = f"{path}/steps[{position}]"
        index = step.attribute_index
        if not 0 <= index < len(schema):
            findings.append(
                make_diagnostic(
                    "STR002",
                    step_path,
                    f"sequential step attribute index {index} out of range "
                    f"for a schema of {len(schema)} attributes",
                )
            )
            continue
        attribute = schema[index]
        predicate = step.predicate
        if predicate.attribute != attribute.name:
            findings.append(
                make_diagnostic(
                    "STR003",
                    step_path,
                    f"step predicate names {predicate.attribute!r} but "
                    f"index {index} is {attribute.name!r}",
                )
            )
        low = getattr(predicate, "low", None)
        high = getattr(predicate, "high", None)
        if low is not None and (low < 1 or high > attribute.domain_size):
            findings.append(
                make_diagnostic(
                    "STR004",
                    step_path,
                    f"step bounds [{low}, {high}] exceed domain "
                    f"[1, {attribute.domain_size}] of {attribute.name!r}",
                )
            )
        if index in seen:
            findings.append(
                make_diagnostic(
                    "SEM002",
                    step_path,
                    f"attribute {attribute.name!r} is tested more than once "
                    "in one leaf",
                    hint="the paper's problem class is one predicate per attribute",
                )
            )
            continue
        seen.add(index)
        if query_predicates is None:
            continue
        expected = query_predicates.get(index)
        if expected is None or expected != predicate:
            findings.append(
                make_diagnostic(
                    "SEM003",
                    step_path,
                    f"leaf evaluates {predicate.describe()!r}, which is "
                    "not one of the query's predicates",
                    hint="the plan answers a different query",
                )
            )
            continue
        if index in proven_false:
            tests_proven_false = True
        if index not in undetermined:
            findings.append(
                make_diagnostic(
                    "SEM004",
                    step_path,
                    f"context already decides {predicate.describe()!r}; "
                    "re-testing it wastes an acquisition",
                )
            )

    if query_predicates is None:
        return

    # A leaf that tests a predicate the context proves false always returns
    # False, which is exactly the query's truth there — any further gaps are
    # cost, not correctness.  Otherwise every still-open conjunct must appear.
    if tests_proven_false:
        return
    if proven_false:
        findings.append(
            make_diagnostic(
                "SEM006",
                path,
                "context proves the query FALSE but the leaf can still "
                "return TRUE (no step tests a failed conjunct)",
                hint="replace the leaf with a False verdict",
            )
        )
        return
    for index, predicate in undetermined.items():
        if index not in seen:
            findings.append(
                make_diagnostic(
                    "SEM001",
                    path,
                    f"dropped conjunct: {predicate.describe()!r} is "
                    "undetermined in this context but the leaf never tests it",
                    hint="the plan accepts tuples the query rejects",
                )
            )


def check_cost(
    plan: PlanNode,
    distribution: Distribution,
    claimed_cost: float | None = None,
    tolerance: float = 1e-5,
    cost_model: AcquisitionCostModel | None = None,
    ranges: RangeVector | None = None,
) -> list[Diagnostic]:
    """Cost-conservation rules (Equation 3) under ``distribution``.

    Consumes the shared per-node decomposition
    (:func:`repro.core.cost.cost_decomposition`), checking that every
    split probability lies in ``[0, 1]`` (COST002), that leaf
    reach-probabilities partition the root context (COST003), and
    flagging model-dead branches (COST004).  The summed decomposition
    must agree with :func:`repro.core.cost.expected_cost` — a guard that
    the per-node ledger stays exact — and with ``claimed_cost`` when
    given (COST001).
    """
    findings: list[Diagnostic] = []
    schema = distribution.schema
    context = ranges if ranges is not None else RangeVector.full(schema)
    records = cost_decomposition(
        plan, distribution, ranges=context, cost_model=cost_model
    )

    recomputed = 0.0
    leaf_mass = 0.0
    dead_branches = False
    for record in records.values():
        recomputed += record.cost
        if record.is_leaf:
            # Verdict/sequential leaves plus structurally-broken nodes
            # (the latter are reported by check_tree, not here).
            leaf_mass += record.reach
            continue
        if record.reach <= 0.0 or record.probability_below is None:
            continue  # inside a dead subtree: the parent already flagged it
        probability = record.probability_below
        if probability < -tolerance or probability > 1.0 + tolerance:
            findings.append(
                make_diagnostic(
                    "COST002",
                    record.path,
                    f"split probability {probability!r} lies outside [0, 1]",
                    hint="the probability model is inconsistent",
                )
            )
        clamped = min(1.0, max(0.0, probability))
        for branch, branch_probability in (
            ("below", clamped),
            ("above", 1.0 - clamped),
        ):
            if branch_probability <= 0.0:
                dead_branches = True
                findings.append(
                    make_diagnostic(
                        "COST004",
                        f"{record.path}/{branch}",
                        f"branch is dead under the model "
                        f"(P = {branch_probability:.3g}); it only runs "
                        "if live data drifts from the statistics",
                    )
                )
    # Dead subtrees carry zero reach, so the reachable leaf mass must
    # still account for the whole context.
    if abs(leaf_mass - 1.0) > max(tolerance, 1e-9) and not dead_branches:
        findings.append(
            make_diagnostic(
                "COST003",
                "root",
                f"leaf reach probabilities sum to {leaf_mass!r}, not 1: "
                "the splits do not partition the context",
            )
        )

    try:
        independent = expected_cost(plan, distribution, context, cost_model)
    except PlanError as error:
        findings.append(
            make_diagnostic(
                "COST001",
                "root",
                f"Equation 3 recomputation failed: {error}",
            )
        )
        return findings
    if not _close(recomputed, independent, tolerance):
        findings.append(
            make_diagnostic(
                "COST001",
                "root",
                f"independent Eq. 3 recomputations diverge: "
                f"{recomputed!r} (verifier) vs {independent!r} (core)",
                hint="cost conservation is violated at some condition node",
            )
        )
    if claimed_cost is not None and not _close(claimed_cost, independent, tolerance):
        findings.append(
            make_diagnostic(
                "COST001",
                "root",
                f"claimed expected cost {claimed_cost!r} disagrees with "
                f"the Eq. 3 recomputation {independent!r}",
                hint="the planner's cost bookkeeping drifted from the plan",
            )
        )
    return findings


def _close(a: float, b: float, tolerance: float) -> bool:
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))
