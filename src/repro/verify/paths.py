"""Stable node-path addressing for plan trees.

Diagnostics, runtime profiles, and trace events all need to point at
*one node* of a plan tree — and agree with each other about which node
that is.  The convention, introduced by the verifier's rule walk
(:mod:`repro.verify.rules`) and reused by the runtime observability
layer (:mod:`repro.obs`), is:

- the root is ``root``;
- a condition node's children are ``<path>/below`` and ``<path>/above``;
- a sequential node's steps address as ``<path>/steps[<i>]`` (steps are
  not nodes, but step-level diagnostics and profile counters anchor to
  them).

Because paths encode the route from the root, they are stable across
re-planning as long as the tree shape is unchanged, and a profile row
keyed by a path can be joined directly against verifier diagnostics for
the same plan.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.core.plan import ConditionNode, PlanNode, SequentialNode
from repro.exceptions import PlanError

__all__ = ["ROOT_PATH", "iter_plan_paths", "node_at", "step_path"]

ROOT_PATH = "root"

_STEP_SEGMENT = re.compile(r"^steps\[(\d+)\]$")


def step_path(path: str, step_index: int) -> str:
    """The address of step ``step_index`` of the sequential node at ``path``."""
    return f"{path}/steps[{step_index}]"


def iter_plan_paths(plan: PlanNode) -> Iterator[tuple[str, PlanNode]]:
    """Pre-order traversal of ``plan`` yielding ``(path, node)`` pairs."""

    def walk(node: PlanNode, path: str) -> Iterator[tuple[str, PlanNode]]:
        yield path, node
        if isinstance(node, ConditionNode):
            yield from walk(node.below, path + "/below")
            yield from walk(node.above, path + "/above")

    yield from walk(plan, ROOT_PATH)


def node_at(plan: PlanNode, path: str) -> PlanNode:
    """Resolve a node path back to the node it addresses.

    A ``steps[i]`` suffix resolves to the sequential node owning the
    step (steps are not nodes).  Raises :class:`PlanError` when the path
    does not address a node of ``plan``.
    """
    segments = path.split("/")
    if not segments or segments[0] != ROOT_PATH:
        raise PlanError(f"node path must start with {ROOT_PATH!r}, got {path!r}")
    node = plan
    for segment in segments[1:]:
        step = _STEP_SEGMENT.match(segment)
        if step is not None:
            if not isinstance(node, SequentialNode):
                raise PlanError(
                    f"path {path!r} addresses a step of a "
                    f"{type(node).__name__}, which has no steps"
                )
            index = int(step.group(1))
            if index >= len(node.steps):
                raise PlanError(
                    f"path {path!r} addresses step {index} but the node "
                    f"has {len(node.steps)} steps"
                )
            return node
        if not isinstance(node, ConditionNode):
            raise PlanError(
                f"path {path!r} descends through a {type(node).__name__}, "
                "which has no children"
            )
        if segment == "below":
            node = node.below
        elif segment == "above":
            node = node.above
        else:
            raise PlanError(f"unknown path segment {segment!r} in {path!r}")
    return node
