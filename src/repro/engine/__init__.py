"""TinyDB-flavoured facade: textual queries over the acquisitional stack."""

from repro.engine.engine import (
    AcquisitionalEngine,
    PreparedQuery,
    QueryResult,
    ResilientQueryResult,
)
from repro.engine.language import ParsedQuery, parse_query

__all__ = [
    "AcquisitionalEngine",
    "PreparedQuery",
    "QueryResult",
    "ResilientQueryResult",
    "ParsedQuery",
    "parse_query",
]
