"""The acquisitional query engine facade.

Ties the whole pipeline together behind a TinyDB-flavoured interface
(the system lineage the paper builds on): register a schema and historical
readings, then issue textual queries.  The engine plans each query with the
conditional heuristic (or any planner you inject), executes it over live
readings with full cost accounting — including the cost of acquiring
*selected* attributes for matching tuples, which the WHERE plan may not
have touched — and can EXPLAIN its plans with branch probabilities.

    engine = AcquisitionalEngine(schema, history)
    result = engine.execute("SELECT temp WHERE light >= 9 AND temp <= 4", live)
    print(engine.explain("SELECT temp WHERE light >= 9 AND temp <= 4"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.analysis import annotate_plan, plan_summary
from repro.core.attributes import Schema
from repro.core.cost import ExecutionObserver, dataset_execution
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.engine.language import ParsedQuery, parse_query
from repro.exceptions import FaultConfigError, QueryError
from repro.planning.base import Planner
from repro.planning.corrseq import CorrSeqPlanner
from repro.planning.exhaustive import ExhaustivePlanner
from repro.planning.greedy_conditional import GreedyConditionalPlanner
from repro.planning.split_points import SplitPointPolicy
from repro.probability.empirical import EmpiricalDistribution

if TYPE_CHECKING:
    from repro.compile.ir import CompiledPlan
    from repro.faults.model import FaultSchedule
    from repro.faults.policy import FaultPolicy

__all__ = [
    "PreparedQuery",
    "QueryResult",
    "ResilientQueryResult",
    "AcquisitionalEngine",
]

# Builds the planner used for each statement; receives the engine's fitted
# distribution so statistics are shared across statements.
PlannerFactory = Callable[[EmpiricalDistribution], Planner]


@dataclass(frozen=True)
class PreparedQuery:
    """A parsed, planned statement ready for repeated execution.

    Frozen and hashable (all fields are immutable), so prepared statements
    can key caches directly — the serving layer relies on this.
    ``statistics_version`` records which generation of engine statistics
    the plan was trained on; ``planning_seconds`` is the wall-clock cost
    of producing it.
    """

    text: str
    parsed: ParsedQuery
    plan: PlanNode
    expected_where_cost: float
    planner: str
    statistics_version: int = 1
    planning_seconds: float = 0.0

    @property
    def query(self) -> ConjunctiveQuery:
        return self.parsed.query


@dataclass(frozen=True)
class QueryResult:
    """Rows plus the acquisition-cost accounting for one execution."""

    columns: tuple[str, ...]
    rows: tuple[tuple[int, ...], ...]
    tuples_scanned: int
    where_cost: float
    projection_cost: float

    @property
    def total_cost(self) -> float:
        return self.where_cost + self.projection_cost

    @property
    def mean_cost_per_tuple(self) -> float:
        if self.tuples_scanned == 0:
            return 0.0
        return self.total_cost / self.tuples_scanned


@dataclass(frozen=True)
class ResilientQueryResult:
    """A :class:`QueryResult` plus the fault accounting behind it.

    ``abstained_rows`` indexes into the scanned readings: tuples the
    degraded execution withdrew from the result set rather than risk an
    unsound verdict.  ``retry_cost`` is the slice of ``where_cost`` spent
    on backed-off re-attempts — Eq. 3 predicts ``where_cost -
    retry_cost`` for the fault-free traversal.
    """

    result: QueryResult
    abstained_rows: tuple[int, ...]
    tuples_degraded: int
    acquisitions_failed: int
    retries_total: int
    retry_cost: float

    @property
    def tuples_abstained(self) -> int:
        return len(self.abstained_rows)


class AcquisitionalEngine:
    """Plan and execute textual acquisitional queries.

    Parameters
    ----------
    schema:
        The acquisitional table's schema.
    history:
        Historical readings used to fit planning statistics (the
        basestation's training data, Section 2.5).
    planner_factory:
        Optional override for how statements are planned; defaults to
        Heuristic-5 over a CorrSeq base, the paper's best practical
        configuration.
    smoothing:
        Laplace smoothing for the engine's statistics.
    verify_plans:
        Debug mode: statically verify every plan the engine produces
        (:func:`repro.verify.assert_valid_plan`), raising
        :class:`~repro.exceptions.PlanVerificationError` on ERROR-level
        diagnostics.  Off by default — planners are trusted in
        production; turn it on in tests and when developing planners.
    """

    def __init__(
        self,
        schema: Schema,
        history: np.ndarray,
        planner_factory: PlannerFactory | None = None,
        smoothing: float = 0.0,
        verify_plans: bool = False,
    ) -> None:
        self._schema = schema
        self._smoothing = float(smoothing)
        self._verify_plans = bool(verify_plans)
        self._distribution = EmpiricalDistribution(
            schema, history, smoothing=smoothing
        )
        self._planner_factory = planner_factory or (
            lambda distribution: GreedyConditionalPlanner(
                distribution, CorrSeqPlanner(distribution), max_splits=5
            )
        )
        self._prepared: dict[str, PreparedQuery] = {}
        self._statistics_version = 1
        self._statistics_listeners: list[Callable[[int], None]] = []

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def distribution(self) -> EmpiricalDistribution:
        return self._distribution

    @property
    def planner_factory(self) -> PlannerFactory:
        """The factory building this engine's conjunctive planners."""
        return self._planner_factory

    @property
    def statistics_version(self) -> int:
        """Generation counter for the engine's planning statistics.

        Bumps whenever the distribution is refitted (:meth:`refit`) or an
        external component reports that statistics moved
        (:meth:`bump_statistics_version`, e.g. an adaptive-stream replan).
        Plans trained under an older version are stale.
        """
        return self._statistics_version

    def add_statistics_listener(
        self, listener: Callable[[int], None]
    ) -> None:
        """Register a callback invoked with each new statistics version."""
        self._statistics_listeners.append(listener)

    def bump_statistics_version(self) -> int:
        """Invalidate every prepared plan: statistics have changed."""
        self._statistics_version += 1
        self._prepared.clear()
        for listener in self._statistics_listeners:
            listener(self._statistics_version)
        return self._statistics_version

    def refit(
        self, history: np.ndarray, smoothing: float | None = None
    ) -> int:
        """Refit planning statistics on fresh history.

        Rebuilds the empirical distribution, drops every prepared plan
        (they were trained on the old statistics), and bumps
        :attr:`statistics_version` so external plan caches invalidate too.
        Returns the new version.
        """
        if smoothing is not None:
            self._smoothing = float(smoothing)
        self._distribution = EmpiricalDistribution(
            self._schema, history, smoothing=self._smoothing
        )
        return self.bump_statistics_version()

    def prepare(self, text: str) -> PreparedQuery:
        """Parse and plan a statement (cached per query text).

        Conjunctive WHERE clauses go to the configured planner (Heuristic-5
        by default); disjunctive clauses go to the exhaustive planner with
        a coarse split-point policy, since sequential base planners carry
        conjunctive semantics only (Section 3.1 vs Section 4.1).
        """
        cached = self._prepared.get(text)
        if cached is not None:
            return cached
        parsed = parse_query(text, self._schema)
        prepared = self.prepare_parsed(parsed, text=text)
        self._prepared[text] = prepared
        return prepared

    def prepare_parsed(
        self, parsed: ParsedQuery, text: str = ""
    ) -> PreparedQuery:
        """Plan an already-parsed statement (no prepared-statement cache).

        The serving layer uses this after canonicalization, where the cache
        key is a query fingerprint rather than the raw text.
        """
        if parsed.is_conjunctive:
            planner = self._planner_factory(self._distribution)
        else:
            policy = SplitPointPolicy.equal_width(
                self._schema, [2] * len(self._schema)
            )
            planner = ExhaustivePlanner(
                self._distribution,
                split_policy=policy,
                max_subproblems=500_000,
            )
        result = planner.plan_timed(parsed.query)
        if self._verify_plans:
            from repro.verify import assert_valid_plan

            assert_valid_plan(
                result.plan,
                self._schema,
                query=parsed.query,
                distribution=self._distribution,
                claimed_cost=result.expected_cost,
                subject=f"plan[{result.planner}]",
            )
        return PreparedQuery(
            text=text,
            parsed=parsed,
            plan=result.plan,
            expected_where_cost=result.expected_cost,
            planner=result.planner,
            statistics_version=self._statistics_version,
            planning_seconds=result.planning_seconds,
        )

    def execute(self, text: str, readings: np.ndarray) -> QueryResult:
        """Run a statement over live readings with cost accounting.

        The WHERE clause runs through the conditional plan; for matching
        tuples, any *selected* attributes the plan did not already acquire
        are then acquired at their schema cost (the plan may well have read
        some of them while filtering — those are free to return).
        """
        return self.execute_prepared(self.prepare(text), readings)

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        readings: np.ndarray,
        observer: ExecutionObserver | None = None,
        kernel: "CompiledPlan | None" = None,
    ) -> QueryResult:
        """Run an already-prepared statement over live readings.

        ``observer`` (usually a :class:`repro.obs.PlanProfile`) meters the
        WHERE plan's per-node behaviour; post-WHERE projection
        acquisitions are accounted in ``projection_cost`` but are not
        node events, so they stay outside the profile.  A ``kernel``
        (a translation-validated :class:`~repro.compile.CompiledPlan`
        lowered from ``prepared.plan``) routes the WHERE clause through
        the columnar compiled tier instead of the interpreting walker;
        results are identical by the validator's proof.
        """
        matrix = self._validated(readings)
        if kernel is not None:
            from repro.compile.executor import execute_compiled

            outcome = execute_compiled(kernel, matrix, observer=observer)
        else:
            outcome = dataset_execution(
                prepared.plan, matrix, self._schema, observer=observer
            )
        extra = self._projection_extra(prepared, matrix)
        return self._build_result(
            prepared, matrix, outcome.costs, outcome.verdicts, extra
        )

    def execute_prepared_resilient(
        self,
        prepared: PreparedQuery,
        readings: np.ndarray,
        schedule: "FaultSchedule",
        rng: np.random.Generator,
        policy: "FaultPolicy | None" = None,
    ) -> ResilientQueryResult:
        """Run a prepared statement with fault injection and degradation.

        WHERE-clause acquisitions flow through a seeded
        :class:`~repro.faults.FaultInjector`; once retries are exhausted
        the configured :class:`~repro.faults.FaultPolicy` degrades the
        tuple (abstain / skip-to-predicates / impute).  Abstained tuples
        are excluded from the rows and reported in ``abstained_rows``.
        Projection acquisitions for matching tuples are charged at schema
        cost as in :meth:`execute_prepared` (result reporting is assumed
        reliable once a tuple matches).
        """
        from repro.faults.executor import FaultTolerantExecutor
        from repro.faults.policy import DegradationMode, FaultPolicy

        matrix = self._validated(readings)
        effective = policy if policy is not None else FaultPolicy()
        query = prepared.parsed.query if prepared.parsed.is_conjunctive else None
        if (
            query is None
            and effective.degradation is not DegradationMode.ABSTAIN
        ):
            raise FaultConfigError(
                "SKIP/IMPUTE degradation needs a conjunctive query as its "
                "fallback path; disjunctive statements must use ABSTAIN"
            )
        executor = FaultTolerantExecutor(
            self._schema,
            effective,
            query=query,
            distribution=self._distribution,
        )
        outcome = executor.run(prepared.plan, matrix, schedule, rng)
        verdicts = np.fromiter(
            (r.verdict is True for r in outcome.results),
            dtype=bool,
            count=len(outcome.results),
        )
        extra = self._projection_extra(prepared, matrix)
        result = self._build_result(
            prepared, matrix, outcome.costs, verdicts, extra
        )
        return ResilientQueryResult(
            result=result,
            abstained_rows=outcome.abstained,
            tuples_degraded=outcome.tuples_degraded,
            acquisitions_failed=outcome.acquisitions_failed,
            retries_total=outcome.retries_total,
            retry_cost=outcome.retry_cost,
        )

    def execute_prepared_many(
        self,
        prepared: PreparedQuery,
        readings_list: list[np.ndarray],
        observer: ExecutionObserver | None = None,
        kernel: "CompiledPlan | None" = None,
    ) -> list[QueryResult]:
        """Run one prepared statement over many batches in a single pass.

        The batches are stacked and executed through the plan once — the
        vectorized tree walk amortizes across every request sharing the
        plan — then per-batch results are sliced back out.  This is the
        serving layer's same-fingerprint admission path.  ``observer``
        meters the WHERE plan exactly as in :meth:`execute_prepared`,
        and ``kernel`` selects the compiled tier the same way.
        """
        matrices = [self._validated(readings) for readings in readings_list]
        if not matrices:
            return []
        stacked = np.vstack(matrices)
        if kernel is not None:
            from repro.compile.executor import execute_compiled

            outcome = execute_compiled(kernel, stacked, observer=observer)
        else:
            outcome = dataset_execution(
                prepared.plan, stacked, self._schema, observer=observer
            )
        extra = self._projection_extra(prepared, stacked)
        results: list[QueryResult] = []
        start = 0
        for matrix in matrices:
            end = start + matrix.shape[0]
            results.append(
                self._build_result(
                    prepared,
                    matrix,
                    outcome.costs[start:end],
                    outcome.verdicts[start:end],
                    extra[start:end],
                )
            )
            start = end
        return results

    def _validated(self, readings: np.ndarray) -> np.ndarray:
        matrix = np.asarray(readings)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise QueryError(
                f"readings shape {matrix.shape} incompatible with schema of "
                f"{len(self._schema)} attributes"
            )
        return matrix

    def _select_indices(
        self, prepared: PreparedQuery
    ) -> tuple[tuple[str, ...], list[int]]:
        if prepared.parsed.select_all:
            return self._schema.names, list(range(len(self._schema)))
        columns = prepared.parsed.select
        return tuple(columns), [
            self._schema.index_of(name) for name in columns
        ]

    def _build_result(
        self,
        prepared: PreparedQuery,
        matrix: np.ndarray,
        costs: np.ndarray,
        verdicts: np.ndarray,
        extra: np.ndarray,
    ) -> QueryResult:
        columns, select_indices = self._select_indices(prepared)
        matching = np.flatnonzero(verdicts)
        rows = tuple(
            tuple(int(value) for value in matrix[row, select_indices])
            for row in matching
        )
        return QueryResult(
            columns=tuple(columns),
            rows=rows,
            tuples_scanned=matrix.shape[0],
            where_cost=float(costs.sum()),
            projection_cost=float(extra[matching].sum()),
        )

    def explain(self, text: str) -> str:
        """Human-readable plan report with branch probabilities."""
        prepared = self.prepare(text)
        summary = plan_summary(prepared.plan)
        lines = [
            f"query: {text.strip()}",
            f"where clause: {prepared.query.describe()}",
            f"planner: {prepared.planner}",
            f"expected WHERE cost/tuple: {prepared.expected_where_cost:.2f}",
            f"plan: {summary.describe()}",
            "",
            annotate_plan(prepared.plan, self._distribution),
        ]
        return "\n".join(lines)

    def _projection_extra(
        self, prepared: PreparedQuery, matrix: np.ndarray
    ) -> np.ndarray:
        """Per-row cost of acquiring selected attributes post-WHERE.

        Attributes the WHERE plan acquired on a tuple's path are already
        cached on the mote; only genuinely-unread attributes cost extra.
        Per-path acquired sets are recovered with the same vectorized tree
        routing used for costing.  Callers sum the returned array over
        matching rows (non-matching tuples never reach projection).
        """
        _columns, select_indices = self._select_indices(prepared)
        extra = np.zeros(matrix.shape[0], dtype=np.float64)
        if not select_indices:
            return extra
        costs = self._schema.costs

        from repro.core.plan import ConditionNode, SequentialNode, VerdictLeaf

        def walk(node, rows: np.ndarray, acquired: frozenset[int]) -> None:
            if rows.size == 0:
                return
            if isinstance(node, (VerdictLeaf,)):
                _charge(rows, acquired)
                return
            if isinstance(node, ConditionNode):
                branch_acquired = acquired | {node.attribute_index}
                column = matrix[rows, node.attribute_index]
                below = column < node.split_value
                walk(node.below, rows[below], branch_acquired)
                walk(node.above, rows[~below], branch_acquired)
                return
            if isinstance(node, SequentialNode):
                from repro.core.cost import predicate_mask

                alive = rows
                local = set(acquired)
                for step in node.steps:
                    if alive.size == 0:
                        break
                    local.add(step.attribute_index)
                    satisfied = predicate_mask(
                        step.predicate, matrix[alive, step.attribute_index]
                    )
                    # Tuples rejected here never reach projection.
                    alive = alive[satisfied]
                _charge(alive, frozenset(local))
                return

        def _charge(rows: np.ndarray, acquired: frozenset[int]) -> None:
            unread = [
                index for index in select_indices if index not in acquired
            ]
            if unread:
                extra[rows] += sum(costs[index] for index in unread)

        walk(prepared.plan, np.arange(matrix.shape[0]), frozenset())
        return extra
