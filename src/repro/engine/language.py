"""A small declarative query language for acquisitional queries.

The paper's query class (Query 1, Section 1) is

    SELECT a1, a2, ..., an
    WHERE l1 <= a1 <= r1 AND ... AND lk <= ak <= rk

This module parses a TinyDB-flavoured text form of those queries — plus
disjunctions, the Section 3.1 general problem class — into the library's
typed objects:

    SELECT light, temp WHERE temp >= 5 AND light BETWEEN 2 AND 6
    SELECT * WHERE NOT humidity BETWEEN 3 AND 7 AND temp > 4
    SELECT * WHERE (temp >= 7 AND light >= 9) OR humidity <= 2

Grammar (case-insensitive keywords)::

    query      := SELECT select_list WHERE expr
    select_list:= '*' | name (',' name)*
    expr       := term (OR term)*
    term       := factor (AND factor)*
    factor     := '(' expr ')' | condition
    condition  := NOT? name BETWEEN int AND int
                | name ('<=' | '>=' | '<' | '>' | '=') int

A purely conjunctive WHERE clause lowers to
:class:`~repro.core.query.ConjunctiveQuery` (multiple comparisons over the
same attribute are intersected into one range predicate — the paper's one-
predicate-per-attribute class); anything containing OR lowers to
:class:`~repro.core.boolean.BooleanQuery`, which the exhaustive planner
optimizes directly.  ``NOT ... BETWEEN`` produces the Garden workload's
negated ranges.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.attributes import Schema
from repro.core.boolean import And, BooleanQuery, Formula, Leaf, Or
from repro.core.predicates import NotRangePredicate, RangePredicate
from repro.core.query import ConjunctiveQuery
from repro.exceptions import QueryError

__all__ = ["ParsedQuery", "parse_query"]

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<number>-?\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|=|<|>)|(?P<comma>,)|(?P<star>\*)|(?P<paren>[()]))"
)

_KEYWORDS = {"select", "where", "and", "or", "between", "not"}


@dataclass(frozen=True)
class ParsedQuery:
    """The outcome of parsing: projection list plus the typed query.

    ``query`` is a :class:`ConjunctiveQuery` when the WHERE clause is a
    pure conjunction and a :class:`BooleanQuery` otherwise; both expose
    ``evaluate``, ``truth_under``, ``describe`` and the planner interface.
    """

    select: tuple[str, ...]
    query: ConjunctiveQuery | BooleanQuery

    @property
    def select_all(self) -> bool:
        return self.select == ("*",)

    @property
    def is_conjunctive(self) -> bool:
        return isinstance(self.query, ConjunctiveQuery)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError(f"cannot tokenize query near {remainder[:20]!r}")
        token = match.group().strip()
        if token:
            tokens.append(token)
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[str], schema: Schema) -> None:
        self._tokens = tokens
        self._position = 0
        self._schema = schema

    def parse(self) -> ParsedQuery:
        self._expect_keyword("select")
        select = self._parse_select_list()
        self._expect_keyword("where")
        formula = self._parse_expr()
        if self._position != len(self._tokens):
            raise QueryError(
                f"unexpected trailing tokens: {self._tokens[self._position:]}"
            )
        query = _lower(self._schema, formula)
        if select != ("*",):
            for name in select:
                self._schema.index_of(name)  # validates existence
        return ParsedQuery(select=select, query=query)

    # -- token helpers --------------------------------------------------

    def _peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _take(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._take()
        if token.lower() != keyword:
            raise QueryError(f"expected {keyword.upper()!r}, got {token!r}")

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.lower() == keyword

    # -- grammar --------------------------------------------------------

    def _parse_select_list(self) -> tuple[str, ...]:
        if self._peek() == "*":
            self._take()
            return ("*",)
        names = [self._parse_name()]
        while self._peek() == ",":
            self._take()
            names.append(self._parse_name())
        return tuple(names)

    def _parse_name(self) -> str:
        token = self._take()
        if token.lower() in _KEYWORDS or not re.match(r"[A-Za-z_]", token):
            raise QueryError(f"expected attribute name, got {token!r}")
        return token

    def _parse_expr(self) -> Formula:
        terms = [self._parse_term()]
        while self._at_keyword("or"):
            self._take()
            terms.append(self._parse_term())
        if len(terms) == 1:
            return terms[0]
        return Or(*terms)

    def _parse_term(self) -> Formula:
        factors = [self._parse_factor()]
        while self._at_keyword("and"):
            self._take()
            factors.append(self._parse_factor())
        if len(factors) == 1:
            return factors[0]
        return And(*factors)

    def _parse_factor(self) -> Formula:
        if self._peek() == "(":
            self._take()
            inner = self._parse_expr()
            closing = self._take()
            if closing != ")":
                raise QueryError(f"expected ')', got {closing!r}")
            return inner
        return Leaf(self._parse_condition())

    def _parse_condition(self):
        negated = False
        if self._at_keyword("not"):
            self._take()
            negated = True
        name = self._parse_name()
        self._schema.index_of(name)  # validates attribute exists
        domain = self._schema[name].domain_size
        if self._at_keyword("between"):
            self._take()
            low = self._parse_int()
            self._expect_keyword("and")
            high = self._parse_int()
            if low > high:
                raise QueryError(
                    f"BETWEEN bounds reversed for {name!r}: {low} > {high}"
                )
            return self._make_predicate(name, low, high, negated)
        if negated:
            raise QueryError("NOT is only supported with BETWEEN")
        operator = self._take()
        value = self._parse_int()
        if operator == "=":
            return self._make_predicate(name, value, value, False)
        if operator == "<=":
            return self._make_predicate(name, 1, value, False)
        if operator == ">=":
            return self._make_predicate(name, value, domain, False)
        if operator == "<":
            return self._make_predicate(name, 1, value - 1, False)
        if operator == ">":
            return self._make_predicate(name, value + 1, domain, False)
        raise QueryError(f"unknown operator {operator!r}")

    def _make_predicate(self, name: str, low: int, high: int, negated: bool):
        domain = self._schema[name].domain_size
        low = max(1, low)
        high = min(domain, high)
        if low > high:
            raise QueryError(
                f"constraint on {name!r} excludes the whole domain"
            )
        predicate_cls = NotRangePredicate if negated else RangePredicate
        return predicate_cls(name, low, high)

    def _parse_int(self) -> int:
        token = self._take()
        try:
            return int(token)
        except ValueError:
            raise QueryError(f"expected integer, got {token!r}") from None


def _lower(schema: Schema, formula: Formula) -> ConjunctiveQuery | BooleanQuery:
    """Lower a formula to the tightest query class.

    Pure conjunctions become :class:`ConjunctiveQuery` with same-attribute
    ranges intersected; anything with OR stays a :class:`BooleanQuery`.
    """
    leaves = _conjunctive_leaves(formula)
    if leaves is None:
        return BooleanQuery(schema, formula)
    merged: dict[str, RangePredicate | NotRangePredicate] = {}
    for leaf in leaves:
        predicate = leaf.predicate
        existing = merged.get(predicate.attribute)
        if existing is None:
            merged[predicate.attribute] = predicate
            continue
        negated_pair = isinstance(existing, NotRangePredicate) or isinstance(
            predicate, NotRangePredicate
        )
        if negated_pair:
            raise QueryError(
                f"cannot combine multiple constraints on "
                f"{predicate.attribute!r} when one is negated"
            )
        low = max(existing.low, predicate.low)
        high = min(existing.high, predicate.high)
        if low > high:
            raise QueryError(
                f"constraints on {predicate.attribute!r} are contradictory "
                "(empty range)"
            )
        merged[predicate.attribute] = RangePredicate(
            predicate.attribute, low, high
        )
    return ConjunctiveQuery(schema, list(merged.values()))


def _conjunctive_leaves(formula: Formula) -> list[Leaf] | None:
    """The flat leaf list when ``formula`` is a pure conjunction, else None."""
    if isinstance(formula, Leaf):
        return [formula]
    if isinstance(formula, And):
        leaves: list[Leaf] = []
        for child in formula.children:
            child_leaves = _conjunctive_leaves(child)
            if child_leaves is None:
                return None
            leaves.extend(child_leaves)
        return leaves
    return None


def parse_query(text: str, schema: Schema) -> ParsedQuery:
    """Parse a query string against a schema.

    Raises :class:`~repro.exceptions.QueryError` with a pointed message on
    any syntax or semantic problem.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens, schema).parse()
