"""Cost-bound certificates and the ``DF101`` rule.

A :class:`CostCertificate` attaches to a plan a claimed Equation 3
expected cost for every subtree, keyed by the verifier's node paths and
conditioned on the subtree's range context (the cost is *per tuple
reaching the node*).  Producers:

- :meth:`repro.planning.ExhaustivePlanner` exports the bounds straight
  from its dynamic-programming cache — the claims really are the DP
  optima;
- :func:`certify_plan` recomputes them from any plan and distribution
  (the Eq. 3 fallback used by the heuristic planners and the CLI).

:func:`check_certificate` then re-derives every claim independently and
emits ``DF101`` (ERROR) when a claim diverges from the Eq. 3
recomputation, anchors to a node the plan does not have, or falls below
the admissible information-theoretic floor :func:`admissible_lower_bound`
— a sound lower bound ``l(R)`` on any correct plan's cost for the
subproblem, so a smaller claim is provably a lie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.dataflow import AnyQuery
from repro.core.attributes import Schema
from repro.core.cost import expected_cost
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import ConditionNode, PlanNode, SequentialNode, VerdictLeaf
from repro.core.predicates import Truth
from repro.core.ranges import RangeVector
from repro.exceptions import PlanError
from repro.probability.base import Distribution
from repro.verify.diagnostics import Diagnostic, make_diagnostic

__all__ = [
    "CostCertificate",
    "certify_plan",
    "admissible_lower_bound",
    "check_certificate",
    "DEFAULT_CERTIFICATE_TOLERANCE",
]

DEFAULT_CERTIFICATE_TOLERANCE = 1e-6


@dataclass(frozen=True)
class CostCertificate:
    """Per-subtree expected-cost claims for one plan.

    ``bounds[path]`` is the claimed Eq. 3 expected cost of the subtree
    rooted at ``path``, conditioned on the subtree's range context.
    ``source`` records who issued the claims (``"eq3"`` for the
    recomputation fallback, ``"exhaustive-dp"`` for the DP cache).
    """

    bounds: Mapping[str, float] = field(default_factory=dict)
    source: str = "eq3"

    def __len__(self) -> int:
        return len(self.bounds)

    @property
    def root_bound(self) -> float | None:
        return self.bounds.get("root")

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "bounds": {path: round(bound, 9) for path, bound in self.bounds.items()},
        }


def certify_plan(
    plan: PlanNode,
    distribution: Distribution,
    ranges: RangeVector | None = None,
    cost_model: AcquisitionCostModel | None = None,
) -> CostCertificate:
    """Issue an Eq. 3 certificate for every subtree of ``plan``.

    One recursive pass: each node's bound is assembled from its
    children's, so the whole certificate costs the same as one
    :func:`~repro.core.cost.expected_cost` call.  Raises
    :class:`~repro.exceptions.PlanError` on structurally broken plans
    (same contract as ``expected_cost``).
    """
    schema = distribution.schema
    context = ranges if ranges is not None else RangeVector.full(schema)
    bounds: dict[str, float] = {}

    def walk(node: PlanNode, node_ranges: RangeVector, path: str) -> float:
        if isinstance(node, VerdictLeaf):
            bounds[path] = 0.0
            return 0.0
        if isinstance(node, SequentialNode):
            cost = expected_cost(node, distribution, node_ranges, cost_model)
            bounds[path] = cost
            return cost
        if isinstance(node, ConditionNode):
            index = node.attribute_index
            if not 0 <= index < len(schema):
                raise PlanError(
                    f"condition node attribute index {index} out of range "
                    f"for a schema of {len(schema)} attributes"
                )
            interval = node_ranges[index]
            if not interval.low < node.split_value <= interval.high:
                raise PlanError(
                    f"plan splits {node.attribute!r} at {node.split_value} "
                    f"outside the reachable range "
                    f"[{interval.low}, {interval.high}]"
                )
            if node_ranges.is_acquired(index):
                acquisition = 0.0
            elif cost_model is None:
                acquisition = schema[index].cost
            else:
                acquisition = cost_model.cost(index, node_ranges.acquired_indices())
            probability = distribution.split_probability(
                index, node.split_value, node_ranges
            )
            below_ranges, above_ranges = node_ranges.split(index, node.split_value)
            below = walk(node.below, below_ranges, path + "/below")
            above = walk(node.above, above_ranges, path + "/above")
            cost = acquisition + probability * below + (1.0 - probability) * above
            bounds[path] = cost
            return cost
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    walk(plan, context, "root")
    return CostCertificate(bounds=bounds, source="eq3")


def admissible_lower_bound(
    query: AnyQuery | None,
    schema: Schema,
    ranges: RangeVector,
    cost_model: AcquisitionCostModel | None = None,
) -> float:
    """A sound floor ``l(R)`` on any correct plan's cost for a subproblem.

    When the query is still undetermined under ``ranges``, any correct
    plan must acquire at least one attribute backing an undetermined
    predicate before it can ever reach a verdict — predicates here are
    per-attribute, so reads of *other* attributes cannot decide them.
    The floor is therefore the cheapest such acquisition (zero if one of
    those attributes was already acquired).  Conditional cost models can
    make later acquisitions cheaper than the flat costs suggest, so the
    floor conservatively collapses to zero there; a decided (or absent)
    query needs no acquisitions at all.
    """
    if query is None or cost_model is not None:
        return 0.0
    if query.truth_under(ranges) is not Truth.UNDETERMINED:
        return 0.0
    undetermined = query.undetermined_predicates(ranges)
    if not undetermined:  # inconsistent query object; stay sound
        return 0.0
    floors = []
    for _predicate, index in undetermined:
        if ranges.is_acquired(index):
            return 0.0
        floors.append(schema[index].cost)
    return min(floors)


def check_certificate(
    plan: PlanNode,
    certificate: CostCertificate,
    distribution: Distribution,
    query: AnyQuery | None = None,
    ranges: RangeVector | None = None,
    cost_model: AcquisitionCostModel | None = None,
    tolerance: float = DEFAULT_CERTIFICATE_TOLERANCE,
) -> list[Diagnostic]:
    """Independently re-derive every certificate claim; emit ``DF101``.

    Claims on structurally broken plans are not checkable — the caller's
    structural rules gate this (mirroring the verifier's cost rules), and
    an unverifiable certificate yields a single ``DF101`` saying so.
    """
    findings: list[Diagnostic] = []
    try:
        recomputed = certify_plan(
            plan, distribution, ranges=ranges, cost_model=cost_model
        )
    except PlanError as error:
        return [
            make_diagnostic(
                "DF101",
                "root",
                f"certificate cannot be verified: {error}",
                hint="fix the structural errors, then re-certify",
            )
        ]
    schema = distribution.schema
    context = ranges if ranges is not None else RangeVector.full(schema)
    contexts = _subproblem_contexts(plan, context)
    for path, claimed in sorted(certificate.bounds.items()):
        actual = recomputed.bounds.get(path)
        if actual is None:
            findings.append(
                make_diagnostic(
                    "DF101",
                    path,
                    "certificate bound anchors to a node the plan does not have",
                    hint="the certificate was issued for a different plan shape",
                )
            )
            continue
        if abs(claimed - actual) > tolerance * max(1.0, abs(actual)):
            findings.append(
                make_diagnostic(
                    "DF101",
                    path,
                    f"claimed expected cost {claimed:.9g} disagrees with the "
                    f"Eq. 3 recomputation {actual:.9g}",
                    hint="re-certify the plan against its own distribution",
                )
            )
            continue
        floor = admissible_lower_bound(
            query, schema, contexts[path], cost_model=cost_model
        )
        if claimed < floor - tolerance:
            findings.append(
                make_diagnostic(
                    "DF101",
                    path,
                    f"claimed expected cost {claimed:.9g} falls below the "
                    f"admissible floor {floor:.9g} for the subproblem — no "
                    "correct plan can be that cheap",
                    hint="the certificate or the plan is lying about the "
                    "query it answers",
                )
            )
    return findings


def _subproblem_contexts(
    plan: PlanNode, context: RangeVector
) -> dict[str, RangeVector]:
    """Range context per node path (valid plans only — caller pre-checks)."""
    contexts: dict[str, RangeVector] = {}

    def walk(node: PlanNode, node_ranges: RangeVector, path: str) -> None:
        contexts[path] = node_ranges
        if isinstance(node, ConditionNode):
            below_ranges, above_ranges = node_ranges.split(
                node.attribute_index, node.split_value
            )
            walk(node.below, below_ranges, path + "/below")
            walk(node.above, above_ranges, path + "/above")

    walk(plan, context, "root")
    return contexts
