"""Static dataflow analysis over the plan IR.

An abstract interpretation in the interval domain
(:mod:`~repro.analysis.domain`) propagates, down every path of a plan
tree, what the path has already proven about the tuple: per-attribute
feasible intervals from ancestor condition splits and passed sequential
steps, plus the set of attributes already observed.  On top of that one
pass sit:

- the ``DF001``–``DF004`` diagnostics (:mod:`~repro.analysis.checks`):
  dead branches, decided step predicates, redundant re-acquisitions, and
  infeasible split points — verifier-grade findings the plan verifier,
  lint gate, and cache admission pick up automatically;
- cost-bound certificates (:mod:`~repro.analysis.certificates`): per
  subtree Eq. 3 expected-cost claims that
  :func:`~repro.analysis.certificates.check_certificate` re-derives
  independently, emitting ``DF101`` on any lie;
- the rewriter (:mod:`~repro.analysis.rewrite`):
  :func:`~repro.analysis.rewrite.optimize_plan` eliminates dead branches
  and subsumed predicates while provably preserving every tuple's
  verdict;
- the ``repro analyze`` CLI rendering (:mod:`~repro.analysis.render`)
  and the DF negative-control corpus (:mod:`~repro.analysis.mutations`).
"""

from repro.analysis.certificates import (
    CostCertificate,
    admissible_lower_bound,
    certify_plan,
    check_certificate,
)
from repro.analysis.checks import check_dataflow
from repro.analysis.dataflow import (
    NodeFacts,
    PlanAnalysis,
    StepFacts,
    analyze_plan,
)
from repro.analysis.domain import AbstractState
from repro.analysis.mutations import (
    CertificateCase,
    certificate_mutations,
    dataflow_mutations,
)
from repro.analysis.render import render_analysis
from repro.analysis.rewrite import optimize_plan

__all__ = [
    "AbstractState",
    "StepFacts",
    "NodeFacts",
    "PlanAnalysis",
    "analyze_plan",
    "check_dataflow",
    "CostCertificate",
    "certify_plan",
    "admissible_lower_bound",
    "check_certificate",
    "optimize_plan",
    "render_analysis",
    "CertificateCase",
    "dataflow_mutations",
    "certificate_mutations",
]
