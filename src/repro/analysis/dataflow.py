"""The abstract-interpretation pass over plan trees.

:func:`analyze_plan` pushes an :class:`~repro.analysis.domain.AbstractState`
from the root down every path of a plan, recording one
:class:`NodeFacts` per node (keyed by the verifier's node paths, in
pre-order).  Condition nodes fork the state through
:meth:`~repro.analysis.domain.AbstractState.assume_split`; sequential
leaves thread it step by step through
:meth:`~repro.analysis.domain.AbstractState.assume_pass`, switching to
bottom after a step the state proves always-false (no tuple survives
it).  Everything downstream — the ``DF*`` checks, the
:func:`~repro.analysis.rewrite.optimize_plan` rewriter, and the
``repro analyze`` tree rendering — consumes the resulting
:class:`PlanAnalysis` instead of re-walking the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.attributes import Schema
from repro.core.boolean import BooleanQuery
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
)
from repro.core.predicates import Truth
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.analysis.domain import AbstractState

__all__ = ["StepFacts", "NodeFacts", "PlanAnalysis", "analyze_plan"]

AnyQuery = ConjunctiveQuery | BooleanQuery


@dataclass(frozen=True)
class StepFacts:
    """Abstract facts at one sequential step.

    ``state`` holds before the step runs; ``truth`` is the step
    predicate's three-valued outcome under it (``None`` when the state
    is bottom or the step's attribute index is out of the schema).
    """

    state: AbstractState
    truth: Truth | None


@dataclass(frozen=True)
class NodeFacts:
    """Abstract facts at one plan node.

    ``state`` is the node's entry state; ``query_truth`` the query's
    three-valued truth under it (``None`` without a query or at
    bottom); ``steps`` carries per-step facts for sequential leaves.
    """

    path: str
    node: PlanNode
    state: AbstractState
    query_truth: Truth | None = None
    steps: tuple[StepFacts, ...] = ()

    @property
    def reachable(self) -> bool:
        return self.state.feasible


@dataclass(frozen=True)
class PlanAnalysis:
    """The result of one dataflow pass: per-node facts in pre-order."""

    plan: PlanNode
    schema: Schema
    query: AnyQuery | None
    facts: dict[str, NodeFacts] = field(default_factory=dict)

    def at(self, path: str) -> NodeFacts | None:
        return self.facts.get(path)

    def __iter__(self) -> Iterator[NodeFacts]:
        return iter(self.facts.values())

    def __len__(self) -> int:
        return len(self.facts)


def analyze_plan(
    plan: PlanNode,
    schema: Schema,
    query: AnyQuery | None = None,
    ranges: RangeVector | None = None,
) -> PlanAnalysis:
    """Run the interval-domain abstract interpretation over ``plan``.

    ``ranges`` narrows the entry state (verifying a subtree in
    isolation); it defaults to the full attribute space.  The pass never
    raises on broken plans: out-of-schema attribute indices simply stop
    the analysis below that node (the structural rules report them), and
    unreachable regions carry the bottom state.
    """
    analysis = PlanAnalysis(plan=plan, schema=schema, query=query)
    _walk(plan, AbstractState.top(schema, ranges), "root", schema, query, analysis)
    return analysis


def _query_truth(state: AbstractState, query: AnyQuery | None) -> Truth | None:
    if query is None or state.ranges is None:
        return None
    return query.truth_under(state.ranges)


def _walk(
    node: PlanNode,
    state: AbstractState,
    path: str,
    schema: Schema,
    query: AnyQuery | None,
    analysis: PlanAnalysis,
) -> None:
    query_truth = _query_truth(state, query)
    if isinstance(node, ConditionNode):
        analysis.facts[path] = NodeFacts(
            path=path, node=node, state=state, query_truth=query_truth
        )
        index = node.attribute_index
        if state.feasible and not 0 <= index < len(schema):
            return  # structurally broken (STR002): no facts below
        if not state.feasible:
            below = above = AbstractState.bottom()
        else:
            below, above = state.assume_split(index, node.split_value)
        _walk(node.below, below, path + "/below", schema, query, analysis)
        _walk(node.above, above, path + "/above", schema, query, analysis)
        return
    if isinstance(node, SequentialNode):
        steps: list[StepFacts] = []
        current = state
        for step in node.steps:
            index = step.attribute_index
            if not current.feasible or not 0 <= index < len(schema):
                steps.append(StepFacts(state=current, truth=None))
                continue
            truth = current.truth_of(step.predicate, index)
            steps.append(StepFacts(state=current, truth=truth))
            if truth is Truth.FALSE:
                # No tuple survives an always-false step: the tail of
                # the leaf is unreachable.
                current = AbstractState.bottom()
            else:
                current = current.assume_pass(step.predicate, index)
        analysis.facts[path] = NodeFacts(
            path=path,
            node=node,
            state=state,
            query_truth=query_truth,
            steps=tuple(steps),
        )
        return
    analysis.facts[path] = NodeFacts(
        path=path, node=node, state=state, query_truth=query_truth
    )
