"""Known-bad plans for the dataflow rules: the ``DF*`` negative controls.

Mirrors :mod:`repro.verify.mutations`: each case seeds one defect class
the dataflow analyzer must catch, named by its expected ``DF*`` code.
The analysis self-test asserts every case fires, and ``repro analyze
--suite`` runs the same corpus in CI so a silently-dead rule cannot
ship.  Certificate defects carry a plan *and* a lying
:class:`~repro.analysis.certificates.CostCertificate`, so they get their
own :class:`CertificateCase` shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.certificates import CostCertificate, certify_plan
from repro.core.plan import ConditionNode, PlanNode, VerdictLeaf
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.probability.base import Distribution
from repro.verify.mutations import (
    MutationCase,
    _leaf_for,
    _require_mutable_query,
    canonical_conditional_plan,
    canonical_sequential_plan,
)

__all__ = ["CertificateCase", "dataflow_mutations", "certificate_mutations"]


@dataclass(frozen=True)
class CertificateCase:
    """One seeded certificate defect and the code that must catch it."""

    name: str
    description: str
    expected_code: str
    plan: PlanNode
    certificate: CostCertificate


def dataflow_mutations(query: ConjunctiveQuery) -> list[MutationCase]:
    """Seeded dataflow defects, one case per DF rule."""
    _require_mutable_query(query)
    conditional = canonical_conditional_plan(query)
    index = conditional.attribute_index
    full = RangeVector.full(query.schema)
    below_ranges, _ = full.split(index, conditional.split_value)

    # Re-splitting the below branch at the same value: the inner split
    # falls outside its own [1, split-1] interval (DF004), its above
    # side is unreachable (DF001), and the re-test of an observed
    # attribute decides nothing (DF003).
    resplit = ConditionNode(
        attribute=conditional.attribute,
        attribute_index=index,
        split_value=conditional.split_value,
        below=ConditionNode(
            attribute=conditional.attribute,
            attribute_index=index,
            split_value=conditional.split_value,
            below=_leaf_for(query, below_ranges),
            above=_leaf_for(query, below_ranges),
        ),
        above=conditional.above,
    )
    # A full naive leaf under the FALSE-proving branch: its first step is
    # always-false given the split facts (DF002) on an observed
    # attribute (DF003).
    decided_step = ConditionNode(
        attribute=conditional.attribute,
        attribute_index=index,
        split_value=conditional.split_value,
        below=canonical_sequential_plan(query),
        above=conditional.above,
    )
    return [
        MutationCase(
            name="dead-branch",
            description="inner re-split leaves its above side unreachable",
            expected_code="DF001",
            plan=resplit,
        ),
        MutationCase(
            name="decided-step",
            description="leaf re-tests a predicate the split already refuted",
            expected_code="DF002",
            plan=decided_step,
        ),
        MutationCase(
            name="redundant-reacquisition",
            description="leaf re-reads an attribute the split observed, "
            "learning nothing",
            expected_code="DF003",
            plan=decided_step,
        ),
        MutationCase(
            name="infeasible-split",
            description="inner split value outside its feasible interval",
            expected_code="DF004",
            plan=resplit,
        ),
    ]


def certificate_mutations(
    query: ConjunctiveQuery, distribution: Distribution
) -> list[CertificateCase]:
    """Seeded cost-bound lies, every one a ``DF101``."""
    _require_mutable_query(query)
    conditional = canonical_conditional_plan(query)
    honest = certify_plan(conditional, distribution)
    inflated = dict(honest.bounds)
    inflated["root"] = inflated["root"] * 2.0 + 5.0
    phantom = dict(honest.bounds)
    phantom["root/below/below"] = 0.0
    return [
        CertificateCase(
            name="inflated-bound",
            description="root bound disagrees with the Eq. 3 recomputation",
            expected_code="DF101",
            plan=conditional,
            certificate=CostCertificate(bounds=inflated, source="mutated"),
        ),
        CertificateCase(
            name="phantom-node",
            description="bound anchors to a node the plan does not have",
            expected_code="DF101",
            plan=conditional,
            certificate=CostCertificate(bounds=phantom, source="mutated"),
        ),
        CertificateCase(
            name="free-lunch-verdict",
            description="zero-cost TRUE verdict claimed for an undetermined "
            "query — below the admissible floor",
            expected_code="DF101",
            plan=VerdictLeaf(verdict=True),
            certificate=CostCertificate(bounds={"root": 0.0}, source="mutated"),
        ),
    ]
