"""Dataflow diagnostics: the ``DF00x`` rule family.

These rules consume a :class:`~repro.analysis.dataflow.PlanAnalysis`
and report facts the abstract interpretation *proves* — unlike the
model-relative ``COST004`` (a branch dead under the statistics), a
``DF001`` branch is dead for every tuple, whatever the distribution.

==========  ========  ====================================================
Code        Severity  Meaning
==========  ========  ====================================================
``DF001``   WARNING   dead branch: the interval facts prove no tuple
                      reaches it (anchored at the topmost dead node)
``DF002``   WARNING   a step predicate is always-true or always-false
                      under the path facts — evaluating it is wasted work
``DF003``   WARNING   a node re-acquires an attribute already observed on
                      the path *and* learns nothing new from it
``DF004``   ERROR     a condition splits outside the feasible interval at
                      the node, so the test cannot go both ways
==========  ========  ====================================================

``DF101`` (cost-bound certificates) lives in
:mod:`repro.analysis.certificates`.
"""

from __future__ import annotations

from repro.analysis.dataflow import AnyQuery, NodeFacts, PlanAnalysis, analyze_plan
from repro.core.attributes import Schema
from repro.core.plan import ConditionNode, PlanNode, SequentialNode
from repro.core.predicates import Truth
from repro.core.ranges import RangeVector
from repro.verify.diagnostics import Diagnostic, make_diagnostic
from repro.verify.paths import step_path

__all__ = ["check_dataflow"]


def check_dataflow(
    plan: PlanNode,
    schema: Schema,
    query: AnyQuery | None = None,
    ranges: RangeVector | None = None,
    analysis: PlanAnalysis | None = None,
) -> list[Diagnostic]:
    """Run the DF001-DF004 rules over ``plan``.

    Pass a precomputed ``analysis`` to avoid re-walking the tree (the
    verifier and the rewriter share one pass).
    """
    if analysis is None:
        analysis = analyze_plan(plan, schema, query=query, ranges=ranges)
    findings: list[Diagnostic] = []
    for facts in analysis:
        if not facts.state.feasible:
            continue  # diagnostics anchor at the topmost dead node only
        if isinstance(facts.node, ConditionNode):
            findings.extend(_check_condition(facts, analysis, schema))
        elif isinstance(facts.node, SequentialNode):
            findings.extend(_check_sequential(facts, schema))
    return findings


def _attribute_name(schema: Schema, index: int) -> str:
    if 0 <= index < len(schema):
        return schema[index].name
    return f"attribute[{index}]"


def _check_condition(
    facts: NodeFacts, analysis: PlanAnalysis, schema: Schema
) -> list[Diagnostic]:
    node = facts.node
    assert isinstance(node, ConditionNode)
    findings: list[Diagnostic] = []
    index = node.attribute_index
    if not 0 <= index < len(schema):
        return findings  # STR002 territory: no interval to reason about
    interval = facts.state.interval(index)
    assert interval is not None
    name = _attribute_name(schema, index)
    decided = node.split_value <= interval.low or node.split_value > interval.high
    if decided:
        side = "above" if node.split_value <= interval.low else "below"
        findings.append(
            make_diagnostic(
                "DF004",
                facts.path,
                f"split T({name} >= {node.split_value}) lies outside the "
                f"feasible interval [{interval.low}, {interval.high}]; every "
                f"tuple routes {side}",
                hint="remove the split and keep the live side",
            )
        )
        if index in facts.state.observed:
            findings.append(
                make_diagnostic(
                    "DF003",
                    facts.path,
                    f"{name} was already observed on this path and the split "
                    "outcome is implied by the path facts",
                    hint="the re-test acquires nothing and decides nothing",
                )
            )
    for branch in ("below", "above"):
        child = analysis.at(f"{facts.path}/{branch}")
        if child is not None and not child.state.feasible:
            findings.append(
                make_diagnostic(
                    "DF001",
                    child.path,
                    f"no tuple can reach this branch: the feasible interval "
                    f"for {name} is [{interval.low}, {interval.high}] but the "
                    f"branch requires {name} "
                    + (
                        f"< {node.split_value}"
                        if branch == "below"
                        else f">= {node.split_value}"
                    ),
                    hint="dead code: splice in the live sibling",
                )
            )
    return findings


def _check_sequential(facts: NodeFacts, schema: Schema) -> list[Diagnostic]:
    node = facts.node
    assert isinstance(node, SequentialNode)
    findings: list[Diagnostic] = []
    for position, step_facts in enumerate(facts.steps):
        if not step_facts.state.feasible or step_facts.truth is None:
            continue  # unreachable tail or broken index: nothing provable
        step = node.steps[position]
        index = step.attribute_index
        name = _attribute_name(schema, index)
        path = step_path(facts.path, position)
        if step_facts.truth is not Truth.UNDETERMINED:
            outcome = "true" if step_facts.truth is Truth.TRUE else "false"
            interval = step_facts.state.interval(index)
            assert interval is not None
            findings.append(
                make_diagnostic(
                    "DF002",
                    path,
                    f"step predicate on {name} is always {outcome} given the "
                    f"path facts ({name} in [{interval.low}, {interval.high}])",
                    hint=(
                        "drop the step"
                        if step_facts.truth is Truth.TRUE
                        else "replace the leaf with a FALSE verdict"
                    ),
                )
            )
            if index in step_facts.state.observed:
                findings.append(
                    make_diagnostic(
                        "DF003",
                        path,
                        f"{name} was already observed on this path and the "
                        "step outcome is implied by the path facts",
                        hint="the re-test acquires nothing and decides nothing",
                    )
                )
    return findings
