"""The analysis-driven plan rewriter.

:func:`optimize_plan` shrinks a plan using only facts the abstract
interpretation proves, so every rewrite is behaviour-preserving: the
optimized plan produces the same verdict as the original on **every**
tuple (not just in expectation) and never acquires more than the
original.  The rewrites:

- *dead-branch elimination* — a condition whose split the interval facts
  decide routes every tuple one way; splice in the live side and skip
  the (now pointless) test.  The live side's interval context is exactly
  the parent's, so no downstream fact changes.
- *identical-branch collapse* — both sides are the same subtree (the
  exhaustive DP produces such free-split ties), so the test decides
  nothing; keep one side.
- *predicate subsumption* — a sequential step the path facts prove
  always-true is dropped (its narrowing is already implied, so later
  facts are unchanged); a step proved always-false makes the whole leaf
  a FALSE verdict (every tuple reaching the leaf either dies earlier or
  dies there, and a cheaper death is still a death).
- *query subsumption* (only with a ``query``) — a subtree whose range
  context already decides the query is replaced by the verdict leaf.

The result is re-verified before return: if a rewrite would introduce
any verifier ERROR the original plan did not have, the rewriter falls
back to the unoptimized input — soundness is never traded for size.
Without a ``schema`` only the structural rewrites run (this mode backs
:func:`repro.core.plan.simplify_plan`).
"""

from __future__ import annotations

from repro.analysis.dataflow import AnyQuery
from repro.analysis.domain import AbstractState
from repro.core.attributes import Schema
from repro.core.plan import (
    ConditionNode,
    PlanNode,
    SequentialNode,
    VerdictLeaf,
)
from repro.core.predicates import Truth
from repro.core.ranges import RangeVector
from repro.verify.diagnostics import Severity
from repro.verify.rules import check_tree

__all__ = ["optimize_plan"]


def optimize_plan(
    plan: PlanNode,
    schema: Schema | None = None,
    query: AnyQuery | None = None,
    ranges: RangeVector | None = None,
    verify: bool = True,
) -> PlanNode:
    """Rewrite ``plan`` into an equivalent, never-larger plan.

    With a ``schema`` the interval-dataflow rewrites run (dead branches,
    decided steps); ``query`` additionally enables query subsumption;
    without a schema only the structural rewrites apply.  ``verify=True``
    (the default) re-checks the candidate and falls back to ``plan``
    when the rewrite would add a verifier ERROR the original lacked —
    which the rewrites never should, so the gate is pure insurance.
    """
    if schema is None:
        return _rewrite(plan, None, None)
    state = AbstractState.top(schema, ranges)
    candidate = _rewrite(plan, state, _Context(schema, query))
    if candidate == plan:
        return plan
    if verify and not _no_new_errors(plan, candidate, schema, query, ranges):
        if query is None:
            return plan
        # Retry without query subsumption before giving up entirely.
        candidate = _rewrite(plan, state, _Context(schema, None))
        if candidate == plan or not _no_new_errors(
            plan, candidate, schema, query, ranges
        ):
            return plan
    return candidate


class _Context:
    """Immutable per-run parameters threaded through the rewrite walk."""

    __slots__ = ("schema", "query")

    def __init__(self, schema: Schema, query: AnyQuery | None) -> None:
        self.schema = schema
        self.query = query


def _no_new_errors(
    original: PlanNode,
    candidate: PlanNode,
    schema: Schema,
    query: AnyQuery | None,
    ranges: RangeVector | None,
) -> bool:
    def error_codes(node: PlanNode) -> set[str]:
        return {
            finding.code
            for finding in check_tree(node, schema, query=query, ranges=ranges)
            if finding.severity is Severity.ERROR
        }

    return error_codes(candidate) <= error_codes(original)


def _rewrite(
    node: PlanNode, state: AbstractState | None, context: _Context | None
) -> PlanNode:
    if (
        context is not None
        and context.query is not None
        and state is not None
        and state.ranges is not None
    ):
        truth = context.query.truth_under(state.ranges)
        if truth is not Truth.UNDETERMINED:
            return VerdictLeaf(verdict=truth is Truth.TRUE)
    if isinstance(node, ConditionNode):
        return _rewrite_condition(node, state, context)
    if isinstance(node, SequentialNode):
        return _rewrite_sequential(node, state, context)
    return node


def _rewrite_condition(
    node: ConditionNode, state: AbstractState | None, context: _Context | None
) -> PlanNode:
    index = node.attribute_index
    analyzable = (
        state is not None
        and state.feasible
        and context is not None
        and 0 <= index < len(context.schema)
    )
    if analyzable:
        assert state is not None
        below_state, above_state = state.assume_split(index, node.split_value)
        if not below_state.feasible:
            # Every tuple routes above; the above context equals the
            # parent's (same interval, and the read never happens).
            return _rewrite(node.above, state, context)
        if not above_state.feasible:
            return _rewrite(node.below, state, context)
    else:
        below_state = above_state = None if state is None else AbstractState.bottom()
    below = _rewrite(node.below, below_state, context)
    above = _rewrite(node.above, above_state, context)
    if below == above:
        return below
    if below is node.below and above is node.above:
        return node
    return ConditionNode(
        attribute=node.attribute,
        attribute_index=node.attribute_index,
        split_value=node.split_value,
        below=below,
        above=above,
    )


def _rewrite_sequential(
    node: SequentialNode, state: AbstractState | None, context: _Context | None
) -> PlanNode:
    if state is None or not state.feasible or context is None:
        if not node.steps:
            return VerdictLeaf(verdict=True)
        return node
    kept = []
    current = state
    analyzing = True
    for step in node.steps:
        index = step.attribute_index
        if not analyzing or not 0 <= index < len(context.schema):
            # Out-of-schema step: no facts — keep it and everything after.
            analyzing = False
            kept.append(step)
            continue
        truth = current.truth_of(step.predicate, index)
        if truth is Truth.TRUE:
            continue  # implied by the path facts: narrowing is a no-op
        if truth is Truth.FALSE:
            # Tuples failing an earlier kept step die there; the rest die
            # here.  Either way the leaf's verdict is FALSE for every
            # tuple, and skipping the acquisitions only cheapens it.
            return VerdictLeaf(verdict=False)
        kept.append(step)
        current = current.assume_pass(step.predicate, index)
    if not kept:
        return VerdictLeaf(verdict=True)
    if len(kept) == len(node.steps):
        return node
    return SequentialNode(steps=tuple(kept))
