"""The interval abstract domain for plan dataflow analysis.

An :class:`AbstractState` over-approximates everything the plan has
*proven* about the tuple at a program point: for every attribute, a
closed interval of values the tuple may still take (a
:class:`~repro.core.ranges.RangeVector`), plus the set of attribute
indices already *observed* (read) on the path.  Facts come from two
sources:

- an ancestor :class:`~repro.core.plan.ConditionNode` split
  ``T(X >= x)`` narrows ``X``'s interval to one side
  (:meth:`AbstractState.assume_split`);
- a passed :class:`~repro.core.plan.SequentialStep` predicate narrows
  its attribute's interval to the predicate-satisfying values
  (:meth:`AbstractState.assume_pass`).

Plans are trees, so the transfer functions run top-down in one pass —
no fixpoint iteration is needed.  The bottom element (``ranges is
None``) marks program points no tuple can reach: an empty split side or
the tail of a leaf after an always-false step.  All transfer functions
are *sound over-approximations*: every concrete tuple reaching a point
satisfies the point's abstract state, so a predicate the state proves
TRUE/FALSE really is decided for every such tuple.  The one deliberate
precision loss is a :class:`~repro.core.predicates.NotRangePredicate`
whose excluded window falls strictly inside the interval — passing it
punches a hole intervals cannot represent, so the state keeps the whole
interval (still sound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import Schema
from repro.core.predicates import (
    NotRangePredicate,
    Predicate,
    RangePredicate,
    Truth,
)
from repro.core.ranges import Range, RangeVector

__all__ = ["AbstractState"]


@dataclass(frozen=True)
class AbstractState:
    """Abstract facts at one plan point: feasible intervals + observed set.

    ``ranges is None`` is the bottom element: the point is unreachable.
    ``observed`` holds the schema indices of every attribute read on the
    path (condition-node tests and sequential-step evaluations) — reads
    are cached by the executor, so a later test on an observed attribute
    is free but may still be redundant.
    """

    ranges: RangeVector | None
    observed: frozenset[int] = frozenset()

    @classmethod
    def top(cls, schema: Schema, ranges: RangeVector | None = None) -> "AbstractState":
        """The entry state: full (or caller-narrowed) ranges, nothing observed.

        A caller-supplied ``ranges`` narrows the root context (verifying
        a subtree in isolation); its already-narrowed attributes count as
        observed, matching :meth:`RangeVector.acquired_indices`.
        """
        context = ranges if ranges is not None else RangeVector.full(schema)
        return cls(ranges=context, observed=context.acquired_indices())

    @classmethod
    def bottom(cls) -> "AbstractState":
        """The unreachable state."""
        return cls(ranges=None, observed=frozenset())

    @property
    def feasible(self) -> bool:
        return self.ranges is not None

    def interval(self, index: int) -> Range | None:
        """The feasible interval for attribute ``index`` (None at bottom)."""
        if self.ranges is None:
            return None
        return self.ranges[index]

    def truth_of(self, predicate: Predicate, index: int) -> Truth:
        """Three-valued predicate truth under this state's interval.

        Undefined at bottom — callers must check :attr:`feasible` first.
        """
        assert self.ranges is not None, "truth_of is undefined at bottom"
        return predicate.truth_under(self.ranges[index])

    def observe(self, index: int) -> "AbstractState":
        """Record that attribute ``index`` was read (no interval change)."""
        if self.ranges is None or index in self.observed:
            return self
        return AbstractState(ranges=self.ranges, observed=self.observed | {index})

    def assume_split(self, index: int, split_value: int) -> tuple["AbstractState", "AbstractState"]:
        """Transfer function for ``T(X_index >= split_value)``.

        Returns the (below, above) child states.  A side whose interval
        would be empty is bottom — that child is unreachable for every
        tuple consistent with this state.  Both sides observe the
        attribute: the node reads it before routing.
        """
        if self.ranges is None:
            return AbstractState.bottom(), AbstractState.bottom()
        interval = self.ranges[index]
        observed = self.observed | {index}
        if split_value <= interval.low:
            below: AbstractState = AbstractState.bottom()
        else:
            clipped = Range(interval.low, min(interval.high, split_value - 1))
            below = AbstractState(self.ranges.with_range(index, clipped), observed)
        if split_value > interval.high:
            above: AbstractState = AbstractState.bottom()
        else:
            clipped = Range(max(interval.low, split_value), interval.high)
            above = AbstractState(self.ranges.with_range(index, clipped), observed)
        return below, above

    def assume_pass(self, predicate: Predicate, index: int) -> "AbstractState":
        """Transfer function for surviving a sequential step.

        Narrows the attribute's interval to the values satisfying
        ``predicate`` (where intervals can express it) and records the
        read.  Returns bottom when no value in the interval satisfies
        the predicate — the step is always-false and its survivors'
        state is unreachable.
        """
        if self.ranges is None:
            return self
        interval = self.ranges[index]
        observed = self.observed | {index}
        narrowed = _pass_interval(predicate, interval)
        if narrowed is None:
            return AbstractState.bottom()
        return AbstractState(self.ranges.with_range(index, narrowed), observed)

    def describe(self, schema: Schema | None = None) -> str:
        """Compact one-line rendering for the ``repro analyze`` tree view."""
        if self.ranges is None:
            return "unreachable"
        parts = []
        for index, interval in enumerate(self.ranges):
            name = schema[index].name if schema is not None else f"x{index}"
            mark = "*" if index in self.observed else ""
            parts.append(f"{name}{mark}:[{interval.low},{interval.high}]")
        return " ".join(parts)


def _pass_interval(predicate: Predicate, interval: Range) -> Range | None:
    """The sub-interval of ``interval`` surviving ``predicate``, or None.

    For predicates intervals cannot represent exactly (an interior
    excluded window, or an unknown predicate class) the result is the
    smallest *interval* over-approximation — possibly ``interval``
    itself.
    """
    if isinstance(predicate, RangePredicate):
        return interval.intersection(Range(predicate.low, predicate.high))
    if isinstance(predicate, NotRangePredicate):
        window = Range(predicate.low, predicate.high)
        if interval.is_subset_of(window):
            return None  # every value excluded: always-false
        if not interval.intersects(window):
            return interval  # window misses the interval entirely
        if window.low <= interval.low:
            # Window clips the low end: survivors sit above it.
            return Range(window.high + 1, interval.high)
        if window.high >= interval.high:
            # Window clips the high end: survivors sit below it.
            return Range(interval.low, window.low - 1)
        return interval  # interior hole: not interval-representable
    return interval  # unknown predicate class: no facts, stay sound
