"""Human-readable rendering of a dataflow analysis.

:func:`render_analysis` draws the plan tree with each node's abstract
state alongside it — the feasible interval per attribute (``*`` marks
attributes already observed on the path), the query's three-valued truth
where known, and per-step predicate verdicts for sequential leaves.
``repro analyze`` prints exactly this.
"""

from __future__ import annotations

from repro.analysis.dataflow import NodeFacts, PlanAnalysis
from repro.core.plan import ConditionNode, SequentialNode, VerdictLeaf
from repro.core.predicates import Truth

__all__ = ["render_analysis"]

_TRUTH_LABEL = {
    Truth.TRUE: "always true",
    Truth.FALSE: "always false",
    Truth.UNDETERMINED: "undetermined",
}


def render_analysis(analysis: PlanAnalysis) -> str:
    """Render the analyzed plan as an annotated tree, one node per line."""
    lines: list[str] = []
    _render(analysis, "root", "", "", lines)
    return "\n".join(lines)


def _label(facts: NodeFacts) -> str:
    node = facts.node
    if isinstance(node, ConditionNode):
        return f"T({node.attribute} >= {node.split_value})"
    if isinstance(node, SequentialNode):
        if not node.steps:
            return "sequential (empty: TRUE)"
        return f"sequential ({len(node.steps)} steps)"
    if isinstance(node, VerdictLeaf):
        return f"verdict {'TRUE' if node.verdict else 'FALSE'}"
    return type(node).__name__


def _annotations(facts: NodeFacts, analysis: PlanAnalysis) -> str:
    parts = [facts.state.describe(analysis.schema)]
    if facts.query_truth is not None:
        parts.append(f"query {_TRUTH_LABEL[facts.query_truth]}")
    return "  [" + "; ".join(parts) + "]"


def _render(
    analysis: PlanAnalysis,
    path: str,
    prefix: str,
    child_prefix: str,
    lines: list[str],
) -> None:
    facts = analysis.at(path)
    tag = path.rsplit("/", maxsplit=1)[-1]
    if facts is None:
        lines.append(f"{prefix}{tag}: (not analyzed: parent is broken)")
        return
    lines.append(f"{prefix}{tag}: {_label(facts)}{_annotations(facts, analysis)}")
    node = facts.node
    if isinstance(node, SequentialNode):
        for position, step_facts in enumerate(facts.steps):
            step = node.steps[position]
            if step_facts.truth is None:
                verdict = (
                    "unreachable"
                    if not step_facts.state.feasible
                    else "not analyzable"
                )
            else:
                verdict = _TRUTH_LABEL[step_facts.truth]
            lines.append(
                f"{child_prefix}    steps[{position}] "
                f"{step.predicate.describe()}  -> {verdict}"
            )
        return
    if isinstance(node, ConditionNode):
        _render(
            analysis,
            f"{path}/below",
            f"{child_prefix}├─ ",
            f"{child_prefix}│  ",
            lines,
        )
        _render(
            analysis,
            f"{path}/above",
            f"{child_prefix}└─ ",
            f"{child_prefix}   ",
            lines,
        )
