"""`BanditPlanner`: the Planner-shaped face of the order bandit.

``plan`` is one-shot and side-effect free like every other planner: it
builds a fresh :class:`~repro.learn.bandit.OrderBanditEnsemble` from the
planner's distribution, emits the prior-best composite plan, and stamps
the full :class:`~repro.learn.bandit.LearnedProvenance` onto the
:class:`~repro.planning.base.PlanningResult` so the verifier's ``LRN``
rules can audit it.  The reported ``expected_cost`` is the honest Eq. 3
expectation of the emitted plan under the planner's distribution — the
same contract every static planner honors, so the verifier's cost
conservation rule (``COST001``) holds unchanged.

Learning happens when the same ensemble is *driven*: the streaming layer
(:class:`~repro.learn.stream.LearnedStreamExecutor`) builds ensembles
via :meth:`BanditPlanner.build_ensemble` and feeds realized per-tuple
costs back through the bandit loop.
"""

from __future__ import annotations

from typing import Callable

from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import PlanNode
from repro.core.query import ConjunctiveQuery
from repro.exceptions import LearningError
from repro.learn.arms import DEFAULT_MAX_ARM_PREDICATES
from repro.learn.bandit import OrderBanditEnsemble
from repro.learn.ledger import RegretLedger
from repro.planning.base import (
    Planner,
    PlannerStats,
    PlanningResult,
    require_conjunctive,
)
from repro.probability.base import Distribution

__all__ = ["BanditPlanner", "DEFAULT_REGRET_PULLS", "default_regret_budget"]

# Default exploration allowance: enough budget for this many full-price
# "worst possible" pulls.  Streams that want tighter control pass an
# explicit regret_budget.
DEFAULT_REGRET_PULLS = 64

SkeletonFactory = Callable[[Distribution], Planner]


def default_regret_budget(schema, query: ConjunctiveQuery) -> float:
    """``DEFAULT_REGRET_PULLS`` times the worst-case per-tuple cost."""
    per_tuple = sum(
        float(schema[index].cost) for index in query.attribute_indices
    )
    return DEFAULT_REGRET_PULLS * per_tuple


class BanditPlanner(Planner):
    """Online planner over branch-local predicate orders.

    Parameters
    ----------
    distribution:
        The statistics arms are priored from (and skeletons built from).
    regret_budget:
        Hard cap on exploration spend charged to the Eq. 3 ledger;
        ``None`` derives :func:`default_regret_budget` per query.
    skeleton_planner:
        Optional factory building the conditioning-skeleton planner from
        a distribution (e.g. ``lambda d: GreedyConditionalPlanner(d,
        CorrSeqPlanner(d), max_splits=3)``).  ``None`` plans flat:
        one bandit over full-query orders.
    delta:
        PAO confidence parameter for swap/commit decisions.
    burst_pulls:
        Minimum full-information pulls per exploration burst before the
        paired evidence may settle the burst.
    posterior_decay:
        Per-round discount on observation weight (D-UCB); 1.0 keeps
        plain running means (the convergent, stationary setting).
    """

    name = "bandit"

    def __init__(
        self,
        distribution: Distribution,
        cost_model: AcquisitionCostModel | None = None,
        *,
        regret_budget: float | None = None,
        skeleton_planner: SkeletonFactory | None = None,
        delta: float = 0.05,
        burst_pulls: int = 12,
        posterior_decay: float = 1.0,
        max_arm_predicates: int = DEFAULT_MAX_ARM_PREDICATES,
        prior_weight: float = 1.0,
    ) -> None:
        super().__init__(distribution, cost_model)
        if regret_budget is not None and regret_budget < 0.0:
            raise LearningError(
                f"regret_budget must be non-negative: {regret_budget}"
            )
        self._regret_budget = regret_budget
        self._skeleton_planner = skeleton_planner
        self._delta = delta
        self._burst_pulls = burst_pulls
        self._posterior_decay = posterior_decay
        self._max_arm_predicates = max_arm_predicates
        self._prior_weight = prior_weight

    def budget_for(self, query: ConjunctiveQuery) -> float:
        if self._regret_budget is not None:
            return self._regret_budget
        return default_regret_budget(self.schema, query)

    def skeleton_for(self, query: ConjunctiveQuery) -> PlanNode | None:
        """The conditioning skeleton the branch bandits hang off."""
        if self._skeleton_planner is None:
            return None
        return self._skeleton_planner(self._distribution).plan(query).plan

    def build_ensemble(
        self,
        query: ConjunctiveQuery,
        *,
        distribution: Distribution | None = None,
        span_inflation: float = 1.0,
        ledger: RegretLedger | None = None,
    ) -> OrderBanditEnsemble:
        """A fresh ensemble for ``query`` (the stream executor's entry)."""
        require_conjunctive(query)
        statistics = (
            distribution if distribution is not None else self._distribution
        )
        skeleton = (
            self._skeleton_planner(statistics).plan(query).plan
            if self._skeleton_planner is not None
            else None
        )
        return OrderBanditEnsemble(
            self.schema,
            query,
            statistics,
            budget=self.budget_for(query),
            skeleton=skeleton,
            delta=self._delta,
            burst_pulls=self._burst_pulls,
            decay=self._posterior_decay,
            max_arm_predicates=self._max_arm_predicates,
            cost_model=self._cost_model,
            span_inflation=span_inflation,
            prior_weight=self._prior_weight,
            ledger=ledger,
        )

    def plan(self, query: ConjunctiveQuery) -> PlanningResult:
        ensemble = self.build_ensemble(query)
        plan = ensemble.composite_plan()
        stats = PlannerStats(
            sequential_plans_built=sum(
                len(branch.arm_space) for branch in ensemble.branches
            )
        )
        return PlanningResult(
            plan=plan,
            expected_cost=ensemble.expected_cost(self._distribution),
            planner=self.name,
            stats=stats,
            provenance=ensemble.provenance(),
        )
