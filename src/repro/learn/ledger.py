"""The regret ledger: two-sided Eq. 3 accounting for exploration.

The bandit spends acquisition cost in four places and every joule must
land on exactly one side, mirroring the base+retry split of the fault
injector's ledger (PR 5):

- ``warmup_cost`` — the plan-less acquire-everything phase before the
  first statistics fit;
- ``conditioning_cost`` — attribute reads charged by the conditioning
  skeleton while routing a tuple to its branch (identical for every arm
  of that branch, so never attributable to exploration);
- ``base_cost`` — the exploitation side: the full cost of pulls on the
  served arm, plus the *reference share* of exploratory pulls (what the
  served arm's posterior says the tuple would have cost anyway);
- ``exploration_cost`` — the excess of an exploratory pull over that
  reference.  This is the side the regret budget caps.

The split is exact by construction: an exploratory pull of realized cost
``c`` against reference ``r`` charges ``max(0, c - r)`` to exploration
and the remainder to base, so

    warmup + conditioning + base + exploration == sum(per-tuple costs)

holds to float round-off for every run.  :meth:`can_explore` is the hard
gate — the bandit asks it *before* pulling a non-served arm, passing the
largest excess the pull could possibly incur, so the budget is never
overdrawn even transiently.  The verifier's ``LRN001``/``LRN002`` rules
re-check both invariants on emitted provenance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.exceptions import LearningError

__all__ = ["LedgerSnapshot", "RegretLedger"]


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable copy of a :class:`RegretLedger` for reports/provenance."""

    budget: float
    warmup_cost: float
    conditioning_cost: float
    base_cost: float
    exploration_cost: float
    exploration_pulls: int
    exploit_pulls: int

    @property
    def total_cost(self) -> float:
        return (
            self.warmup_cost
            + self.conditioning_cost
            + self.base_cost
            + self.exploration_cost
        )

    @property
    def budget_remaining(self) -> float:
        return max(0.0, self.budget - self.exploration_cost)

    def gap(self, observed_total: float) -> float:
        """Absolute mismatch between the ledger and a measured total."""
        return abs(self.total_cost - observed_total)

    def conserved(self, observed_total: float, tolerance: float = 1e-6) -> bool:
        """Do the ledger sides reconcile with a measured total cost?"""
        scale = max(1.0, abs(observed_total))
        return self.gap(observed_total) <= tolerance * scale

    def as_dict(self) -> dict[str, Any]:
        return {
            "budget": self.budget,
            "warmup_cost": round(self.warmup_cost, 6),
            "conditioning_cost": round(self.conditioning_cost, 6),
            "base_cost": round(self.base_cost, 6),
            "exploration_cost": round(self.exploration_cost, 6),
            "exploration_pulls": self.exploration_pulls,
            "exploit_pulls": self.exploit_pulls,
        }


class RegretLedger:
    """Mutable run-wide ledger shared by every branch bandit of a plan."""

    def __init__(self, budget: float) -> None:
        if not math.isfinite(budget) and budget != math.inf:
            raise LearningError(f"regret budget must be finite or inf: {budget}")
        if budget < 0.0:
            raise LearningError(f"regret budget must be non-negative: {budget}")
        self._budget = float(budget)
        self._warmup = 0.0
        self._conditioning = 0.0
        self._base = 0.0
        self._exploration = 0.0
        self._exploration_pulls = 0
        self._exploit_pulls = 0

    @property
    def budget(self) -> float:
        return self._budget

    @property
    def warmup_cost(self) -> float:
        return self._warmup

    @property
    def conditioning_cost(self) -> float:
        return self._conditioning

    @property
    def base_cost(self) -> float:
        return self._base

    @property
    def exploration_cost(self) -> float:
        return self._exploration

    @property
    def exploration_pulls(self) -> int:
        return self._exploration_pulls

    @property
    def exploit_pulls(self) -> int:
        return self._exploit_pulls

    @property
    def budget_remaining(self) -> float:
        return max(0.0, self._budget - self._exploration)

    @property
    def total_cost(self) -> float:
        return self._warmup + self._conditioning + self._base + self._exploration

    def charge_warmup(self, cost: float) -> None:
        self._require_charge(cost)
        self._warmup += cost

    def charge_conditioning(self, cost: float) -> None:
        self._require_charge(cost)
        self._conditioning += cost

    def charge_exploit(self, cost: float) -> None:
        """A pull on the served arm: pure base-side spend."""
        self._require_charge(cost)
        self._base += cost
        self._exploit_pulls += 1

    def charge_explore(self, cost: float, reference: float) -> None:
        """A pull on a non-served arm, split against the served reference.

        ``reference`` is what the served arm's posterior predicts the
        tuple would have cost; only the excess is exploration spend.  A
        pull cheaper than the reference charges zero exploration — the
        gamble paid off — so exploration_cost is exactly the realized
        regret against the incumbent, never a rebate.
        """
        self._require_charge(cost)
        if reference < 0.0:
            raise LearningError(f"negative exploration reference: {reference}")
        excess = max(0.0, cost - reference)
        self._base += cost - excess
        self._exploration += excess
        self._exploration_pulls += 1

    def can_explore(self, max_excess: float) -> bool:
        """May a pull that could cost up to ``max_excess`` excess proceed?"""
        return self._exploration + max_excess <= self._budget

    def snapshot(self) -> LedgerSnapshot:
        return LedgerSnapshot(
            budget=self._budget,
            warmup_cost=self._warmup,
            conditioning_cost=self._conditioning,
            base_cost=self._base,
            exploration_cost=self._exploration,
            exploration_pulls=self._exploration_pulls,
            exploit_pulls=self._exploit_pulls,
        )

    @staticmethod
    def _require_charge(cost: float) -> None:
        if not math.isfinite(cost) or cost < 0.0:
            raise LearningError(f"ledger charges must be finite and >= 0: {cost}")
