"""Shared harness comparing the learned planner against its baselines.

One entry point, :func:`run_learned_bench`, runs four strategies over
the same adversarial stream (:func:`~repro.learn.workloads.
adversarial_stream` — the optimal predicate order flips every segment):

- **oracle** — a clairvoyant lower bound: each segment is planned with
  :class:`~repro.planning.OptimalSequentialPlanner` fitted on that
  segment's *own* data, with no warm-up or detection cost;
- **never-replan** — the adaptive executor with replanning disabled:
  one plan from the warm-up window, held forever;
- **chi-square-refit** — the pre-learning drift loop this package
  replaces: the adaptive executor with profile-drift replanning (fire →
  refit → replan from scratch);
- **bandit** — :class:`~repro.learn.stream.LearnedStreamExecutor` with
  a D-UCB discount, incremental order swaps, and the regret ledger.

The report carries per-strategy totals, cumulative-regret-vs-oracle
curves, and the PR's hard gates: the bandit must beat both non-oracle
baselines, its ledger must reconcile exactly, exploration must respect
the budget, and the final plan+provenance must pass the verifier's
``LRN`` rules.  ``repro learn-bench`` and
``benchmarks/bench_learned_planner.py`` are both thin wrappers over
this module, so the CLI and the CI gate measure the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.cost import dataset_execution
from repro.execution.streaming import AdaptiveStreamExecutor
from repro.learn.stream import LearnedStreamExecutor
from repro.learn.workloads import DriftingWorkload, adversarial_stream
from repro.planning.optimal_sequential import OptimalSequentialPlanner
from repro.probability.empirical import EmpiricalDistribution

__all__ = ["StrategyRun", "LearnedBenchReport", "run_learned_bench"]

# Replanning is disabled in the baselines by pushing the interval far
# past any stream this harness generates.
_NEVER = 10**9

# How many positions the cumulative-regret curves are sampled at.
_CURVE_POINTS = 30


@dataclass(frozen=True)
class StrategyRun:
    """One strategy's outcome over the shared stream."""

    name: str
    costs: np.ndarray
    verdicts: np.ndarray
    replans: int

    @property
    def total_cost(self) -> float:
        return float(self.costs.sum())

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean()) if self.costs.size else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "total_cost": round(self.total_cost, 4),
            "mean_cost": round(self.mean_cost, 4),
            "selected": int(self.verdicts.sum()),
            "replans": self.replans,
        }


@dataclass(frozen=True)
class LearnedBenchReport:
    """Everything the CLI prints and the CI gate asserts."""

    workload: str
    tuples: int
    segments: int
    seed: int
    strategies: tuple[StrategyRun, ...]
    curve_positions: tuple[int, ...]
    regret_curves: dict[str, tuple[float, ...]]
    ledger: dict[str, Any]
    verification: dict[str, Any]
    gates: dict[str, bool]

    def strategy(self, name: str) -> StrategyRun:
        for run in self.strategies:
            if run.name == name:
                return run
        raise KeyError(name)

    @property
    def all_gates_pass(self) -> bool:
        return all(self.gates.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "tuples": self.tuples,
            "segments": self.segments,
            "seed": self.seed,
            "strategies": [run.as_dict() for run in self.strategies],
            "curve_positions": list(self.curve_positions),
            "regret_curves": {
                name: [round(value, 4) for value in curve]
                for name, curve in self.regret_curves.items()
            },
            "ledger": self.ledger,
            "verification": self.verification,
            "gates": self.gates,
        }


def _oracle_costs(workload: DriftingWorkload, smoothing: float) -> StrategyRun:
    """Clairvoyant per-segment optimal sequential plans."""
    pieces_cost: list[np.ndarray] = []
    pieces_verdict: list[np.ndarray] = []
    for segment in workload.segment_slices():
        data = workload.data[segment]
        distribution = EmpiricalDistribution(
            workload.schema, data, smoothing=smoothing
        )
        plan = OptimalSequentialPlanner(distribution).plan(workload.query).plan
        outcome = dataset_execution(plan, data, workload.schema)
        pieces_cost.append(outcome.costs)
        pieces_verdict.append(outcome.verdicts)
    return StrategyRun(
        name="oracle",
        costs=np.concatenate(pieces_cost),
        verdicts=np.concatenate(pieces_verdict),
        replans=len(workload.regimes) - 1,
    )


def _adaptive_run(
    name: str,
    workload: DriftingWorkload,
    *,
    window: int,
    smoothing: float,
    profile_drift_threshold: float | None,
    drift_check_every: int,
    drift_min_tuples: int,
) -> StrategyRun:
    executor = AdaptiveStreamExecutor(
        workload.schema,
        workload.query,
        lambda distribution: OptimalSequentialPlanner(distribution),
        window=window,
        replan_interval=_NEVER,
        drift_threshold=None,
        smoothing=smoothing,
        profile_drift_threshold=profile_drift_threshold,
        profile_check_every=drift_check_every,
        profile_min_tuples=drift_min_tuples,
    )
    report = executor.process(workload.data)
    return StrategyRun(
        name=name,
        costs=report.costs,
        verdicts=report.verdicts,
        replans=len(report.replans),
    )


def _regret_curve(
    costs: np.ndarray, oracle: np.ndarray, positions: tuple[int, ...]
) -> tuple[float, ...]:
    gaps = np.cumsum(costs - oracle)
    return tuple(float(gaps[position]) for position in positions)


def run_learned_bench(
    *,
    n_segments: int = 6,
    segment_length: int = 500,
    seed: int = 0,
    window: int = 96,
    smoothing: float = 0.5,
    delta: float = 0.2,
    burst_pulls: int = 8,
    posterior_decay: float = 0.95,
    drift_threshold: float = 8.0,
    drift_check_every: int = 64,
    drift_min_tuples: int = 128,
    regret_budget: float | None = None,
) -> LearnedBenchReport:
    """Run all four strategies over one adversarial stream.

    Every strategy sees the same byte-stable stream, uses the same
    warm-up length (``window``) and the same smoothing, and — where a
    drift monitor is in play — the same chi-square threshold and check
    cadence, so the differences measured are the *policies*, not their
    tuning.
    """
    workload = adversarial_stream(
        n_segments=n_segments, segment_length=segment_length, seed=seed
    )
    total = workload.data.shape[0]

    oracle = _oracle_costs(workload, smoothing)
    never = _adaptive_run(
        "never-replan",
        workload,
        window=window,
        smoothing=smoothing,
        profile_drift_threshold=None,
        drift_check_every=drift_check_every,
        drift_min_tuples=drift_min_tuples,
    )
    refit = _adaptive_run(
        "chi-square-refit",
        workload,
        window=window,
        smoothing=smoothing,
        profile_drift_threshold=drift_threshold,
        drift_check_every=drift_check_every,
        drift_min_tuples=drift_min_tuples,
    )

    learner = LearnedStreamExecutor(
        workload.schema,
        workload.query,
        regret_budget=regret_budget,
        window=window,
        warmup=window,
        smoothing=smoothing,
        delta=delta,
        burst_pulls=burst_pulls,
        posterior_decay=posterior_decay,
        drift_threshold=drift_threshold,
        drift_check_every=drift_check_every,
        drift_min_tuples=drift_min_tuples,
    )
    learned = learner.process(workload.data)
    bandit = StrategyRun(
        name="bandit",
        costs=learned.costs,
        verdicts=learned.verdicts,
        replans=len(learned.replans),
    )

    from repro.verify import verify_plan

    report = verify_plan(
        learned.plan,
        workload.schema,
        query=workload.query,
        provenance=learned.provenance,
    )

    step = max(1, total // _CURVE_POINTS)
    positions = tuple(range(step - 1, total, step))
    curves = {
        run.name: _regret_curve(run.costs, oracle.costs, positions)
        for run in (never, refit, bandit)
    }

    gates = {
        "bandit_beats_never_replan": bandit.total_cost < never.total_cost,
        "bandit_beats_chi_square_refit": bandit.total_cost < refit.total_cost,
        "ledger_conserved": learned.ledger_conserved(),
        "exploration_within_budget": learned.exploration_within_budget(),
        "provenance_verified": report.ok,
        "verdicts_agree": bool(
            np.array_equal(bandit.verdicts, never.verdicts)
            and np.array_equal(bandit.verdicts, oracle.verdicts)
        ),
    }

    return LearnedBenchReport(
        workload="adversarial",
        tuples=total,
        segments=n_segments,
        seed=seed,
        strategies=(oracle, never, refit, bandit),
        curve_positions=positions,
        regret_curves=curves,
        ledger=learned.ledger.as_dict(),
        verification={
            "ok": report.ok,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "codes": sorted(report.codes()),
        },
        gates=gates,
    )
