"""`LearnedStreamExecutor`: the bandit fused with the drift loop.

This is the replacement for the adaptive executor's "chi-square fired →
refit → replan from scratch" reflex.  The stream drives an
:class:`~repro.learn.bandit.OrderBanditEnsemble`:

- every post-warmup tuple routes through the conditioning skeleton to a
  branch; normally the branch's *incumbent* order runs and its realized
  leaf cost feeds straight back as the arm's reward (and into the
  branch's change detector);
- when the detector flags the incumbent's cost drifting, the branch
  opens an exploration *burst*: tuples become value-blind
  full-information pulls — every branch attribute is acquired, then
  every arm is replayed on the complete row (``_full_pull``).  The
  sliding statistics window already retains complete rows for refits,
  so this is the same information contract the chi-square baseline
  uses; the difference is the bandit pays for it explicitly, per pull,
  through the regret ledger's exploration side;
- plan changes are *incremental order swaps*, taken only when the PAO
  confidence bounds on the burst's paired differences warrant them, and
  each branch *commits* and stops exploring once no order can beat its
  incumbent at the confidence level;
- the chi-square :class:`~repro.obs.DriftMonitor` still watches the
  served composite plan, but firing it no longer discards anything: the
  window statistics are refitted and the ensemble is *warm-started* —
  old posteriors are discount-blended into the new priors, so evidence
  survives the drift (and the monitor's debounce keeps one crossing
  from firing a refit storm);
- every unit of acquisition cost lands in the shared
  :class:`~repro.learn.ledger.RegretLedger`, whose exploration side is
  hard-capped by the regret budget.

Fault-injected runs reuse PR 5's machinery (one seeded injector for the
whole stream, fault-tolerant execution, outage-triggered refits) with
the arm reward being the *faulted* realized cost — retries included —
so the ledger's conservation invariant holds under storms too.  Branch
routing needs the metered scalar walker, so fault-injected learning
runs flat (no conditioning skeleton), mirroring the adaptive executor's
profile-drift restriction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.attributes import Schema
from repro.core.plan import PlanNode, SequentialNode, VerdictLeaf
from repro.core.query import ConjunctiveQuery
from repro.exceptions import (
    AcquisitionFailure,
    FaultConfigError,
    LearningError,
    PlanningError,
)
from repro.execution.streaming import StreamFaultStats
from repro.learn.arms import DEFAULT_MAX_ARM_PREDICATES
from repro.learn.bandit import (
    BranchBandit,
    LearnedProvenance,
    OrderBanditEnsemble,
)
from repro.learn.ledger import LedgerSnapshot, RegretLedger
from repro.learn.planner import SkeletonFactory, default_regret_budget
from repro.learn.state import BanditStateStore
from repro.obs.drift import DEFAULT_DRIFT_THRESHOLD
from repro.probability.empirical import EmpiricalDistribution

if TYPE_CHECKING:
    from repro.faults.model import FaultSchedule
    from repro.faults.policy import FaultPolicy
    from repro.obs.drift import DriftMonitor
    from repro.obs.profile import PlanProfile

__all__ = [
    "LearnedReplanEvent",
    "LearnedStreamReport",
    "LearnedStreamExecutor",
]


@dataclass(frozen=True)
class LearnedReplanEvent:
    """One plan-affecting decision: what, where, and what it promised.

    ``reason`` is ``"warmup"`` (first statistics fit), ``"order-swap"``
    (a branch's incumbent was dethroned), ``"commit"`` (a branch froze
    its incumbent), ``"drift-refit"`` (chi-square fired; warm-started
    refit), or ``"outage"`` (sustained acquisition failures; refit).
    ``warm`` says whether learned posteriors survived into the new
    ensemble (False when the refitted skeleton changed shape).
    """

    position: int
    reason: str
    branch: str
    arm: int
    expected_cost: float
    drift_score: float | None = None
    warm: bool = True
    budget_remaining: float = 0.0


@dataclass(frozen=True)
class LearnedStreamReport:
    """Outcome of a learned streaming run.

    ``pulls[i]`` is the arm id pulled for tuple ``i`` within its branch
    (-1 during warmup) — together with ``replans`` it is the full,
    byte-comparable decision trace the replay tests pin down.  ``plan``
    is the final served composite plan; with ``provenance`` it is the
    pair the verifier's ``LRN`` rules audit.
    """

    costs: np.ndarray
    verdicts: np.ndarray
    pulls: np.ndarray
    replans: tuple[LearnedReplanEvent, ...]
    ledger: LedgerSnapshot
    provenance: LearnedProvenance
    plan: PlanNode
    committed: bool
    abstained: np.ndarray | None = None
    faults: StreamFaultStats | None = None

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean()) if self.costs.size else 0.0

    @property
    def total_cost(self) -> float:
        return float(self.costs.sum())

    def ledger_gap(self) -> float:
        """Absolute mismatch between metered costs and the ledger sides."""
        return self.ledger.gap(self.total_cost)

    def ledger_conserved(self, tolerance: float = 1e-6) -> bool:
        return self.ledger.conserved(self.total_cost, tolerance)

    def exploration_within_budget(self) -> bool:
        return self.ledger.exploration_cost <= self.ledger.budget

    def as_dict(self) -> dict[str, Any]:
        return {
            "tuples": int(self.costs.size),
            "total_cost": round(self.total_cost, 6),
            "mean_cost": round(self.mean_cost, 6),
            "selected": int(self.verdicts.sum()),
            "replans": len(self.replans),
            "committed": self.committed,
            "ledger": self.ledger.as_dict(),
        }


class LearnedStreamExecutor:
    """Bandit-driven streaming executor with warm-started drift refits.

    Parameters mirror :class:`~repro.execution.AdaptiveStreamExecutor`
    where they overlap; the learning-specific knobs:

    regret_budget:
        Hard cap on exploration spend (Eq. 3 units); ``None`` derives
        the per-query default (64 worst-case pulls).
    skeleton_planner:
        Factory for the conditioning-skeleton planner rebuilt at every
        statistics fit; ``None`` runs flat (orders over the full query).
    posterior_decay:
        D-UCB discount — 1.0 for convergent stationary behavior, < 1 to
        track non-stationary streams between refits.
    drift_threshold:
        Normalized chi-square trigger for warm-started refits (``None``
        disables the monitor entirely).
    warm_discount:
        Weight surviving posteriors keep across a refit or adoption.
    state_store / state_key / version_provider:
        Optional :class:`~repro.learn.BanditStateStore` integration: the
        final and per-refit ensemble states are stored under
        ``(state_key, version)`` and the warmup fit adopts the latest
        stored state — this is how bandit evidence survives the serving
        layer's statistics-version cache bumps.
    """

    def __init__(
        self,
        schema: Schema,
        query: ConjunctiveQuery,
        *,
        regret_budget: float | None = None,
        window: int = 256,
        warmup: int = 64,
        smoothing: float = 0.5,
        delta: float = 0.05,
        burst_pulls: int = 12,
        posterior_decay: float = 1.0,
        max_arm_predicates: int = DEFAULT_MAX_ARM_PREDICATES,
        skeleton_planner: SkeletonFactory | None = None,
        drift_threshold: float | None = DEFAULT_DRIFT_THRESHOLD,
        drift_check_every: int = 64,
        drift_min_tuples: int = 128,
        warm_discount: float = 0.25,
        prior_weight: float = 1.0,
        on_replan: Callable[[LearnedReplanEvent], None] | None = None,
        state_store: BanditStateStore | None = None,
        state_key: str | None = None,
        version_provider: Callable[[], int] | None = None,
        fault_schedule: "FaultSchedule | None" = None,
        fault_policy: "FaultPolicy | None" = None,
        fault_rng: np.random.Generator | None = None,
    ) -> None:
        if window < 1:
            raise LearningError(f"window must be >= 1: {window}")
        if warmup < 1:
            raise LearningError(f"warmup must be >= 1: {warmup}")
        if smoothing < 0.0:
            raise LearningError(f"smoothing must be >= 0: {smoothing}")
        if regret_budget is not None and regret_budget < 0.0:
            raise LearningError(
                f"regret_budget must be non-negative: {regret_budget}"
            )
        if drift_check_every < 1 or drift_min_tuples < 1:
            raise LearningError(
                "drift_check_every and drift_min_tuples must be >= 1"
            )
        if not 0.0 < warm_discount <= 1.0:
            raise LearningError(
                f"warm_discount must be in (0, 1]: {warm_discount}"
            )
        if fault_schedule is not None and fault_rng is None:
            raise FaultConfigError(
                "fault_schedule requires fault_rng: pass the run's single "
                "seeded generator"
            )
        if fault_schedule is not None and skeleton_planner is not None:
            raise FaultConfigError(
                "fault-injected learning runs flat: branch routing needs "
                "the metered scalar walker, which the fault-tolerant "
                "executor replaces — drop skeleton_planner"
            )
        if state_store is not None and state_key is None:
            raise LearningError("state_store requires state_key")
        self._schema = schema
        self._query = query
        self._regret_budget = regret_budget
        self._window = window
        self._warmup = warmup
        self._smoothing = smoothing
        self._delta = delta
        self._burst_pulls = burst_pulls
        self._posterior_decay = posterior_decay
        self._max_arm_predicates = max_arm_predicates
        self._skeleton_planner = skeleton_planner
        self._drift_threshold = drift_threshold
        self._drift_check_every = drift_check_every
        self._drift_min_tuples = drift_min_tuples
        self._warm_discount = warm_discount
        self._prior_weight = prior_weight
        self._on_replan = on_replan
        self._state_store = state_store
        self._state_key = state_key
        self._version_provider = version_provider
        self._refit_count = 0
        self._fault_schedule = fault_schedule
        self._fault_policy = fault_policy
        self._fault_rng = fault_rng
        self._warmup_charges = tuple(
            (index, float(schema[index].cost))
            for index in query.attribute_indices
        )

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _budget(self) -> float:
        if self._regret_budget is not None:
            return self._regret_budget
        return default_regret_budget(self._schema, self._query)

    def _version(self) -> int:
        if self._version_provider is not None:
            return self._version_provider()
        return self._refit_count

    def _store_state(self, ensemble: OrderBanditEnsemble) -> None:
        if self._state_store is not None and self._state_key is not None:
            self._state_store.put(
                self._state_key, self._version(), ensemble.export_state()
            )

    def _fit_distribution(self, window: deque) -> EmpiricalDistribution:
        return EmpiricalDistribution(
            self._schema, np.asarray(window), smoothing=self._smoothing
        )

    def _build_ensemble(
        self,
        distribution: EmpiricalDistribution,
        ledger: RegretLedger,
        span_inflation: float,
    ) -> OrderBanditEnsemble:
        skeleton = (
            self._skeleton_planner(distribution).plan(self._query).plan
            if self._skeleton_planner is not None
            else None
        )
        return OrderBanditEnsemble(
            self._schema,
            self._query,
            distribution,
            budget=self._budget(),
            skeleton=skeleton,
            delta=self._delta,
            burst_pulls=self._burst_pulls,
            decay=self._posterior_decay,
            max_arm_predicates=self._max_arm_predicates,
            span_inflation=span_inflation,
            prior_weight=self._prior_weight,
            ledger=ledger,
        )

    def _emit(
        self, replans: list[LearnedReplanEvent], event: LearnedReplanEvent
    ) -> None:
        replans.append(event)
        if self._on_replan is not None:
            self._on_replan(event)

    def _monitoring(self) -> bool:
        return self._drift_threshold is not None

    def _fresh_monitor(
        self,
        ensemble: OrderBanditEnsemble,
        distribution: EmpiricalDistribution,
    ) -> "tuple[PlanProfile, DriftMonitor] | tuple[None, None]":
        if not self._monitoring():
            return None, None
        from repro.obs.drift import DriftMonitor
        from repro.obs.profile import PlanProfile

        assert self._drift_threshold is not None
        return (
            PlanProfile(self._schema),
            DriftMonitor(
                ensemble.composite_plan(),
                distribution,
                threshold=self._drift_threshold,
            ),
        )

    # ------------------------------------------------------------------
    # The plain (fault-free) loop
    # ------------------------------------------------------------------

    def process(self, stream: np.ndarray) -> LearnedStreamReport:
        """Run the query over ``stream`` (rows in arrival order)."""
        matrix = np.asarray(stream)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._schema):
            raise PlanningError(
                f"stream shape {matrix.shape} incompatible with schema of "
                f"{len(self._schema)} attributes"
            )
        if matrix.shape[0] == 0:
            raise LearningError("cannot learn over an empty stream")
        if self._fault_schedule is not None:
            return self._process_faulted(matrix)

        total = matrix.shape[0]
        costs = np.zeros(total, dtype=np.float64)
        verdicts = np.zeros(total, dtype=bool)
        pulls = np.full(total, -1, dtype=np.int64)
        replans: list[LearnedReplanEvent] = []
        window: deque = deque(maxlen=self._window)
        ledger = RegretLedger(self._budget())
        warmup_cost = sum(cost for _, cost in self._warmup_charges)

        ensemble: OrderBanditEnsemble | None = None
        distribution: EmpiricalDistribution | None = None
        profile: "PlanProfile | None" = None
        monitor: "DriftMonitor | None" = None
        since_drift_check = 0

        warmup = min(self._warmup, total)
        for position in range(total):
            row = matrix[position]
            if ensemble is None:
                ledger.charge_warmup(warmup_cost)
                costs[position] = warmup_cost
                verdicts[position] = self._query.evaluate(row)
                window.append(row)
                if position + 1 >= warmup:
                    distribution = self._fit_distribution(window)
                    ensemble = self._build_ensemble(distribution, ledger, 1.0)
                    warm = self._adopt_stored(ensemble)
                    profile, monitor = self._fresh_monitor(
                        ensemble, distribution
                    )
                    self._store_state(ensemble)
                    self._emit(
                        replans,
                        LearnedReplanEvent(
                            position=position + 1,
                            reason="warmup",
                            branch="root",
                            arm=-1,
                            expected_cost=ensemble.expected_cost(distribution),
                            warm=warm,
                            budget_remaining=ledger.budget_remaining,
                        ),
                    )
                continue

            assert distribution is not None
            cost, verdict, branch, arm_id, exploring = self._execute_tuple(
                row, ensemble, ledger, profile
            )
            costs[position] = cost
            verdicts[position] = verdict
            pulls[position] = arm_id
            window.append(row)

            changed = self._post_pull(
                position, branch, ensemble, distribution, ledger, replans
            )
            if changed and self._monitoring():
                profile, monitor = self._fresh_monitor(ensemble, distribution)
                since_drift_check = 0

            if monitor is not None and profile is not None:
                since_drift_check += 1
                if (
                    since_drift_check >= self._drift_check_every
                    and profile.tuples >= self._drift_min_tuples
                ):
                    since_drift_check = 0
                    report = monitor.assess(profile)
                    if report.drifted:
                        distribution = self._fit_distribution(window)
                        ensemble, warm = self._refit(ensemble, distribution, ledger, 1.0)
                        profile, monitor = self._fresh_monitor(
                            ensemble, distribution
                        )
                        self._store_state(ensemble)
                        self._emit(
                            replans,
                            LearnedReplanEvent(
                                position=position + 1,
                                reason="drift-refit",
                                branch="root",
                                arm=-1,
                                expected_cost=ensemble.expected_cost(
                                    distribution
                                ),
                                drift_score=report.normalized,
                                warm=warm,
                                budget_remaining=ledger.budget_remaining,
                            ),
                        )

        assert ensemble is not None
        self._store_state(ensemble)
        return LearnedStreamReport(
            costs=costs,
            verdicts=verdicts,
            pulls=pulls,
            replans=tuple(replans),
            ledger=ledger.snapshot(),
            provenance=ensemble.provenance(float(costs.sum())),
            plan=ensemble.composite_plan(),
            committed=ensemble.committed,
        )

    def _adopt_stored(self, ensemble: OrderBanditEnsemble) -> bool:
        if self._state_store is None or self._state_key is None:
            return False
        stored = self._state_store.latest(self._state_key)
        if stored is None:
            return False
        return ensemble.adopt(stored[1], self._warm_discount)

    def _refit(
        self,
        old: OrderBanditEnsemble,
        distribution: EmpiricalDistribution,
        ledger: RegretLedger,
        span_inflation: float,
    ) -> tuple[OrderBanditEnsemble, bool]:
        """New ensemble on fresh statistics, warm-started when shapes match."""
        self._refit_count += 1
        ensemble = self._build_ensemble(distribution, ledger, span_inflation)
        warm = ensemble.adopt(old.export_state(), self._warm_discount)
        return ensemble, warm

    def _execute_tuple(
        self,
        row: np.ndarray,
        ensemble: OrderBanditEnsemble,
        ledger: RegretLedger,
        profile: "PlanProfile | None",
    ) -> tuple[float, bool, BranchBandit, int, bool]:
        """Route, pull, meter, and (for served tuples) profile one row."""
        acquired: set[int] = set()
        branch, visits, conditioning_cost = ensemble.route(row, acquired)
        routed = frozenset(acquired)
        ledger.charge_conditioning(conditioning_cost)

        if branch.wants_full_pull():
            leaf_cost, verdict = self._full_pull(
                row, ensemble, branch, acquired, routed
            )
            return (
                conditioning_cost + leaf_cost,
                verdict,
                branch,
                branch.served,
                True,
            )

        arm_id = branch.select()
        plan = branch.arm_space[arm_id].plan

        leaf_cost = 0.0
        step_trace: list[tuple[int, bool, bool]] = []
        if isinstance(plan, SequentialNode):
            verdict = True
            for step_index, step in enumerate(plan.steps):
                index = step.attribute_index
                newly = index not in acquired
                if newly:
                    acquired.add(index)
                    leaf_cost += ensemble.attribute_cost(index, acquired)
                passed = step.predicate.satisfied_by(int(row[index]))
                step_trace.append((step_index, passed, newly))
                if not passed:
                    verdict = False
                    break
        elif isinstance(plan, VerdictLeaf):
            verdict = plan.verdict
        else:  # pragma: no cover - arm plans are sequential or verdict
            raise LearningError(f"unexpected arm plan {type(plan).__name__}")

        branch.record(
            arm_id,
            leaf_cost,
            tuple(passed for _, passed, _ in step_trace),
        )

        if profile is not None:
            for visit in visits:
                profile.on_condition(
                    visit.path,
                    visit.node,
                    1,
                    1 if visit.below else 0,
                    visit.acquired,
                )
            if isinstance(plan, SequentialNode):
                profile.on_sequential(branch.path, plan, 1)
                for step_index, passed, newly in step_trace:
                    profile.on_step(
                        branch.path,
                        plan,
                        step_index,
                        1,
                        1 if passed else 0,
                        newly,
                    )
            else:
                profile.on_verdict(branch.path, plan, 1)

        return conditioning_cost + leaf_cost, verdict, branch, arm_id, False

    def _full_pull(
        self,
        row: np.ndarray,
        ensemble: OrderBanditEnsemble,
        branch: BranchBandit,
        acquired: set[int],
        routed: frozenset[int],
    ) -> tuple[float, bool]:
        """One value-blind full-information exploration pull.

        Acquires every branch attribute (no short-circuiting), then
        replays each arm's order on the completed row.  Because the
        decision to burst was made before any of this tuple's values
        were seen, the replayed cost vector is an unbiased sample for
        every arm at once — replaying only tuples the served walk
        happened to read fully would condition the sample on the
        incumbent's predicates passing, making the incumbent look
        maximally expensive on its own evidence (measured swap thrash).
        The excess of the full read over the incumbent's replay cost is
        exploration spend, booked by
        :meth:`~repro.learn.bandit.BranchBandit.record_full`.
        """
        plan = branch.served_arm.plan
        if not isinstance(plan, SequentialNode):  # pragma: no cover
            raise LearningError(
                f"full pull on non-sequential arm {type(plan).__name__}"
            )
        values: dict[int, int] = {}
        verdict = True
        leaf_cost = 0.0
        for step in plan.steps:
            index = step.attribute_index
            if index not in acquired:
                acquired.add(index)
                leaf_cost += ensemble.attribute_cost(index, acquired)
            value = int(row[index])
            values[index] = value
            if not step.predicate.satisfied_by(value):
                verdict = False
        branch.record_full(
            leaf_cost, self._replay_costs(ensemble, branch, values, routed)
        )
        return leaf_cost, verdict

    def _replay_costs(
        self,
        ensemble: OrderBanditEnsemble,
        branch: BranchBandit,
        values: dict[int, int],
        routed: frozenset[int],
    ) -> list[float]:
        """Counterfactual clean cost of every arm on one complete row.

        Replays start from the routed (conditioning) read set — those
        reads are shared context, not part of any arm's cost — and
        short-circuit exactly as a real walk would.
        """
        costs: list[float] = []
        for arm in branch.arm_space.arms:
            replay_acquired = set(routed)
            cost = 0.0
            for step in arm.plan.steps:
                index = step.attribute_index
                if index not in replay_acquired:
                    replay_acquired.add(index)
                    cost += ensemble.attribute_cost(index, replay_acquired)
                if not step.predicate.satisfied_by(values[index]):
                    break
            costs.append(cost)
        return costs

    def _post_pull(
        self,
        position: int,
        branch: BranchBandit,
        ensemble: OrderBanditEnsemble,
        distribution: EmpiricalDistribution,
        ledger: RegretLedger,
        replans: list[LearnedReplanEvent],
    ) -> bool:
        """PAO swap/commit checks after a pull; True if the plan changed."""
        swapped = branch.maybe_swap()
        if swapped is not None:
            self._emit(
                replans,
                LearnedReplanEvent(
                    position=position + 1,
                    reason="order-swap",
                    branch=branch.path,
                    arm=swapped,
                    expected_cost=ensemble.expected_cost(distribution),
                    budget_remaining=ledger.budget_remaining,
                ),
            )
            return True
        if branch.check_commit():
            self._emit(
                replans,
                LearnedReplanEvent(
                    position=position + 1,
                    reason="commit",
                    branch=branch.path,
                    arm=branch.served,
                    expected_cost=ensemble.expected_cost(distribution),
                    budget_remaining=ledger.budget_remaining,
                ),
            )
        return False

    # ------------------------------------------------------------------
    # The fault-injected twin
    # ------------------------------------------------------------------

    def _process_faulted(self, matrix: np.ndarray) -> LearnedStreamReport:
        """Flat bandit learning under PR 5's fault machinery.

        One seeded injector serves the whole stream; rewards are the
        *faulted* realized costs (retries included), and the explore
        gate's span is inflated by the worst-case retry blow-up so the
        regret budget stays sound under storms.  Sustained outages
        trigger warm-started refits, mirroring the adaptive executor.
        """
        from repro.execution.acquisition import TupleSource
        from repro.faults.executor import FaultTolerantExecutor
        from repro.faults.injector import FaultInjector
        from repro.faults.policy import FaultPolicy

        assert self._fault_schedule is not None
        assert self._fault_rng is not None
        policy = (
            self._fault_policy if self._fault_policy is not None else FaultPolicy()
        )
        retry = policy.retry
        # One acquire may charge the base read plus max_retries backoffs,
        # and a degraded tuple may re-attempt the attribute once more on
        # the skip/confirm path: bound a pull by twice the retry blow-up.
        retry_factor = 1.0 + sum(
            retry.backoff_base**exponent for exponent in range(retry.max_retries)
        )
        span_inflation = 2.0 * retry_factor

        total = matrix.shape[0]
        costs = np.zeros(total, dtype=np.float64)
        verdicts = np.zeros(total, dtype=bool)
        abstained = np.zeros(total, dtype=bool)
        pulls = np.full(total, -1, dtype=np.int64)
        replans: list[LearnedReplanEvent] = []
        window: deque = deque(maxlen=self._window)
        fail_window: deque = deque(maxlen=policy.outage_window)
        ledger = RegretLedger(self._budget())
        tuples_degraded = 0

        ensemble: OrderBanditEnsemble | None = None
        distribution: EmpiricalDistribution | None = None
        executor = FaultTolerantExecutor(self._schema, policy, query=self._query)
        injector: FaultInjector | None = None

        warmup = min(self._warmup, total)
        for position in range(total):
            row = matrix[position]
            source = TupleSource(self._schema, row)
            if injector is None:
                injector = FaultInjector(
                    source,
                    self._fault_schedule,
                    self._fault_rng,
                    retry_policy=retry,
                )
            else:
                injector.rebind(source)

            if ensemble is None:
                verdict, failed = self._warmup_acquire_faulted(injector, policy)
                ledger.charge_warmup(float(injector.total_cost))
                costs[position] = injector.total_cost
                verdicts[position] = verdict is True
                abstained[position] = verdict is None
                fail_window.append(failed)
                if failed:
                    tuples_degraded += 1
                window.append(row)
                if position + 1 >= warmup:
                    distribution = self._fit_distribution(window)
                    ensemble = self._build_ensemble(
                        distribution, ledger, span_inflation
                    )
                    warm = self._adopt_stored(ensemble)
                    executor = FaultTolerantExecutor(
                        self._schema,
                        policy,
                        query=self._query,
                        distribution=distribution,
                    )
                    self._store_state(ensemble)
                    self._emit(
                        replans,
                        LearnedReplanEvent(
                            position=position + 1,
                            reason="warmup",
                            branch="root",
                            arm=-1,
                            expected_cost=ensemble.expected_cost(distribution),
                            warm=warm,
                            budget_remaining=ledger.budget_remaining,
                        ),
                    )
                continue

            assert distribution is not None
            branch = ensemble.branches[0]
            if branch.wants_full_pull():
                cost, verdict, failed = self._full_pull_faulted(
                    branch, ensemble, injector, policy
                )
                costs[position] = cost
                verdicts[position] = verdict is True
                abstained[position] = verdict is None
                pulls[position] = branch.served
                fail_window.append(failed)
                if failed:
                    tuples_degraded += 1
            else:
                arm_id = branch.select()
                plan = branch.arm_space[arm_id].plan
                result = executor.execute_source(plan, injector)
                branch.record(arm_id, float(result.cost))
                costs[position] = result.cost
                verdicts[position] = result.verdict is True
                abstained[position] = result.abstained
                pulls[position] = arm_id
                fail_window.append(bool(result.failed))
                if result.degraded:
                    tuples_degraded += 1
            window.append(row)

            self._post_pull(
                position, branch, ensemble, distribution, ledger, replans
            )

            outage = (
                policy.outage_replan_threshold is not None
                and len(fail_window) >= policy.outage_window
                and sum(fail_window) / len(fail_window)
                >= policy.outage_replan_threshold
            )
            if outage:
                distribution = self._fit_distribution(window)
                ensemble, warm = self._refit(
                    ensemble, distribution, ledger, span_inflation
                )
                executor = FaultTolerantExecutor(
                    self._schema,
                    policy,
                    query=self._query,
                    distribution=distribution,
                )
                fail_window.clear()
                self._store_state(ensemble)
                self._emit(
                    replans,
                    LearnedReplanEvent(
                        position=position + 1,
                        reason="outage",
                        branch="root",
                        arm=-1,
                        expected_cost=ensemble.expected_cost(distribution),
                        warm=warm,
                        budget_remaining=ledger.budget_remaining,
                    ),
                )

        assert ensemble is not None
        assert injector is not None
        self._store_state(ensemble)
        stats = StreamFaultStats(
            acquisitions_failed=injector.acquisitions_failed,
            retries_total=injector.retries_total,
            tuples_degraded=tuples_degraded,
            tuples_abstained=int(abstained.sum()),
            corruptions=injector.corruptions,
            retry_cost=injector.run_retry_cost,
        )
        return LearnedStreamReport(
            costs=costs,
            verdicts=verdicts,
            pulls=pulls,
            replans=tuple(replans),
            ledger=ledger.snapshot(),
            provenance=ensemble.provenance(float(costs.sum())),
            plan=ensemble.composite_plan(),
            committed=ensemble.committed,
            abstained=abstained,
            faults=stats,
        )

    def _full_pull_faulted(
        self,
        branch: BranchBandit,
        ensemble: OrderBanditEnsemble,
        injector: Any,
        policy: "FaultPolicy",
    ) -> tuple[float, bool | None, bool]:
        """A full-information exploration pull through the fault injector.

        Every branch attribute is acquired (retries and all); on a clean
        read the arms are replayed on the fetched values — corrupted or
        not, all arms see the same row — with *clean* schema costs, so
        the paired sample stays on one cost basis while the ledger is
        charged the realized, fault-inflated read.  If any acquisition
        ultimately fails the replay is impossible: the whole realized
        cost is booked as exploration that bought nothing
        (:meth:`~repro.learn.bandit.BranchBandit.record_full_failure`)
        and the tuple degrades per policy, mirroring the warm-up reader.
        """
        from repro.faults.policy import DegradationMode

        plan = branch.served_arm.plan
        if not isinstance(plan, SequentialNode):  # pragma: no cover
            raise LearningError(
                f"full pull on non-sequential arm {type(plan).__name__}"
            )
        values: dict[int, int] = {}
        verdict: bool | None = True
        failed = False
        for step in plan.steps:
            index = step.attribute_index
            try:
                value = injector.acquire(index)
            except AcquisitionFailure:
                failed = True
                if policy.degradation is DegradationMode.ABSTAIN:
                    verdict = None
                    break
                if verdict is True:
                    verdict = None
                continue
            values[index] = int(value)
            if not step.predicate.satisfied_by(value):
                verdict = False
        cost = float(injector.total_cost)
        if failed:
            branch.record_full_failure(cost)
        else:
            branch.record_full(
                cost,
                self._replay_costs(ensemble, branch, values, frozenset()),
            )
        return cost, verdict, failed

    def _warmup_acquire_faulted(
        self, injector: Any, policy: "FaultPolicy"
    ) -> tuple[bool | None, bool]:
        """Plan-less warm-up read of every query attribute through faults."""
        from repro.faults.policy import DegradationMode

        verdict: bool | None = True
        failed = False
        for predicate, index in zip(
            self._query.predicates, self._query.attribute_indices
        ):
            try:
                value = injector.acquire(index)
            except AcquisitionFailure:
                failed = True
                if policy.degradation is DegradationMode.ABSTAIN:
                    return None, True
                if verdict is True:
                    verdict = None
                continue
            if not predicate.satisfied_by(value):
                verdict = False
        return verdict, failed
