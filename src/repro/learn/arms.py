"""Arms: the branch-local predicate orders the bandit chooses among.

Within one branch of the conditioning skeleton the remaining decision is
exactly the paper's Section 4.1 problem — pick an order for the
predicates the branch context leaves undetermined.  Each permutation is
one *arm*; its plan is the :class:`~repro.core.plan.SequentialNode` for
that order, and its Eq. 3 cost under a fitted distribution (conditioned
on the branch context) is the arm's *prior* — the optimistic starting
point the posterior blends observations into.

Enumeration is deterministic (``itertools.permutations`` over predicate
positions in query order), and capped: a branch with more than
``max_predicates`` undetermined predicates would explode factorially, so
:class:`ArmSpace` refuses it rather than silently sampling.  A branch
whose context already decides the query has a single verdict-leaf arm.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.core.cost import expected_cost
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import PlanNode, SequentialNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import LearningError
from repro.planning.base import (
    resolved_leaf,
    sequential_node_from_order,
)
from repro.probability.base import Distribution

__all__ = ["Arm", "ArmSpace", "DEFAULT_MAX_ARM_PREDICATES"]

DEFAULT_MAX_ARM_PREDICATES = 6


@dataclass(frozen=True)
class Arm:
    """One candidate predicate order and its plan.

    ``order`` is the tuple of schema attribute indices in evaluation
    order — the stable identity the verifier's ``LRN005`` rule matches
    against the emitted plan; ``arm_id`` is the arm's position in its
    :class:`ArmSpace` enumeration.
    """

    arm_id: int
    order: tuple[int, ...]
    plan: PlanNode


class ArmSpace:
    """Every predicate order available within one branch context."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        context: RangeVector,
        max_predicates: int = DEFAULT_MAX_ARM_PREDICATES,
    ) -> None:
        self._query = query
        self._context = context
        leaf = resolved_leaf(query, context)
        if leaf is not None:
            self._arms: tuple[Arm, ...] = (Arm(arm_id=0, order=(), plan=leaf),)
            self._span_indices: tuple[int, ...] = ()
            return
        bindings = query.undetermined_predicates(context)
        if len(bindings) > max_predicates:
            raise LearningError(
                f"branch has {len(bindings)} undetermined predicates; "
                f"{len(bindings)}! orders exceed the max_predicates="
                f"{max_predicates} arm cap"
            )
        arms = []
        for arm_id, ordering in enumerate(permutations(range(len(bindings)))):
            order = [bindings[position] for position in ordering]
            arms.append(
                Arm(
                    arm_id=arm_id,
                    order=tuple(index for _, index in order),
                    plan=sequential_node_from_order(order),
                )
            )
        self._arms = tuple(arms)
        self._span_indices = tuple(index for _, index in bindings)

    @property
    def context(self) -> RangeVector:
        return self._context

    @property
    def arms(self) -> tuple[Arm, ...]:
        return self._arms

    def __len__(self) -> int:
        return len(self._arms)

    def __getitem__(self, arm_id: int) -> Arm:
        return self._arms[arm_id]

    def span(
        self,
        schema,
        cost_model: AcquisitionCostModel | None = None,
    ) -> float:
        """The largest leaf cost any arm can realize on one tuple.

        Every arm reads a subset of the branch's undetermined attributes,
        so the sum of their (context-effective) costs bounds any pull —
        the bound the ledger's :meth:`~repro.learn.ledger.RegretLedger
        .can_explore` gate and the Hoeffding radius both need.
        """
        total = 0.0
        for index in self._span_indices:
            if self._context.is_acquired(index):
                continue
            if cost_model is None:
                total += schema[index].cost
            else:
                total += cost_model.cost(index, self._context.acquired_indices())
        return total

    def priors(
        self,
        distribution: Distribution,
        cost_model: AcquisitionCostModel | None = None,
    ) -> tuple[float, ...]:
        """Eq. 3 cost of every arm under ``distribution`` in this context."""
        return tuple(
            expected_cost(arm.plan, distribution, self._context, cost_model)
            for arm in self._arms
        )

    def step_rates(
        self, distribution: Distribution
    ) -> tuple[tuple[float, ...], ...]:
        """Model-predicted conditional pass rate of every arm's steps.

        For each arm, the probability that step ``i`` passes *given* that
        every earlier step in that order passed, under ``distribution``
        conditioned on the branch context — the per-step selectivities
        the Eq. 3 walk uses.  The bandit's change detector compares the
        served order's observed pass rates against these: selectivity is
        a Bernoulli statistic with bounded variance, so drift shows up
        orders of magnitude faster than in per-tuple cost means.
        Verdict-leaf arms have no steps and contribute an empty tuple.
        """
        rates: list[tuple[float, ...]] = []
        for arm in self._arms:
            if not isinstance(arm.plan, SequentialNode):
                rates.append(())
                continue
            conditioner = distribution.sequential_conditioner(self._context)
            arm_rates: list[float] = []
            for step in arm.plan.steps:
                binding = (step.predicate, step.attribute_index)
                arm_rates.append(conditioner.pass_probability(binding))
                conditioner.condition_on(binding)
            rates.append(tuple(arm_rates))
        return tuple(rates)
