"""Probably-approximately-optimal confidence machinery.

Following Trummer & Koch's PAO sampling bounds (arXiv 1511.01782), the
bandit never replans on point estimates: it acts only when Hoeffding
confidence intervals say the decision is statistically warranted.

- :func:`confidence_radius` is the anytime Hoeffding half-width with a
  union bound over arms and rounds: with probability ``1 - delta`` every
  arm's true mean cost stays inside ``mean ± radius`` simultaneously,
  for all rounds.
- :func:`paired_radius` is the half-width for *paired* challenger-minus
  -incumbent cost differences observed on the same tuples.  Per-tuple
  costs are noisy (a tuple either short-circuits or it doesn't) but the
  noise is shared between orders evaluated on the same tuple, so the
  difference has far smaller variance than either cost alone — this
  radius scales with the *measured* difference variance instead of the
  worst-case span, which is what makes swaps provable within a regime
  segment rather than after thousands of pulls.
- :func:`swap_warranted` — an incumbent is dethroned only when some
  challenger's *upper* bound is below the incumbent's *lower* bound:
  the challenger is better at confidence ``1 - delta``, so the swap is
  PAO-safe, not noise-chasing.  For paired differences the incumbent's
  bound is the zero reference: the challenger's difference UCB must be
  provably negative.
- :func:`commit_warranted` — exploration stops when the incumbent's
  upper bound is below every challenger's lower bound: no order can
  beat it at the confidence level, so further exploration only burns
  budget.  Again, paired form: zero below every difference LCB.

Everything here is pure float arithmetic on posterior statistics — no
randomness, no clocks — so identical inputs give identical decisions,
which is what makes the replay tests byte-exact.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "confidence_radius",
    "paired_radius",
    "detection_threshold",
    "swap_warranted",
    "commit_warranted",
]

# A variance estimate needs at least two (effective) observations.
_MIN_PAIRED_WEIGHT = 2.0


def confidence_radius(
    effective_pulls: float,
    rounds: int,
    span: float,
    delta: float,
    arm_count: int,
) -> float:
    """Anytime Hoeffding half-width for one arm's mean-cost estimate.

    ``effective_pulls`` is the (possibly decay-discounted) observation
    weight behind the mean; ``rounds`` the total pulls across all arms so
    far (the union bound over time); ``span`` the largest per-pull cost
    any arm can realize.  An unobserved arm has an infinite radius — its
    bounds are vacuous until it is pulled.
    """
    if effective_pulls <= 0.0:
        return math.inf
    if span <= 0.0:
        return 0.0
    horizon = max(rounds, 2)
    union = max(arm_count, 1) * horizon * horizon
    return span * math.sqrt(math.log(union / delta) / (2.0 * effective_pulls))


def paired_radius(
    variance: float,
    effective_weight: float,
    delta: float,
    arm_count: int,
) -> float:
    """Half-width for a paired mean-difference estimate.

    ``variance`` is the (decay-discounted) empirical variance of the
    per-tuple cost differences and ``effective_weight`` their total
    observation weight; the log term union-bounds over the branch's
    arms.  Unlike :func:`confidence_radius` this is a Gaussian-style
    bound on measured variance, not a span-based Hoeffding bound — the
    repeated-testing correction is deliberately delegated to the burst
    structure (paired samples arrive in short, change-triggered bursts,
    not continuously) and to the regret ledger, whose hard budget caps
    the damage any statistical fluke can do.  With fewer than two
    effective observations the variance estimate is meaningless and the
    radius is infinite — paired decisions need paired data.
    """
    if effective_weight < _MIN_PAIRED_WEIGHT:
        return math.inf
    union = max(arm_count, 1)
    spread = max(variance, 0.0)
    return math.sqrt(
        2.0 * spread * math.log(union / delta) / effective_weight
    )


def detection_threshold(
    variance: float, effective_weight: float, delta: float
) -> float:
    """How far the incumbent's cost must drift before exploring again.

    The change detector compares the incumbent's decayed mean cost
    against the baseline recorded when it was last (re)validated; a
    rise beyond this threshold triggers a paired exploration burst
    (M-UCB-style change detection, per the ADOPT line of work).  A
    one-shot Gaussian bound at level ``delta`` on the measured cost
    variance: false fires are possible under repeated testing, but a
    false fire costs one budget-capped burst, while a missed change
    costs unbounded regret — the asymmetry is priced in.
    """
    if effective_weight < _MIN_PAIRED_WEIGHT:
        return math.inf
    spread = max(variance, 0.0)
    return math.sqrt(2.0 * spread * math.log(1.0 / delta) / effective_weight)


def swap_warranted(
    challenger_ucb: float, incumbent_lcb: float
) -> bool:
    """Is a challenger provably cheaper than the incumbent?"""
    return challenger_ucb < incumbent_lcb


def commit_warranted(
    incumbent_ucb: float, challenger_lcbs: Sequence[float]
) -> bool:
    """May the bandit stop exploring and freeze the incumbent?

    True when every challenger's lower bound clears the incumbent's
    upper bound — the incumbent is probably-approximately-optimal and
    further pulls cannot change the ranking at this confidence level.
    Vacuously true with no challengers (a one-arm branch).
    """
    return all(incumbent_ucb <= lcb for lcb in challenger_lcbs)
