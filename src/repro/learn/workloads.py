"""Synthetic drifting / adversarial stream generators for learning.

The adversarial workload is built so that *no static plan is ever safe*:
two expensive predicate attributes alternate roles segment by segment —
in odd segments ``p`` is the killer (fails 90% of tuples) and ``q``
mostly passes; in even segments the roles flip.  The optimal predicate
order therefore flips with every segment, any fixed order is wrong half
the time, and — critically — no cheap attribute is correlated with the
regime, so conditioning skeletons cannot learn the flip either.  Only
something that watches realized costs online can track it.

Everything is generated from one seeded ``numpy`` generator, so a given
``(n_segments, segment_length, seed)`` triple is a byte-stable dataset —
the determinism the replay tests and the benchmark gates stand on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import Attribute, Schema
from repro.core.predicates import RangePredicate
from repro.core.query import ConjunctiveQuery
from repro.exceptions import LearningError

__all__ = ["DriftingWorkload", "adversarial_stream", "drifting_stream"]

# Probability the active (killer) attribute fails its predicate, and the
# probability the dormant attribute passes its predicate.  The gap is
# what makes order choice matter: killer-first ~ C + 0.1*C, dormant
# -first ~ C + 0.7*C per tuple.
_KILL_FAIL = 0.9
_DORMANT_PASS = 0.7


@dataclass(frozen=True)
class DriftingWorkload:
    """A generated stream plus the ground truth about its regimes.

    ``boundaries`` are the positions where a new regime begins (the
    first segment implicitly starts at 0); ``regimes[i]`` names the
    killer attribute of segment ``i`` (``"p"`` or ``"q"``).
    """

    schema: Schema
    query: ConjunctiveQuery
    data: np.ndarray
    boundaries: tuple[int, ...]
    regimes: tuple[str, ...]

    def segment_slices(self) -> tuple[slice, ...]:
        starts = (0,) + self.boundaries
        stops = self.boundaries + (self.data.shape[0],)
        return tuple(slice(a, b) for a, b in zip(starts, stops))


def _learning_schema() -> Schema:
    return Schema(
        [
            Attribute("mode", 4, 1.0),
            Attribute("p", 5, 100.0),
            Attribute("q", 5, 100.0),
        ]
    )


def _learning_query(schema: Schema) -> ConjunctiveQuery:
    return ConjunctiveQuery(
        schema,
        [
            RangePredicate("mode", 1, 3),
            RangePredicate("p", 1, 2),
            RangePredicate("q", 1, 2),
        ],
    )


def _sample_segment(
    rng: np.random.Generator, length: int, killer: str
) -> np.ndarray:
    """One regime's tuples: ``killer`` mostly fails, the other passes."""
    rows = np.empty((length, 3), dtype=np.int64)
    rows[:, 0] = rng.integers(1, 5, size=length)  # mode: uniform noise
    for column, name in ((1, "p"), (2, "q")):
        if name == killer:
            failing = rng.random(length) < _KILL_FAIL
            values = np.where(
                failing,
                rng.integers(3, 6, size=length),
                rng.integers(1, 3, size=length),
            )
        else:
            passing = rng.random(length) < _DORMANT_PASS
            values = np.where(
                passing,
                rng.integers(1, 3, size=length),
                rng.integers(3, 6, size=length),
            )
        rows[:, column] = values
    return rows


def adversarial_stream(
    n_segments: int = 6,
    segment_length: int = 500,
    seed: int = 0,
) -> DriftingWorkload:
    """Alternating-killer stream: the optimal order flips every segment."""
    if n_segments < 1 or segment_length < 1:
        raise LearningError(
            f"need >= 1 segment of >= 1 tuple: {n_segments} x {segment_length}"
        )
    rng = np.random.default_rng(seed)
    schema = _learning_schema()
    regimes = tuple("p" if i % 2 == 0 else "q" for i in range(n_segments))
    segments = [
        _sample_segment(rng, segment_length, killer) for killer in regimes
    ]
    boundaries = tuple(
        segment_length * i for i in range(1, n_segments)
    )
    return DriftingWorkload(
        schema=schema,
        query=_learning_query(schema),
        data=np.vstack(segments),
        boundaries=boundaries,
        regimes=regimes,
    )


def drifting_stream(
    n_tuples: int = 2000,
    flip_at: float = 0.5,
    seed: int = 0,
) -> DriftingWorkload:
    """A single regime flip part-way through — the gentle drift case."""
    if n_tuples < 2 or not 0.0 < flip_at < 1.0:
        raise LearningError(
            f"need >= 2 tuples and flip_at in (0, 1): {n_tuples}, {flip_at}"
        )
    rng = np.random.default_rng(seed)
    schema = _learning_schema()
    first = int(n_tuples * flip_at)
    segments = [
        _sample_segment(rng, first, "p"),
        _sample_segment(rng, n_tuples - first, "q"),
    ]
    return DriftingWorkload(
        schema=schema,
        query=_learning_query(schema),
        data=np.vstack(segments),
        boundaries=(first,),
        regimes=("p", "q"),
    )
