"""Bandit state persistence across statistics-version bumps.

The serving layer invalidates plan caches, profiles, and compiled
kernels whenever the statistics version moves — that machinery exists
precisely to throw stale *derived* artifacts away.  Learned posteriors
are different: they are evidence, and evidence survives a version bump
(discounted, via :meth:`~repro.learn.bandit.OrderBanditEnsemble.adopt`).
:class:`BanditStateStore` is the keyed, thread-safe, LRU-bounded home
for that evidence: entries are keyed by ``(key, statistics_version)``
where ``key`` is the service's query fingerprint, so a warm start always
knows which statistics generation the posteriors were trained under.

The store holds only frozen :class:`~repro.learn.bandit.BanditState`
snapshots — no live ensembles — so sharing it across threads or reusing
a snapshot in two runs can never couple their mutation, which keeps the
deterministic-replay guarantees intact.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.exceptions import LearningError
from repro.learn.bandit import BanditState

__all__ = ["BanditStateStore"]


class BanditStateStore:
    """LRU map ``(key, statistics_version) -> BanditState``."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise LearningError(f"store capacity must be >= 1: {capacity}")
        self._capacity = capacity
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, int], BanditState] = OrderedDict()

    def put(self, key: str, version: int, state: BanditState) -> None:
        with self._lock:
            composite = (key, version)
            if composite in self._entries:
                self._entries.pop(composite)
            self._entries[composite] = state
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def get(self, key: str, version: int) -> BanditState | None:
        with self._lock:
            state = self._entries.get((key, version))
            if state is not None:
                self._entries.move_to_end((key, version))
            return state

    def latest(self, key: str) -> tuple[int, BanditState] | None:
        """The newest-version state stored for ``key``, if any."""
        with self._lock:
            best: tuple[int, BanditState] | None = None
            for (entry_key, version), state in self._entries.items():
                if entry_key != key:
                    continue
                if best is None or version > best[0]:
                    best = (version, state)
            return best

    def versions(self, key: str) -> tuple[int, ...]:
        with self._lock:
            return tuple(
                sorted(
                    version
                    for entry_key, version in self._entries
                    if entry_key == key
                )
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
