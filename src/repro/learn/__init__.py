"""Online bandit learning of branch-local attribute orders.

The adaptive streaming tier (:mod:`repro.execution.streaming`) reacts
to drift by throwing the plan away — chi-square fires, the distribution
is refit, the planner replans from scratch.  That is both slow to react
(the monitor must accumulate a full window of divergent cells) and
wasteful when only one branch's ordering went stale.  This package
replaces that loop with an *online learner* in the spirit of
plan-action-optimization (Trummer & Koch, arXiv:1511.01782) and ADOPT
(arXiv:2307.16540):

- :class:`~repro.learn.bandit.OrderBanditEnsemble` treats each
  branch-local predicate order as a bandit arm; per-tuple acquisition
  costs from the executor are the (negative) rewards;
- exploration is charged into an explicit
  :class:`~repro.learn.ledger.RegretLedger` that reuses the two-sided
  base+retry ledger shape of the faults tier — every pull of a
  non-served arm books its cost *excess over the served arm's posterior
  mean* against a hard regret budget, and the ledger must reconcile
  exactly with the stream's metered total;
- order changes are confidence-bound-triggered incremental swaps
  (challenger's UCB below incumbent's LCB), not full replans, and a
  branch *commits* (stops exploring) once the incumbent's UCB clears
  every challenger's LCB;
- the chi-square :class:`~repro.obs.DriftMonitor` stays in the loop for
  distribution shift that reshapes the conditioning skeleton itself —
  but refits warm-start from the previous posteriors instead of
  starting cold;
- everything the learner claims is auditable: plans carry a
  :class:`~repro.learn.bandit.LearnedProvenance` the verifier's ``LRN``
  rule family re-checks, and bandit state survives statistics-version
  bumps through the :class:`~repro.learn.state.BanditStateStore`.

Entry points: :class:`~repro.learn.planner.BanditPlanner` (one-shot
planning with honest Eq. 3 costs), and
:class:`~repro.learn.stream.LearnedStreamExecutor` (the full learning
loop over a tuple stream, with optional fault injection).
"""

from repro.learn.arms import DEFAULT_MAX_ARM_PREDICATES, Arm, ArmSpace
from repro.learn.bandit import (
    ArmRecord,
    BanditState,
    BranchBandit,
    BranchProvenance,
    LearnedProvenance,
    OrderBanditEnsemble,
    StoredBranch,
    StoredPosterior,
)
from repro.learn.bench import LearnedBenchReport, run_learned_bench
from repro.learn.ledger import LedgerSnapshot, RegretLedger
from repro.learn.pao import (
    commit_warranted,
    confidence_radius,
    detection_threshold,
    paired_radius,
    swap_warranted,
)
from repro.learn.planner import (
    DEFAULT_REGRET_PULLS,
    BanditPlanner,
    default_regret_budget,
)
from repro.learn.state import BanditStateStore
from repro.learn.stream import (
    LearnedReplanEvent,
    LearnedStreamExecutor,
    LearnedStreamReport,
)
from repro.learn.workloads import (
    DriftingWorkload,
    adversarial_stream,
    drifting_stream,
)

__all__ = [
    "Arm",
    "ArmSpace",
    "DEFAULT_MAX_ARM_PREDICATES",
    "ArmRecord",
    "BranchProvenance",
    "LearnedProvenance",
    "BranchBandit",
    "OrderBanditEnsemble",
    "BanditState",
    "StoredBranch",
    "StoredPosterior",
    "LedgerSnapshot",
    "RegretLedger",
    "confidence_radius",
    "detection_threshold",
    "paired_radius",
    "swap_warranted",
    "commit_warranted",
    "BanditPlanner",
    "DEFAULT_REGRET_PULLS",
    "default_regret_budget",
    "BanditStateStore",
    "LearnedStreamExecutor",
    "LearnedStreamReport",
    "LearnedReplanEvent",
    "DriftingWorkload",
    "adversarial_stream",
    "drifting_stream",
    "LearnedBenchReport",
    "run_learned_bench",
]
