"""Branch-local order bandits and the ensemble that coordinates them.

The learned planner decomposes a plan into a *conditioning skeleton*
(the split structure a base planner chose) plus, per skeleton leaf, a
:class:`BranchBandit` choosing among that branch's predicate orders
(:mod:`repro.learn.arms`).  All branches share one
:class:`~repro.learn.ledger.RegretLedger`, so the exploration budget is
a plan-wide contract, not a per-branch one.

Everything is deterministic — no randomness anywhere — and the
exploration structure is change-detection-triggered bursts (the M-UCB
shape from the nonstationary-bandit literature, fused with this repo's
drift loop):

- normally every tuple runs the *incumbent* order; its realized cost
  feeds the incumbent's posterior and the observed per-step pass bits
  feed a selectivity change detector;
- the detector compares the served order's observed conditional pass
  rates against the model-predicted rates the arms were priored from
  (:meth:`~repro.learn.arms.ArmSpace.step_rates`).  Selectivities are
  Bernoulli statistics with bounded variance, so a regime flip moves
  them decisively within a handful of tuples, where per-tuple *cost*
  means — whose variance is set by the most expensive attribute — stay
  statistically ambiguous for hundreds (we measured chronic false fires
  from a cost-mean detector, plus a winner's-curse bias: the serve
  choice is an argmin over noisy means, so the incumbent's own mean
  systematically understates its true cost);
- a detection opens an *exploration burst*: the executor switches to
  value-blind full-information pulls (acquire every branch attribute,
  then replay every order on the complete row).  Because the tuple is
  chosen before any value is seen, the replayed cost vector is an
  unbiased sample for **all** arms at once — unlike replaying only
  tuples the served walk happened to read fully, which conditions the
  sample on the incumbent's own predicates passing and makes the
  incumbent look maximally expensive on its own evidence (we measured
  swap thrash from exactly this);
- a detection also marks the model rates *stale*: when the burst ends
  the detector stays disarmed until the next statistics refit
  (:meth:`BranchBandit.warm_start`) supplies fresh predictions —
  re-arming against a model the stream just drifted away from would
  refire immediately and burn the budget on a detection loop;
- every full-information pull charges its excess over the incumbent's
  counterfactual cost to the shared
  :class:`~repro.learn.ledger.RegretLedger`, and the burst is gated by
  :meth:`~repro.learn.ledger.RegretLedger.can_explore` with the
  branch's worst-case read, so the regret budget can never be
  overdrawn, even transiently.

The incumbent changes only through
:func:`~repro.learn.pao.swap_warranted`, and the branch freezes through
:func:`~repro.learn.pao.commit_warranted` — the PAO discipline that
replaces the old "chi-square fired, replan from scratch" reflex.  Both
tests run on *paired* challenger-minus-incumbent differences from the
burst sample: per-tuple costs are noisy but the noise is shared between
orders replayed on the same tuple, so the paired statistic is decisive
within a drift segment while the absolute Hoeffding bounds are still
vacuous.  A burst ends when the paired evidence settles (no challenger
looks cheaper than the incumbent), at which point the detector is
re-baselined; a commit ends it too, and a later detection re-opens even
a committed branch — commitment is a statement about the current
regime, not a vow.

``posterior_decay`` < 1 turns the posteriors into discounted means
(D-UCB): every recorded pull first decays *all* arms' observation
weight, so stale regimes fade and the bandit tracks non-stationary
streams without waiting for a refit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Union

from repro.core.attributes import Schema
from repro.core.cost import expected_cost
from repro.core.cost_models import AcquisitionCostModel
from repro.core.plan import ConditionNode, PlanNode
from repro.core.query import ConjunctiveQuery
from repro.core.ranges import RangeVector
from repro.exceptions import LearningError
from repro.learn.arms import DEFAULT_MAX_ARM_PREDICATES, Arm, ArmSpace
from repro.learn.ledger import LedgerSnapshot, RegretLedger
from repro.learn.pao import (
    commit_warranted,
    confidence_radius,
    detection_threshold,
    paired_radius,
    swap_warranted,
)
from repro.probability.base import Distribution

__all__ = [
    "ArmRecord",
    "BranchProvenance",
    "LearnedProvenance",
    "StoredPosterior",
    "StoredBranch",
    "BanditState",
    "BranchBandit",
    "ConditionVisit",
    "OrderBanditEnsemble",
]


# ----------------------------------------------------------------------
# Provenance: what an emitted plan carries for the LRN verifier rules.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArmRecord:
    """One arm's posterior, frozen for provenance."""

    arm_id: int
    order: tuple[int, ...]
    pulls: int
    weight: float
    mean: float
    lcb: float
    ucb: float
    prior: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "arm_id": self.arm_id,
            "order": list(self.order),
            "pulls": self.pulls,
            "mean": round(self.mean, 6),
            "lcb": round(self.lcb, 6) if math.isfinite(self.lcb) else "-inf",
            "ucb": round(self.ucb, 6) if math.isfinite(self.ucb) else "inf",
            "prior": round(self.prior, 6),
        }


@dataclass(frozen=True)
class BranchProvenance:
    """One branch bandit's state, keyed by the verifier's leaf path."""

    path: str
    served_arm: int
    committed: bool
    rounds: int
    span: float
    arms: tuple[ArmRecord, ...]


@dataclass(frozen=True)
class LearnedProvenance:
    """How a learned plan came to be: arms, posteriors, and the ledger.

    Attached to :class:`~repro.planning.base.PlanningResult` and to
    learned stream reports; the verifier's ``LRN`` family audits it —
    budget conservation (``LRN001``), ledger reconciliation against
    ``observed_total`` (``LRN002``), posterior well-formedness
    (``LRN003``/``LRN004``), and plan/incumbent agreement (``LRN005``).
    """

    branches: tuple[BranchProvenance, ...]
    ledger: LedgerSnapshot
    observed_total: float
    delta: float

    @property
    def committed(self) -> bool:
        return all(branch.committed for branch in self.branches)

    @property
    def total_pulls(self) -> int:
        return sum(branch.rounds for branch in self.branches)


# ----------------------------------------------------------------------
# Stored state: what survives statistics-version bumps in the store.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StoredPosterior:
    pulls: int
    weight: float
    cost_sum: float
    prior: float


@dataclass(frozen=True)
class StoredBranch:
    path: str
    orders: tuple[tuple[int, ...], ...]
    served: int
    committed: bool
    rounds: int
    posteriors: tuple[StoredPosterior, ...]


@dataclass(frozen=True)
class BanditState:
    """A frozen, adoptable export of an ensemble's learned posteriors."""

    query: str
    attributes: int
    branches: tuple[StoredBranch, ...]


# ----------------------------------------------------------------------
# Posteriors and branch bandits.
# ----------------------------------------------------------------------


class _ArmPosterior:
    """Discounted running mean with a prior pseudo-observation."""

    __slots__ = ("pulls", "weight", "cost_sum", "prior", "prior_weight")

    def __init__(self, prior: float, prior_weight: float) -> None:
        self.pulls = 0
        self.weight = 0.0
        self.cost_sum = 0.0
        self.prior = prior
        self.prior_weight = prior_weight

    @property
    def mean(self) -> float:
        denominator = self.prior_weight + self.weight
        if denominator <= 0.0:
            return self.prior
        return (self.prior * self.prior_weight + self.cost_sum) / denominator

    def decay(self, factor: float) -> None:
        self.weight *= factor
        self.cost_sum *= factor

    def observe(self, cost: float) -> None:
        self.pulls += 1
        self.weight += 1.0
        self.cost_sum += cost


# A burst may not settle before every challenger's paired evidence has
# at least this much effective weight — a freshly swapped incumbent must
# survive a minimum of confirmation pulls before the burst closes.
_MIN_SETTLE_WEIGHT = 2.0

# A challenger holds a burst open only when its paired mean undercuts
# the incumbent by more than this fraction of the branch's worst-case
# read.  Without the deadband a statistical near-tie — whose mean
# difference hovers around zero — keeps the burst alive for as long as
# the noise says "maybe", which is exploration spend that can never buy
# a meaningful swap.
_SETTLE_DEADBAND = 0.02

# No burst runs past this multiple of ``burst_pulls``: if the paired
# evidence has not settled by then the arms are statistically too close
# for the swap to matter, and the budget is better saved for the next
# drift.
_MAX_BURST_FACTOR = 4

# Absolute floor on the selectivity change-detection threshold, in pass
# -rate units.  The statistical threshold shrinks like 1/sqrt(weight)
# under repeated testing, and the model rates themselves carry sampling
# error from the finite statistics window (a 96-row fit is easily off
# by 0.1) — a deviation smaller than this is indistinguishable from fit
# noise and should never buy a burst no matter how much evidence has
# accumulated.  Regime flips that matter move a selectivity by several
# tenths, so the floor costs no real detections.
_DETECTION_FLOOR = 0.25

# Confidence parameter for the change detector, separate from the
# swap/commit ``delta``: detection is re-tested on every served tuple
# (thousands of times per run) while a swap test runs once per burst, so
# the detector needs a materially smaller per-test false-positive rate.
# A false fire costs a wasted burst *and* disarms detection until the
# next refit — we measured missed regime flips from exactly that chain.
_DETECTION_DELTA = 0.05

# A step's detector may not fire before its decayed pass-rate estimate
# rests on this much effective weight: a two-observation rate is noise,
# and a variance estimated from near-identical early samples undercuts
# the statistical threshold badly enough that the floor alone cannot
# save it.
_MIN_DETECTOR_WEIGHT = 8.0


class _Moments:
    """Discounted first and second moments of an observation stream.

    Serves two roles: the paired challenger-minus-incumbent cost
    difference accumulators, and the per-step pass-rate observations
    the selectivity change detector compares against the model.
    """

    __slots__ = ("weight", "total", "squares")

    def __init__(self) -> None:
        self.weight = 0.0
        self.total = 0.0
        self.squares = 0.0

    @property
    def mean(self) -> float:
        if self.weight <= 0.0:
            return 0.0
        return self.total / self.weight

    @property
    def variance(self) -> float:
        if self.weight <= 0.0:
            return 0.0
        mean = self.mean
        return max(0.0, self.squares / self.weight - mean * mean)

    def decay(self, factor: float) -> None:
        self.weight *= factor
        self.total *= factor
        self.squares *= factor

    def observe(self, difference: float) -> None:
        self.weight += 1.0
        self.total += difference
        self.squares += difference * difference

    def reset(self) -> None:
        self.weight = 0.0
        self.total = 0.0
        self.squares = 0.0


class BranchBandit:
    """Deterministic change-detection bandit over one branch's orders."""

    def __init__(
        self,
        path: str,
        arm_space: ArmSpace,
        priors: tuple[float, ...],
        ledger: RegretLedger,
        *,
        span: float,
        delta: float,
        burst_pulls: int,
        decay: float,
        prior_weight: float = 1.0,
        step_rates: tuple[tuple[float, ...], ...] | None = None,
    ) -> None:
        if len(priors) != len(arm_space):
            raise LearningError(
                f"{len(priors)} priors for {len(arm_space)} arms"
            )
        if step_rates is not None and len(step_rates) != len(arm_space):
            raise LearningError(
                f"{len(step_rates)} step-rate vectors for "
                f"{len(arm_space)} arms"
            )
        self._path = path
        self._arm_space = arm_space
        self._ledger = ledger
        self._span = span
        self._delta = delta
        self._burst = burst_pulls
        self._decay = decay
        self._posteriors = [
            _ArmPosterior(prior, prior_weight) for prior in priors
        ]
        self._paired = [_Moments() for _ in priors]
        self._served = _argmin(priors)
        self._committed = len(arm_space) <= 1
        self._rounds = 0
        # A fresh branch opens with a validation burst: the priors chose
        # the incumbent, the burst's unbiased paired sample confirms (or
        # corrects) the choice before the branch settles into serving.
        # ``_burst_done`` counts pulls since the burst opened or the
        # incumbent last changed (a swap restarts the confirmation
        # clock); ``_burst_total`` counts pulls since the burst opened
        # (the hard cap's clock — swaps must not extend it unboundedly).
        self._bursting = len(arm_space) > 1
        self._burst_done = 0
        self._burst_total = 0
        # Selectivity change detection: model-predicted per-step pass
        # rates per arm, observed pass-rate moments for the served
        # order's steps, and an armed flag.  A detection marks the model
        # stale; the detector then stays disarmed from the end of that
        # burst until warm_start supplies fresh rates.
        self._model_rates: tuple[tuple[float, ...], ...] = (
            step_rates
            if step_rates is not None
            else tuple(() for _ in priors)
        )
        self._stale = False
        self._armed = any(len(rates) > 0 for rates in self._model_rates)
        self._step_obs: list[_Moments] = [
            _Moments() for _ in self._model_rates[self._served]
        ]

    # -- introspection -------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def arm_space(self) -> ArmSpace:
        return self._arm_space

    @property
    def served(self) -> int:
        return self._served

    @property
    def served_arm(self) -> Arm:
        return self._arm_space[self._served]

    @property
    def committed(self) -> bool:
        return self._committed

    @property
    def rounds(self) -> int:
        return self._rounds

    @property
    def span(self) -> float:
        return self._span

    def mean(self, arm_id: int) -> float:
        return self._posteriors[arm_id].mean

    def radius(self, arm_id: int) -> float:
        return confidence_radius(
            self._posteriors[arm_id].weight,
            self._rounds,
            self._span,
            self._delta,
            len(self._arm_space),
        )

    def lcb(self, arm_id: int) -> float:
        radius = self.radius(arm_id)
        if math.isinf(radius):
            return 0.0
        return max(0.0, self.mean(arm_id) - radius)

    def ucb(self, arm_id: int) -> float:
        return self.mean(arm_id) + self.radius(arm_id)

    def paired_mean(self, arm_id: int) -> float:
        """Mean cost difference of ``arm_id`` vs the incumbent (paired)."""
        return self._paired[arm_id].mean

    def paired_bound(self, arm_id: int) -> float:
        """Half-width of the paired difference estimate for ``arm_id``."""
        paired = self._paired[arm_id]
        return paired_radius(
            paired.variance,
            paired.weight,
            self._delta,
            len(self._arm_space),
        )

    @property
    def bursting(self) -> bool:
        return self._bursting

    # -- the bandit loop ----------------------------------------------

    def select(self) -> int:
        """The arm to run on a served tuple — always the incumbent.

        Exploration is no longer a served-path decision: it happens on
        value-blind full-information pulls scheduled by the change
        detector (:meth:`wants_full_pull` / :meth:`record_full`), so a
        served tuple never pays for learning.
        """
        return self._served

    def wants_full_pull(self) -> bool:
        """Should the next tuple be a full-information exploration pull?

        True while a burst is open *and* the ledger can still afford a
        worst-case read.  When the budget gate refuses, the burst is
        abandoned and the detector re-baselined (mutating here keeps the
        decision in one place): without the re-baseline the detector
        would re-open the unaffordable burst every tuple.
        """
        if self._committed or not self._bursting:
            return False
        if not self._ledger.can_explore(self._span):
            self._end_burst()
            return False
        return True

    def record(
        self,
        arm_id: int,
        cost: float,
        passes: "tuple[bool, ...] | list[bool]" = (),
    ) -> None:
        """Feed one realized served-pull cost back; charge the ledger.

        ``passes`` carries the walk's observed per-step pass bits for
        the prefix of steps actually evaluated (a short-circuited walk
        stops at its first failure) — the selectivity evidence the
        change detector runs on.  Callers without step traces (the
        fault-injected executor) omit it; those runs adapt through
        outage-triggered refits instead.
        """
        reference = self.mean(self._served)
        if arm_id == self._served:
            self._ledger.charge_exploit(cost)
        else:
            self._ledger.charge_explore(cost, reference)
        if self._decay < 1.0:
            for posterior in self._posteriors:
                posterior.decay(self._decay)
            for paired in self._paired:
                paired.decay(self._decay)
            for moments in self._step_obs:
                moments.decay(self._decay)
        self._posteriors[arm_id].observe(cost)
        if arm_id == self._served:
            for index, passed in enumerate(passes):
                if index < len(self._step_obs):
                    self._step_obs[index].observe(1.0 if passed else 0.0)
            self._maybe_detect()
        self._rounds += 1

    def record_full(
        self, full_cost: float, costs: "list[float] | tuple[float, ...]"
    ) -> None:
        """One value-blind full-information pull: every arm at once.

        ``full_cost`` is the realized cost of acquiring every branch
        attribute; ``costs`` the counterfactual replay cost of each arm
        on the completed row.  The incumbent's replay cost is the
        exploit reference — the ledger books it on the base side and the
        rest as exploration spend, so conservation is exact and the
        burst's price is fully audited.  Because the tuple was chosen
        before any value was seen, the replay vector is an unbiased
        sample for every arm simultaneously, which is what the paired
        swap/commit statistics require.
        """
        if len(costs) != len(self._posteriors):
            raise LearningError(
                f"{len(costs)} counterfactual costs for "
                f"{len(self._posteriors)} arms"
            )
        reference = costs[self._served]
        self._ledger.charge_explore(full_cost, reference)
        if self._decay < 1.0:
            for posterior in self._posteriors:
                posterior.decay(self._decay)
            for paired in self._paired:
                paired.decay(self._decay)
        for arm_id, cost in enumerate(costs):
            self._posteriors[arm_id].observe(cost)
            if arm_id != self._served:
                self._paired[arm_id].observe(cost - reference)
        self._rounds += 1
        if self._bursting:
            self._burst_done += 1
            self._burst_total += 1
            if self._burst_done >= self._burst and self._burst_settled():
                self._end_burst()

    def record_full_failure(self, cost: float) -> None:
        """A full-information pull that degraded mid-read (faulted runs).

        No replay is possible, so no posterior moves; the whole realized
        cost is charged with the incumbent's mean as the exploit
        reference — the excess is exploration spend that bought nothing,
        which is exactly what the regret ledger exists to meter.  The
        burst pull is still consumed so a storm cannot pin a burst open.
        """
        self._ledger.charge_explore(cost, self.mean(self._served))
        self._rounds += 1
        if self._bursting:
            self._burst_done += 1
            self._burst_total += 1
            if self._burst_done >= self._burst and self._burst_settled():
                self._end_burst()

    def maybe_swap(self) -> int | None:
        """Dethrone the incumbent if a challenger provably beats it.

        Runs only while a burst is open — the paired accumulators hold
        burst evidence, and acting on them after the burst settled would
        replay stale differences against a revalidated incumbent (the
        exact post-burst thrash we measured before gating this).  The
        test: a challenger whose difference-UCB sits below the negative
        deadband is cheaper at confidence ``1 - delta`` *and* by enough
        to matter — a provable-but-trivial improvement (a near-tie with
        a deterministic hair of difference) is not worth the swap churn
        and the confirmation pulls it triggers.  A swap resets every
        paired accumulator — the differences were relative to the
        dethroned incumbent — and the burst keeps running, so the new
        incumbent must survive its own confirmation pulls before the
        burst settles.
        """
        if self._committed or not self._bursting or len(self._posteriors) <= 1:
            return None
        deadband = _SETTLE_DEADBAND * self._span
        if self._burst_total >= _MAX_BURST_FACTOR * self._burst:
            return self._resolve_capped_burst(deadband)
        challenger: int | None = None
        challenger_ucb = math.inf
        for arm_id in range(len(self._posteriors)):
            if arm_id == self._served:
                continue
            bound = self.paired_mean(arm_id) + self.paired_bound(arm_id)
            if bound < challenger_ucb:
                challenger = arm_id
                challenger_ucb = bound
        if challenger is not None and swap_warranted(challenger_ucb, -deadband):
            self._served = challenger
            self._reset_paired()
            # The new incumbent earns a full confirmation round: a
            # handful of post-swap pulls can be degenerate (tuples the
            # shared lead attribute rejects cost the same under every
            # order) and would otherwise settle the burst on an arm the
            # very next representative tuple dethrones.
            self._burst_done = 0
            return challenger
        return None

    def _resolve_capped_burst(self, deadband: float) -> int | None:
        """Best-effort resolution when a burst exhausts its hard cap.

        The PAO bound did not prove any challenger by then — but the
        accumulated paired sample is the largest this burst will ever
        have, and serving a known-worse-looking incumbent because the
        proof fell short wastes everything the burst paid for.  At the
        cap the decision drops to preponderance of evidence: the
        lowest-mean challenger wins if its paired mean undercuts the
        deadband; either way the burst ends.
        """
        best: int | None = None
        best_mean = -deadband
        for arm_id, paired in enumerate(self._paired):
            if arm_id == self._served:
                continue
            if paired.weight < _MIN_SETTLE_WEIGHT:
                continue
            if paired.mean < best_mean:
                best = arm_id
                best_mean = paired.mean
        if best is not None:
            self._served = best
        self._end_burst()
        return best

    def check_commit(self) -> bool:
        """Latch the commit flag; True only on the transition.

        Paired form of :func:`~repro.learn.pao.commit_warranted`: the
        branch freezes when every challenger's difference-LCB clears the
        zero reference — each is provably more expensive than the
        incumbent on the shared tuple sample.  Like :meth:`maybe_swap`
        this reads burst evidence, so it only runs while a burst is
        open — and only once the burst has run its minimum length: a
        handful of degenerate early samples (e.g. tuples the cheap lead
        attribute rejects, where every order costs the same) can show
        zero variance and fake an airtight bound.
        """
        if self._committed or not self._bursting:
            return False
        if self._burst_done < self._burst:
            return False
        if commit_warranted(
            0.0,
            [
                self.paired_mean(arm_id) - self.paired_bound(arm_id)
                for arm_id in range(len(self._posteriors))
                if arm_id != self._served
            ],
        ):
            self._committed = True
            self._end_burst()
            return True
        return False

    def _burst_settled(self) -> bool:
        """May the open burst close?  Yes when no challenger looks better.

        Every challenger needs a minimum of paired weight (a swap resets
        the accumulators, so a new incumbent earns confirmation pulls),
        and none may show a strictly negative mean difference — a
        cheaper-looking challenger keeps the burst open until the bound
        either proves the swap or the estimate regresses to the
        incumbent.  A statistical tie cannot hold the burst open forever:
        ``maybe_swap`` resolves the burst by preponderance of evidence
        once the total pull count hits the ``_MAX_BURST_FACTOR`` cap.
        """
        deadband = _SETTLE_DEADBAND * self._span
        for arm_id, paired in enumerate(self._paired):
            if arm_id == self._served:
                continue
            if paired.weight < _MIN_SETTLE_WEIGHT:
                return False
            if paired.mean < -deadband:
                return False
        return True

    def _end_burst(self) -> None:
        """Close the burst; stale model rates keep the detector disarmed.

        Burst evidence is consumed here — the paired accumulators are
        reset so no post-burst decision can replay them against the
        revalidated incumbent.
        """
        self._bursting = False
        self._burst_done = 0
        self._burst_total = 0
        self._reset_paired()
        if self._stale:
            self._armed = False
        self._revalidate()

    def _revalidate(self) -> None:
        """Restart the selectivity observations for the current incumbent."""
        self._step_obs = [
            _Moments() for _ in self._model_rates[self._served]
        ]

    def _maybe_detect(self) -> None:
        """Open a burst when an observed selectivity leaves the model.

        Runs on served pulls only.  Each evaluated step's observed
        conditional pass rate is compared to the model-predicted rate
        the arms were priored from; the threshold is the statistical one
        from :func:`~repro.learn.pao.detection_threshold` (the variance
        of a Bernoulli rate is ``p(1-p)``, so the bound is tight) with
        an absolute floor of ``_DETECTION_FLOOR``, covering the model
        rates' own fit error from the finite statistics window.  A fire
        marks the model stale — the rates just stopped describing the
        stream — and re-opens even a committed branch: drift evidence
        trumps a past commit.
        """
        if not self._armed or self._bursting or len(self._posteriors) <= 1:
            return
        rates = self._model_rates[self._served]
        for moments, model in zip(self._step_obs, rates):
            if moments.weight < _MIN_DETECTOR_WEIGHT:
                continue
            # Null-hypothesis variance: under "no drift" the observed
            # bits are Bernoulli(model), so the sampling variance is
            # model * (1 - model).  Using the *observed* variance
            # instead understates the threshold exactly when a fluke
            # drags the observed rate toward 0 or 1 — the measured
            # false-fire mode of this detector.
            threshold = max(
                detection_threshold(
                    model * (1.0 - model), moments.weight, _DETECTION_DELTA
                ),
                _DETECTION_FLOOR,
            )
            if abs(moments.mean - model) > threshold:
                self._stale = True
                self._committed = False
                self._bursting = True
                self._burst_done = 0
                self._burst_total = 0
                return

    def _reset_paired(self) -> None:
        for paired in self._paired:
            paired.reset()

    # -- refits and persistence ---------------------------------------

    def warm_start(
        self,
        priors: tuple[float, ...],
        discount: float,
        step_rates: tuple[tuple[float, ...], ...] | None = None,
    ) -> None:
        """Re-prior against fresh statistics, discounting old evidence.

        ``step_rates`` are the freshly fitted model selectivities — they
        replace whatever the detector was comparing against and re-arm
        it: a refit is exactly the event that makes stale rates current
        again.
        """
        if len(priors) != len(self._posteriors):
            raise LearningError("warm start with mismatched arm count")
        if step_rates is not None:
            if len(step_rates) != len(self._posteriors):
                raise LearningError(
                    "warm start with mismatched step-rate count"
                )
            self._model_rates = step_rates
        for posterior, prior in zip(self._posteriors, priors):
            posterior.decay(discount)
            posterior.prior = prior
        self._served = _argmin(
            tuple(posterior.mean for posterior in self._posteriors)
        )
        self._committed = len(self._posteriors) <= 1
        self._reset_paired()
        # A refit re-priors from fresh window statistics, so the serve
        # choice is already informed — no validation burst; if the refit
        # chose badly the detector will notice and open one.
        self._bursting = False
        self._burst_done = 0
        self._burst_total = 0
        self._stale = False
        self._armed = any(len(rates) > 0 for rates in self._model_rates)
        self._revalidate()

    def export(self) -> StoredBranch:
        return StoredBranch(
            path=self._path,
            orders=tuple(arm.order for arm in self._arm_space.arms),
            served=self._served,
            committed=self._committed,
            rounds=self._rounds,
            posteriors=tuple(
                StoredPosterior(
                    pulls=posterior.pulls,
                    weight=posterior.weight,
                    cost_sum=posterior.cost_sum,
                    prior=posterior.prior,
                )
                for posterior in self._posteriors
            ),
        )

    def adopt(self, stored: StoredBranch, discount: float) -> None:
        """Blend stored posteriors (discounted) into fresh priors."""
        for posterior, old in zip(self._posteriors, stored.posteriors):
            posterior.pulls = old.pulls
            posterior.weight = old.weight * discount
            posterior.cost_sum = old.cost_sum * discount
        self._rounds = stored.rounds
        self._served = _argmin(
            tuple(posterior.mean for posterior in self._posteriors)
        )
        self._committed = len(self._posteriors) <= 1
        self._reset_paired()
        # Adopted evidence already validated these posteriors once; skip
        # the fresh-branch burst and let the detector arbitrate (the
        # model rates stay construction-fresh — this ensemble was just
        # built from current statistics).
        self._bursting = False
        self._burst_done = 0
        self._burst_total = 0
        self._stale = False
        self._armed = any(len(rates) > 0 for rates in self._model_rates)
        self._revalidate()

    def provenance(self) -> BranchProvenance:
        return BranchProvenance(
            path=self._path,
            served_arm=self._served,
            committed=self._committed,
            rounds=self._rounds,
            span=self._span,
            arms=tuple(
                ArmRecord(
                    arm_id=arm.arm_id,
                    order=arm.order,
                    pulls=self._posteriors[arm.arm_id].pulls,
                    weight=self._posteriors[arm.arm_id].weight,
                    mean=self.mean(arm.arm_id),
                    lcb=self.lcb(arm.arm_id),
                    ucb=self.ucb(arm.arm_id),
                    prior=self._posteriors[arm.arm_id].prior,
                )
                for arm in self._arm_space.arms
            ),
        )


def _argmin(values: tuple[float, ...]) -> int:
    """Index of the smallest value; lowest index wins ties (determinism)."""
    best = 0
    for index in range(1, len(values)):
        if values[index] < values[best]:
            best = index
    return best


# ----------------------------------------------------------------------
# The ensemble: skeleton + branch bandits + shared ledger.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConditionVisit:
    """One skeleton condition crossed while routing a tuple."""

    path: str
    node: ConditionNode
    below: bool
    acquired: bool


@dataclass
class _SkeletonSplit:
    node: ConditionNode
    below: "_SkeletonSplit | BranchBandit"
    above: "_SkeletonSplit | BranchBandit"


_SkeletonNode = Union[_SkeletonSplit, BranchBandit]


class OrderBanditEnsemble:
    """All branch bandits of one plan, behind one ledger and skeleton.

    ``skeleton`` is a plan whose *condition structure* is kept — each
    maximal non-condition subtree becomes a branch slot with its own arm
    space.  ``None`` means a flat, split-free plan: a single branch over
    full-query orders.  ``span_inflation`` scales every branch's
    worst-case pull bound (fault-injected runs pass the retry blow-up so
    the explore gate stays sound under storms).
    """

    def __init__(
        self,
        schema: Schema,
        query: ConjunctiveQuery,
        distribution: Distribution,
        *,
        budget: float,
        skeleton: PlanNode | None = None,
        delta: float = 0.05,
        burst_pulls: int = 12,
        decay: float = 1.0,
        max_arm_predicates: int = DEFAULT_MAX_ARM_PREDICATES,
        cost_model: AcquisitionCostModel | None = None,
        span_inflation: float = 1.0,
        prior_weight: float = 1.0,
        ledger: RegretLedger | None = None,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise LearningError(f"delta must be in (0, 1): {delta}")
        if burst_pulls < 1:
            raise LearningError(f"burst_pulls must be >= 1: {burst_pulls}")
        if not 0.0 < decay <= 1.0:
            raise LearningError(f"posterior_decay must be in (0, 1]: {decay}")
        if span_inflation < 1.0:
            raise LearningError(f"span_inflation must be >= 1: {span_inflation}")
        self._schema = schema
        self._query = query
        self._cost_model = cost_model
        self._ledger = ledger if ledger is not None else RegretLedger(budget)
        self._delta = delta
        self._branches: list[BranchBandit] = []

        def build(node: PlanNode | None, path: str, context: RangeVector) -> _SkeletonNode:
            if isinstance(node, ConditionNode):
                below, above = context.split(node.attribute_index, node.split_value)
                return _SkeletonSplit(
                    node=node,
                    below=build(node.below, f"{path}/below", below),
                    above=build(node.above, f"{path}/above", above),
                )
            arm_space = ArmSpace(query, context, max_arm_predicates)
            branch = BranchBandit(
                path,
                arm_space,
                arm_space.priors(distribution, cost_model),
                self._ledger,
                span=arm_space.span(schema, cost_model) * span_inflation,
                delta=delta,
                burst_pulls=burst_pulls,
                decay=decay,
                prior_weight=prior_weight,
                step_rates=arm_space.step_rates(distribution),
            )
            self._branches.append(branch)
            return branch

        self._root = build(skeleton, "root", RangeVector.full(schema))

    # -- introspection -------------------------------------------------

    @property
    def ledger(self) -> RegretLedger:
        return self._ledger

    @property
    def branches(self) -> tuple[BranchBandit, ...]:
        return tuple(self._branches)

    @property
    def committed(self) -> bool:
        return all(branch.committed for branch in self._branches)

    @property
    def total_rounds(self) -> int:
        return sum(branch.rounds for branch in self._branches)

    @property
    def flat(self) -> bool:
        return isinstance(self._root, BranchBandit)

    # -- routing and plans --------------------------------------------

    def route(
        self, row, acquired: set[int]
    ) -> tuple[BranchBandit, list[ConditionVisit], float]:
        """Walk the skeleton to a branch, metering conditioning reads.

        ``acquired`` is the tuple's read cache (mutated in place); the
        returned cost covers only attributes newly read while routing.
        """
        cost = 0.0
        visits: list[ConditionVisit] = []
        node = self._root
        path = "root"
        while isinstance(node, _SkeletonSplit):
            index = node.node.attribute_index
            newly = index not in acquired
            if newly:
                acquired.add(index)
                cost += self.attribute_cost(index, acquired)
            below = bool(row[index] < node.node.split_value)
            visits.append(
                ConditionVisit(
                    path=path, node=node.node, below=below, acquired=newly
                )
            )
            node = node.below if below else node.above
            path = f"{path}/below" if below else f"{path}/above"
        return node, visits, cost

    def attribute_cost(self, index: int, acquired: set[int]) -> float:
        """Effective cost of reading ``index`` given the tuple's read cache."""
        if self._cost_model is None:
            return float(self._schema[index].cost)
        already = frozenset(acquired - {index})
        return float(self._cost_model.cost(index, already))

    def composite_plan(self) -> PlanNode:
        """The skeleton with every branch's served arm plugged in."""

        def rebuild(node: _SkeletonNode) -> PlanNode:
            if isinstance(node, BranchBandit):
                return node.served_arm.plan
            return ConditionNode(
                attribute=node.node.attribute,
                attribute_index=node.node.attribute_index,
                split_value=node.node.split_value,
                below=rebuild(node.below),
                above=rebuild(node.above),
            )

        return rebuild(self._root)

    def expected_cost(self, distribution: Distribution) -> float:
        """Eq. 3 cost of the current composite plan under ``distribution``."""
        return expected_cost(
            self.composite_plan(), distribution, None, self._cost_model
        )

    # -- refits and persistence ---------------------------------------

    def warm_start(self, distribution: Distribution, discount: float) -> None:
        """Re-prior every branch against freshly fitted statistics."""
        for branch in self._branches:
            branch.warm_start(
                branch.arm_space.priors(distribution, self._cost_model),
                discount,
                branch.arm_space.step_rates(distribution),
            )

    def export_state(self) -> BanditState:
        return BanditState(
            query=self._query.describe(),
            attributes=len(self._schema),
            branches=tuple(branch.export() for branch in self._branches),
        )

    def adopt(self, state: BanditState, discount: float) -> bool:
        """Blend a stored state in, if it matches this ensemble's shape.

        Matching means: same query text, same branch paths, and the same
        arm orders per branch.  Returns False (no-op) on any mismatch —
        a skeleton that changed shape makes old posteriors meaningless.
        """
        if state.query != self._query.describe():
            return False
        if state.attributes != len(self._schema):
            return False
        if len(state.branches) != len(self._branches):
            return False
        for branch, stored in zip(self._branches, state.branches):
            if branch.path != stored.path:
                return False
            if tuple(arm.order for arm in branch.arm_space.arms) != stored.orders:
                return False
        for branch, stored in zip(self._branches, state.branches):
            branch.adopt(stored, discount)
        return True

    def provenance(self, observed_total: float = 0.0) -> LearnedProvenance:
        return LearnedProvenance(
            branches=tuple(branch.provenance() for branch in self._branches),
            ledger=self._ledger.snapshot(),
            observed_total=observed_total,
            delta=self._delta,
        )
