"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish configuration mistakes from runtime planning failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A schema, attribute, or domain was specified inconsistently."""


class QueryError(ReproError):
    """A query references unknown attributes or is otherwise malformed."""


class PlanError(ReproError):
    """A plan tree is structurally invalid or cannot be executed."""


class PlanVerificationError(PlanError):
    """Static verification found ERROR-severity diagnostics in a plan.

    Carries the full :class:`~repro.verify.diagnostics.VerificationReport`
    as :attr:`report` so callers can inspect codes and paths.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class PlanningError(ReproError):
    """A planner could not produce a plan for the given inputs."""


class CompileError(PlanError):
    """A plan could not be lowered to kernel IR, or the IR is malformed."""


class DistributionError(ReproError):
    """A probability model was queried outside its supported domain."""


class AcquisitionError(ReproError):
    """An acquisition source failed to produce an attribute value."""


class AcquisitionFailure(AcquisitionError):
    """A single attribute read failed at the physical layer.

    Raised by fault-injecting (and, in a real deployment, hardware-backed)
    acquisition sources when a read attempt produces no value: the reading
    was dropped, the sensor timed out, or the attribute is inside a burst
    outage.  ``kind`` is one of ``"drop"``, ``"timeout"``, ``"outage"``;
    ``attribute_index`` locates the attribute in the schema.  The energy
    for the failed attempt has already been charged when this is raised —
    failed reads are not free.
    """

    def __init__(self, kind: str, attribute_index: int) -> None:
        super().__init__(
            f"acquisition of attribute {attribute_index} failed: {kind}"
        )
        self.kind = kind
        self.attribute_index = attribute_index


class FaultConfigError(AcquisitionError):
    """A fault schedule, retry policy, or degradation policy is invalid."""


class DiscretizationError(ReproError):
    """Real-valued data could not be mapped onto a discrete domain."""


class LearningError(ReproError):
    """The online learning layer was configured or used inconsistently."""


class ServiceError(ReproError):
    """The serving layer was configured or used inconsistently."""


class ClusterError(ServiceError):
    """The sharded serving tier was configured or used inconsistently."""


class LoadShedError(ClusterError):
    """The admission controller refused a request under overload.

    ``reason`` distinguishes why the request was shed: ``"overload"``
    (global in-flight ceiling), ``"queue-depth"`` (the target shard's
    backlog), ``"cold"`` (SKIP-mode shedding of a fingerprint that would
    need fresh planning work), or ``"outage"`` (the target shard is down
    and the shed policy is ABSTAIN).
    """

    def __init__(self, message: str, reason: str = "overload") -> None:
        super().__init__(message)
        self.reason = reason


class ShardUnavailableError(ClusterError):
    """A shard worker died or stopped answering within the deadline."""
