"""Shared AST infrastructure for the ``repro-lint`` checkers.

A checker is a function ``(ModuleContext) -> list[LintFinding]`` (the
concurrency checker additionally returns cross-module lock facts).  The
context carries the parsed tree plus the pieces every rule needs and no
rule should rebuild:

- an import alias map, so ``np.random.rand`` resolves to
  ``numpy.random.rand`` and ``from random import choice`` resolves
  ``choice`` to ``random.choice`` regardless of spelling;
- a qualname walker that visits every node with its enclosing
  ``Class.method`` path, which the wall-clock allowlist keys on;
- the :class:`LintConfig` policy object: which modules count as
  deterministic paths, which sites may read the wall clock, and which
  modules are the approved home of Eq. 3 ledger arithmetic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "ModuleContext",
    "dotted_name",
    "iter_with_qualname",
    "resolve_call",
]


@dataclass(frozen=True)
class LintConfig:
    """Policy knobs for one lint run.

    ``deterministic_modules`` are dotted-prefix globs (a module matches
    when it equals a prefix or starts with ``prefix + "."``) naming the
    paths whose outputs must be bit-reproducible: planners, executors,
    fingerprints, fault/chaos machinery, observability.  ``DET002``
    (wall clock) fires only inside them.

    ``wallclock_allowlist`` entries are ``"module:qualname"`` — the
    explicitly blessed injectable-clock seams (default parameters of a
    constructor that accepts a clock).  Everything else that touches the
    wall clock inside a deterministic path is a finding.

    ``ledger_modules`` are the approved homes of raw Eq. 3
    cost/energy/ledger arithmetic; outside them, charges must go through
    helper calls so every joule stays auditable (``LED001``/``LED002``).
    """

    deterministic_modules: tuple[str, ...] = (
        "repro.core",
        "repro.planning",
        "repro.execution",
        "repro.probability",
        "repro.faults",
        "repro.verify",
        "repro.analysis",
        "repro.compile",
        "repro.learn",
        "repro.obs",
        "repro.service.fingerprint",
        "repro.cluster.hashring",
        "repro.cluster.shard",
        "repro.cluster.worker",
    )
    wallclock_allowlist: frozenset[str] = frozenset(
        {
            # The one blessed injectable-clock seam: Tracer's default
            # clock parameter.  Tests inject a deterministic clock.
            "repro.obs.trace:Tracer.__init__",
        }
    )
    ledger_modules: tuple[str, ...] = (
        "repro.core",
        "repro.planning",
        "repro.execution",
        "repro.probability",
        "repro.faults",
        "repro.analysis",
        "repro.verify",
        "repro.compile",
        "repro.engine",
        "repro.learn",
        "repro.cluster.admission",
        # The trace-vs-ledger conservation audit re-derives Eq. 3 sums
        # from span attributions on purpose — that IS its job.
        "repro.obs.waterfall",
    )
    enabled: frozenset[str] | None = None

    def is_deterministic_module(self, module: str) -> bool:
        return _matches_prefix(module, self.deterministic_modules)

    def is_ledger_module(self, module: str) -> bool:
        return _matches_prefix(module, self.ledger_modules)

    def allows_wallclock(self, module: str, qualname: str) -> bool:
        return f"{module}:{qualname}" in self.wallclock_allowlist

    def wants(self, code: str) -> bool:
        return self.enabled is None or code in self.enabled


DEFAULT_CONFIG = LintConfig()


def _matches_prefix(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def _collect_aliases(tree: ast.Module) -> dict[str, str]:
    """Name -> canonical dotted prefix for every top-level import.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from random
    import choice as pick`` maps ``pick`` to ``random.choice``.  Only
    module-level imports are tracked — the repo convention (enforced by
    ruff's isort) keeps imports at the top, and a rule that misses an
    exotic function-local import fails safe (no finding).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}"
                )
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """The ``a.b.c`` spelling of a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class ModuleContext:
    """Everything the checkers need to know about one module."""

    module: str
    path: str
    source: str
    tree: ast.Module
    config: LintConfig = field(default_factory=lambda: DEFAULT_CONFIG)
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: str,
        module: str,
        path: str = "<memory>",
        config: LintConfig | None = None,
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        context = cls(
            module=module,
            path=path,
            source=source,
            tree=tree,
            config=config or DEFAULT_CONFIG,
        )
        context.aliases = _collect_aliases(tree)
        return context

    def resolve(self, node: ast.AST) -> str | None:
        """Canonicalize a Name/Attribute chain through the alias map.

        ``np.random.rand`` -> ``numpy.random.rand`` when ``np`` aliases
        ``numpy``; unknown heads pass through verbatim so rules can
        still match on literal spellings.
        """
        spelled = dotted_name(node)
        if spelled is None:
            return None
        head, _, rest = spelled.partition(".")
        target = self.aliases.get(head, head)
        return f"{target}.{rest}" if rest else target


def resolve_call(context: ModuleContext, call: ast.Call) -> str | None:
    """The canonical dotted name of a call's callee, if resolvable."""
    return context.resolve(call.func)


def iter_with_qualname(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, str, bool]]:
    """Yield ``(node, qualname, in_async)`` for every node in the tree.

    ``qualname`` is the dotted path of enclosing classes/functions
    (``""`` at module level, ``Tracer.__init__`` inside the method);
    ``in_async`` says whether the node executes in the body of an
    ``async def`` — it goes *false* again inside a nested synchronous
    ``def``, whose body only runs when that inner function is called
    (possibly off-loop).
    """

    def visit(
        node: ast.AST, qualname: str, in_async: bool
    ) -> Iterator[tuple[ast.AST, str, bool]]:
        yield node, qualname, in_async
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = f"{qualname}.{node.name}" if qualname else node.name
            inner_async = isinstance(node, ast.AsyncFunctionDef)
            for child in ast.iter_child_nodes(node):
                yield from visit(child, inner, inner_async)
        elif isinstance(node, ast.ClassDef):
            inner = f"{qualname}.{node.name}" if qualname else node.name
            for child in ast.iter_child_nodes(node):
                yield from visit(child, inner, in_async)
        else:
            for child in ast.iter_child_nodes(node):
                yield from visit(child, qualname, in_async)

    for top in ast.iter_child_nodes(tree):
        yield from visit(top, "", False)
