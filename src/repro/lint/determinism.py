"""DET rules: the codebase's outputs must be a function of its seeds.

Every guarantee the repo makes — byte-identical coalesced replies,
deterministic chaos replay, stable fingerprints, reproducible plans —
reduces to three source-level disciplines:

- randomness flows only through explicitly seeded generators
  (``np.random.default_rng(seed)`` or ``random.Random(seed)``), never
  the process-global ones (``DET001``);
- deterministic paths never read the wall clock; time is either a
  monotonic duration (``time.perf_counter``) or an injectable clock
  listed in the allowlist (``DET002``);
- nothing iterates an unordered set where the order can leak into
  output — set iteration order varies across processes under hash
  randomization, which is exactly the cross-shard situation the cluster
  runs in (``DET003``);
- deterministic modules construct no RNG state at import time — not
  even *seeded* state (``DET004``).  A module-level generator is shared
  mutable state: whichever import-order-dependent caller draws first
  shifts every later draw.  The compile tier is the motivating case:
  kernels must be pure functions of (plan, schema, statistics version),
  so ``repro.compile`` must hold no generator for anything to consume.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, iter_with_qualname
from repro.lint.diagnostics import LintFinding, make_finding

__all__ = ["check_determinism"]

# Process-global RNG entry points.  numpy's legacy global namespace is
# listed explicitly: `numpy.random.default_rng`, `Generator` methods and
# `SeedSequence` are the blessed seeded API.
_GLOBAL_RANDOM_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.gammavariate",
        "random.triangular",
        "random.vonmisesvariate",
        "random.getrandbits",
        "random.randbytes",
        "random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.seed",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)

_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "iter", "enumerate"})

# DET004: constructors/entry points that create or consume RNG state.
# At module level in a deterministic module, *any* of these — seeded or
# not — is import-time generator state.
_RNG_STATE_PREFIXES = ("numpy.random.",)
_RNG_STATE_CALLS = frozenset({"random.Random", "random.SystemRandom"})


def _is_set_expression(node: ast.AST, context: ModuleContext) -> bool:
    """Does ``node`` evaluate to a ``set``/``frozenset`` syntactically?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = context.resolve(node.func)
        return callee in ("set", "frozenset")
    return False


def check_determinism(context: ModuleContext) -> list[LintFinding]:
    findings: list[LintFinding] = []
    config = context.config
    deterministic = config.is_deterministic_module(context.module)

    for node, qualname, _in_async in iter_with_qualname(context.tree):
        # DET001 — unseeded global RNG, anywhere in the codebase.
        if config.wants("DET001") and isinstance(node, ast.Call):
            callee = context.resolve(node.func)
            if callee in _GLOBAL_RANDOM_CALLS:
                findings.append(
                    make_finding(
                        "DET001",
                        context.module,
                        context.path,
                        node.lineno,
                        node.col_offset,
                        f"call to process-global RNG {callee}()",
                        hint="thread a seeded np.random.default_rng(seed) "
                        "or random.Random(seed) through instead",
                    )
                )
            elif (
                callee == "numpy.random.default_rng"
                and not node.args
                and not node.keywords
            ):
                findings.append(
                    make_finding(
                        "DET001",
                        context.module,
                        context.path,
                        node.lineno,
                        node.col_offset,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy",
                        hint="pass an explicit seed (or a SeedSequence "
                        "derived from one)",
                    )
                )

        # DET004 — module-level RNG construction in deterministic
        # modules.  Fires on the import-time execution scope only
        # (qualname ""): a generator bound at module scope is shared
        # mutable state even when seeded, and the compile tier must not
        # create or consume any RNG at import.
        if (
            config.wants("DET004")
            and deterministic
            and qualname == ""
            and isinstance(node, ast.Call)
        ):
            callee = context.resolve(node.func)
            if callee is not None and (
                callee.startswith(_RNG_STATE_PREFIXES)
                or callee in _RNG_STATE_CALLS
            ):
                findings.append(
                    make_finding(
                        "DET004",
                        context.module,
                        context.path,
                        node.lineno,
                        node.col_offset,
                        f"module-level call to {callee}() creates RNG "
                        f"state at import time",
                        hint="construct generators inside the function "
                        "that needs them, seeded from an explicit "
                        "argument",
                    )
                )

        # DET002 — wall-clock reads inside deterministic paths.  Both
        # calls and bare references count: handing time.time somewhere
        # as a callback is a clock dependency too.  The allowlist names
        # the blessed injectable-clock seams by module:qualname.
        if (
            config.wants("DET002")
            and deterministic
            and isinstance(node, (ast.Attribute, ast.Name))
            and isinstance(getattr(node, "ctx", None), ast.Load)
        ):
            resolved = context.resolve(node)
            # Only report the outermost spelling of a chain: for
            # `time.time()` the Attribute node matches and its inner
            # Name node (`time`) does not resolve to a clock.
            if resolved in _WALLCLOCK and not config.allows_wallclock(
                context.module, qualname
            ):
                findings.append(
                    make_finding(
                        "DET002",
                        context.module,
                        context.path,
                        node.lineno,
                        node.col_offset,
                        f"wall-clock read {resolved} in deterministic "
                        f"path {context.module}",
                        hint="inject a clock callable (see Tracer's clock "
                        "parameter) or use time.perf_counter for durations",
                    )
                )

        # DET003 — iterating an unordered set where order is observable.
        if config.wants("DET003"):
            iterables: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                iterables.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                callee = context.resolve(node.func)
                if callee in _ORDER_SENSITIVE_CONSUMERS and node.args:
                    iterables.append(node.args[0])
            for iterable in iterables:
                if _is_set_expression(iterable, context):
                    findings.append(
                        make_finding(
                            "DET003",
                            context.module,
                            context.path,
                            iterable.lineno,
                            iterable.col_offset,
                            "iteration over an unordered set: order varies "
                            "under hash randomization",
                            hint="wrap the set in sorted(...) before "
                            "iterating",
                        )
                    )
    return findings
