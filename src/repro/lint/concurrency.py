"""RC rules: lock-guarded shared state stays lock-guarded.

The serving stack shares exactly two kinds of mutable objects across
threads: metrics (``MetricsRegistry`` and its children) and the plan
cache.  Both declare their discipline in code — ``self._lock =
threading.Lock()`` in ``__init__`` — and these rules hold every other
method to it:

- ``RC001`` — a method of a lock-declaring class writes ``self.*``
  state outside a ``with self._lock`` block.  Private helpers whose
  every in-class call site is inside a locked region are exempt (the
  ``PlanCache._evict`` pattern: called only with the lock held);
- ``RC002`` — class A's locked regions call into class B's lock-taking
  methods and vice versa, anywhere across the scanned modules: a
  lock-acquisition-order cycle, the classic cross-shard deadlock;
- ``RC003`` — a region holding a *non-reentrant* ``threading.Lock``
  acquires it again, lexically or by calling a sibling method that
  takes it.  With ``RLock`` this is fine; with ``Lock`` it deadlocks
  on the first execution.

The checker is deliberately scoped to classes that declare a lock: an
event-loop-confined class (the front door) or a per-process object has
no lock and is not held to locking discipline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.base import ModuleContext
from repro.lint.diagnostics import LintFinding, make_finding

__all__ = [
    "LockClassFacts",
    "LockEdge",
    "analyze_lock_graph",
    "check_concurrency",
]

_LOCK_FACTORIES = {
    "threading.Lock": False,  # reentrant?
    "threading.RLock": True,
    "multiprocessing.Lock": False,
    "multiprocessing.RLock": True,
}

# Methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "move_to_end",
        "rotate",
    }
)


@dataclass(frozen=True)
class LockEdge:
    """Class ``holder`` calls into lock-taking class ``target`` while
    holding its own lock — one directed edge of the acquisition graph."""

    holder: str  # dotted: module.Class
    target: str  # simple class name of the callee's type
    module: str
    path: str
    line: int
    col: int


@dataclass
class LockClassFacts:
    """What the checker learned about one lock-declaring class."""

    module: str
    name: str
    dotted: str
    reentrant: dict[str, bool] = field(default_factory=dict)
    edges: list[LockEdge] = field(default_factory=list)


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_self_attr(target: ast.AST) -> str | None:
    """The ``self`` attribute a store/delete target ultimately touches.

    ``self.x = v`` and ``self.x[k] = v`` both write ``x``; peeling
    subscripts keeps container mutation visible.
    """
    while isinstance(target, ast.Subscript):
        target = target.value
    return _self_attr(target)


@dataclass
class _Write:
    attr: str
    line: int
    col: int
    kind: str  # "assign" | "mutate"


@dataclass
class _MethodSummary:
    name: str
    acquires: set[str] = field(default_factory=set)
    unlocked_writes: list[_Write] = field(default_factory=list)


def check_concurrency(
    context: ModuleContext,
) -> tuple[list[LintFinding], list[LockClassFacts]]:
    findings: list[LintFinding] = []
    facts: list[LockClassFacts] = []
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ClassDef):
            class_findings, class_facts = _check_class(context, node)
            findings.extend(class_findings)
            if class_facts is not None:
                facts.append(class_facts)
    return findings, facts


def _init_inventory(
    context: ModuleContext, cls: ast.ClassDef
) -> tuple[dict[str, bool], dict[str, str]]:
    """From ``__init__``: the lock attributes (attr -> reentrant) and
    the attr -> class-name map of owned lock-guarded collaborators."""
    locks: dict[str, bool] = {}
    owned: dict[str, str] = {}
    for method in cls.body:
        if (
            not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
            or method.name not in ("__init__", "__post_init__")
        ):
            continue
        for stmt in ast.walk(method):
            if not isinstance(stmt, ast.Assign):
                continue
            value = stmt.value
            if not isinstance(value, ast.Call):
                continue
            callee = context.resolve(value.func)
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if callee in _LOCK_FACTORIES:
                    locks[attr] = _LOCK_FACTORIES[callee]
                elif callee is not None:
                    owned[attr] = callee.rsplit(".", 1)[-1]
    return locks, owned


def _check_class(
    context: ModuleContext, cls: ast.ClassDef
) -> tuple[list[LintFinding], LockClassFacts | None]:
    locks, owned = _init_inventory(context, cls)
    if not locks:
        return [], None
    config = context.config
    dotted = f"{context.module}.{cls.name}"
    class_facts = LockClassFacts(
        module=context.module,
        name=cls.name,
        dotted=dotted,
        reentrant=dict(locks),
    )
    findings: list[LintFinding] = []
    summaries: dict[str, _MethodSummary] = {}
    # (caller-held-locks-nonempty, callee-name, site) for the exemption
    # pass and sibling-deadlock detection.
    sibling_calls: list[tuple[frozenset[str], str, ast.Call]] = []

    methods = [
        stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for method in methods:
        if method.name in ("__init__", "__post_init__", "__del__"):
            continue
        summary = _MethodSummary(name=method.name)
        summaries[method.name] = summary
        _walk_method(
            context,
            cls,
            locks,
            owned,
            class_facts,
            summary,
            sibling_calls,
            findings,
            method.body,
            held=frozenset(),
        )

    # RC003 (call form): a locked region calls a sibling method that
    # re-acquires the same non-reentrant lock.
    if config.wants("RC003"):
        for held, callee, site in sibling_calls:
            target = summaries.get(callee)
            if target is None:
                continue
            for lock in sorted(held & target.acquires):
                if not locks[lock]:
                    findings.append(
                        make_finding(
                            "RC003",
                            context.module,
                            context.path,
                            site.lineno,
                            site.col_offset,
                            f"{cls.name}.{callee}() re-acquires "
                            f"non-reentrant self.{lock} already held by "
                            f"the caller",
                            hint="use threading.RLock, or split the "
                            "method into an unlocked _locked helper",
                        )
                    )

    # RC001 with the locked-helper exemption: a method whose every
    # in-class call site runs under the lock is a locked-context helper.
    if config.wants("RC001"):
        call_sites: dict[str, list[bool]] = {}
        for held, callee, _site in sibling_calls:
            call_sites.setdefault(callee, []).append(bool(held))
        for summary in summaries.values():
            if not summary.unlocked_writes:
                continue
            sites = call_sites.get(summary.name, [])
            if sites and all(sites):
                continue  # only ever called with the lock held
            for write in summary.unlocked_writes:
                findings.append(
                    make_finding(
                        "RC001",
                        context.module,
                        context.path,
                        write.line,
                        write.col,
                        f"{cls.name}.{summary.name} writes self."
                        f"{write.attr} outside `with self."
                        f"{_lock_spelling(locks)}`",
                        hint="move the write under the lock, or make "
                        "every call site hold it",
                    )
                )
    return findings, class_facts


def _lock_spelling(locks: dict[str, bool]) -> str:
    return "/".join(sorted(locks)) if len(locks) > 1 else next(iter(locks))


def _walk_method(
    context: ModuleContext,
    cls: ast.ClassDef,
    locks: dict[str, bool],
    owned: dict[str, str],
    class_facts: LockClassFacts,
    summary: _MethodSummary,
    sibling_calls: list[tuple[frozenset[str], str, ast.Call]],
    findings: list[LintFinding],
    body: list[ast.stmt],
    held: frozenset[str],
) -> None:
    for stmt in body:
        _walk_statement(
            context,
            cls,
            locks,
            owned,
            class_facts,
            summary,
            sibling_calls,
            findings,
            stmt,
            held,
        )


def _walk_statement(
    context: ModuleContext,
    cls: ast.ClassDef,
    locks: dict[str, bool],
    owned: dict[str, str],
    class_facts: LockClassFacts,
    summary: _MethodSummary,
    sibling_calls: list[tuple[frozenset[str], str, ast.Call]],
    findings: list[LintFinding],
    stmt: ast.stmt,
    held: frozenset[str],
) -> None:
    config = context.config
    args = (
        context,
        cls,
        locks,
        owned,
        class_facts,
        summary,
        sibling_calls,
        findings,
    )

    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        acquired: list[str] = []
        for item in stmt.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in locks:
                summary.acquires.add(attr)
                if attr in held and not locks[attr] and config.wants("RC003"):
                    findings.append(
                        make_finding(
                            "RC003",
                            context.module,
                            context.path,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                            f"nested `with self.{attr}` on a "
                            f"non-reentrant threading.Lock deadlocks",
                            hint="use threading.RLock or restructure so "
                            "the lock is taken once",
                        )
                    )
                acquired.append(attr)
            else:
                _scan_expression(*args, item.context_expr, held)
        _walk_method(*args, stmt.body, held | frozenset(acquired))
        return

    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # A nested function may run long after the enclosing locked
        # region exited — its body is analyzed as unlocked.
        _walk_method(*args, stmt.body, frozenset())
        return

    # Writes.
    targets: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        attr = _written_self_attr(target)
        if attr is not None and attr not in locks and not held:
            summary.unlocked_writes.append(
                _Write(
                    attr=attr,
                    line=target.lineno,
                    col=target.col_offset,
                    kind="assign",
                )
            )

    # Expressions inside the statement: mutating calls, sibling calls,
    # cross-class lock edges.
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            _walk_statement(*args, child, held)
        elif isinstance(child, ast.expr):
            _scan_expression(*args, child, held)
        elif isinstance(
            child, (ast.excepthandler, ast.match_case)
        ) or hasattr(child, "body"):
            for grand in ast.iter_child_nodes(child):
                if isinstance(grand, ast.stmt):
                    _walk_statement(*args, grand, held)
                elif isinstance(grand, ast.expr):
                    _scan_expression(*args, grand, held)


def _scan_expression(
    context: ModuleContext,
    cls: ast.ClassDef,
    locks: dict[str, bool],
    owned: dict[str, str],
    class_facts: LockClassFacts,
    summary: _MethodSummary,
    sibling_calls: list[tuple[frozenset[str], str, ast.Call]],
    findings: list[LintFinding],
    expr: ast.expr,
    held: frozenset[str],
) -> None:
    for node in ast.walk(expr):
        if isinstance(node, ast.Lambda):
            continue
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        receiver = func.value
        receiver_attr = _self_attr(receiver)
        # self.method(...) — sibling call.
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            sibling_calls.append((held, func.attr, node))
            continue
        if receiver_attr is None:
            continue
        # self.attr.mutate(...) — an in-place write to owned state.
        if func.attr in _MUTATORS and receiver_attr not in locks and not held:
            summary.unlocked_writes.append(
                _Write(
                    attr=receiver_attr,
                    line=node.lineno,
                    col=node.col_offset,
                    kind="mutate",
                )
            )
        # self.attr.anything(...) while holding our lock, where attr is
        # a collaborator object: a potential lock-order edge (resolved
        # against the global set of lock-declaring classes later).
        if held and receiver_attr in owned:
            class_facts.edges.append(
                LockEdge(
                    holder=class_facts.dotted,
                    target=owned[receiver_attr],
                    module=context.module,
                    path=context.path,
                    line=node.lineno,
                    col=node.col_offset,
                )
            )


def analyze_lock_graph(
    all_facts: list[LockClassFacts],
) -> list[LintFinding]:
    """RC002: find acquisition-order cycles across every scanned module.

    Nodes are lock-declaring classes; an edge A -> B means some locked
    region of A calls into B (whose methods take B's lock).  Any cycle
    means two executions can acquire the same pair of locks in opposite
    orders — the textbook deadlock.  Self-loops are RC003's business
    and are skipped here.
    """
    by_simple: dict[str, list[LockClassFacts]] = {}
    for fact in all_facts:
        by_simple.setdefault(fact.name, []).append(fact)

    graph: dict[str, set[str]] = {fact.dotted: set() for fact in all_facts}
    edge_sites: dict[tuple[str, str], LockEdge] = {}
    for fact in all_facts:
        for edge in fact.edges:
            for target in by_simple.get(edge.target, []):
                if target.dotted == fact.dotted:
                    continue
                graph[fact.dotted].add(target.dotted)
                edge_sites.setdefault((fact.dotted, target.dotted), edge)

    findings: list[LintFinding] = []
    reported: set[frozenset[str]] = set()
    for start in sorted(graph):
        cycle = _find_cycle(graph, start)
        if cycle is None:
            continue
        members = frozenset(cycle)
        if members in reported:
            continue
        reported.add(members)
        site = edge_sites[(cycle[0], cycle[1])]
        chain = " -> ".join([*cycle, cycle[0]])
        findings.append(
            make_finding(
                "RC002",
                site.module,
                site.path,
                site.line,
                site.col,
                f"lock-acquisition-order cycle: {chain}",
                hint="impose a global lock order, or move the call "
                "outside the locked region (snapshot-then-call)",
            )
        )
    return findings


def _find_cycle(
    graph: dict[str, set[str]], start: str
) -> list[str] | None:
    """A cycle through ``start`` as an ordered node list, if any."""
    stack: list[tuple[str, list[str]]] = [(start, [start])]
    seen: set[str] = set()
    while stack:
        node, trail = stack.pop()
        for successor in sorted(graph.get(node, ())):
            if successor == start:
                return trail
            if successor in seen:
                continue
            seen.add(successor)
            stack.append((successor, trail + [successor]))
    return None
