"""The ``repro-lint`` driver: files in, one :class:`LintReport` out.

The engine parses each module once, runs every checker family over it,
filters findings through the module's suppression comments, and — after
all modules are in — resolves the cross-module lock-acquisition graph
(``RC002`` needs to see every class before it can see a cycle).

Two entry points matter:

- :func:`lint_paths` / :meth:`ReproLinter.lint_paths` — lint concrete
  files (the CLI's file mode);
- :func:`lint_repo` — discover and lint every ``repro`` source module
  under a root (the CLI's ``--suite`` repo scan and the self-test in
  ``tests/test_lint_repo.py``).

Exit-code semantics mirror ``lint-plan``/``analyze``: a report is
``ok`` when no ERROR-severity finding survives suppression.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import ReproError
from repro.lint.asynchrony import check_asynchrony
from repro.lint.base import DEFAULT_CONFIG, LintConfig, ModuleContext
from repro.lint.concurrency import (
    LockClassFacts,
    analyze_lock_graph,
    check_concurrency,
)
from repro.lint.determinism import check_determinism
from repro.lint.diagnostics import LintFinding, LintReport
from repro.lint.ledger import check_ledger
from repro.lint.suppressions import Suppressions, collect_suppressions

__all__ = ["ReproLinter", "lint_paths", "lint_repo", "lint_source"]


def module_name_for(path: Path, root: Path | None = None) -> str:
    """Derive the dotted module name a file would import as.

    Walks up from the file looking for the innermost package boundary
    (directories with ``__init__.py``); falls back to the stem.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if root is not None and parent == root.resolve():
            break
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


class ReproLinter:
    """One configured lint run over any number of modules."""

    def __init__(self, config: LintConfig | None = None) -> None:
        self._config = config or DEFAULT_CONFIG
        self._findings: list[LintFinding] = []
        self._lock_facts: list[LockClassFacts] = []
        self._suppressions: dict[str, Suppressions] = {}
        self._files = 0

    def add_source(
        self, source: str, module: str, path: str = "<memory>"
    ) -> None:
        """Parse and check one module; findings accumulate."""
        try:
            context = ModuleContext.from_source(
                source, module, path=path, config=self._config
            )
        except SyntaxError as error:
            raise ReproError(
                f"cannot lint {path}: {error.msg} (line {error.lineno})"
            ) from error
        suppressions = collect_suppressions(source, module, path)
        self._suppressions[path] = suppressions
        self._files += 1

        findings = list(suppressions.findings)
        findings.extend(check_determinism(context))
        concurrency_findings, facts = check_concurrency(context)
        findings.extend(concurrency_findings)
        self._lock_facts.extend(facts)
        findings.extend(check_asynchrony(context))
        findings.extend(check_ledger(context))
        self._findings.extend(
            f
            for f in findings
            if not suppressions.silences(f.code, f.line)
        )

    def add_path(self, path: Path, root: Path | None = None) -> None:
        self.add_source(
            path.read_text(encoding="utf-8"),
            module_name_for(path, root),
            path=str(path),
        )

    def report(self, subject: str = "repro-lint") -> LintReport:
        """Finish the run: resolve the lock graph, order the findings."""
        findings = list(self._findings)
        if self._config.wants("RC002"):
            for finding in analyze_lock_graph(self._lock_facts):
                suppressions = self._suppressions.get(finding.path)
                if suppressions is not None and suppressions.silences(
                    finding.code, finding.line
                ):
                    continue
                findings.append(finding)
        return LintReport.from_findings(
            findings, subject=subject, files=self._files
        )


def lint_source(
    source: str,
    module: str = "repro.example",
    path: str = "<memory>",
    config: LintConfig | None = None,
) -> LintReport:
    """Lint one in-memory module (the corpus self-test's entry point)."""
    linter = ReproLinter(config)
    linter.add_source(source, module, path=path)
    return linter.report(subject=module)


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig | None = None,
    root: Path | None = None,
    subject: str = "repro-lint",
) -> LintReport:
    """Lint concrete files together (one shared lock graph)."""
    linter = ReproLinter(config)
    for path in paths:
        if not path.exists():
            raise ReproError(f"no such file: {path}")
        linter.add_path(path, root=root)
    return linter.report(subject=subject)


def _discover(root: Path) -> Iterable[Path]:
    yield from sorted(root.rglob("*.py"))


def lint_repo(
    root: Path | None = None, config: LintConfig | None = None
) -> LintReport:
    """Discover and lint every module of the installed ``repro`` package.

    ``root`` defaults to the source directory this very module was
    imported from — the CLI and CI scan whatever tree they run in.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    if not root.exists():
        raise ReproError(f"no such directory: {root}")
    files = [
        path
        for path in _discover(root)
        if "__pycache__" not in path.parts
    ]
    return lint_paths(
        files, config=config, root=root, subject=f"repro-lint {root}"
    )
