"""Seeded violation corpus: ``repro-lint``'s own negative controls.

A linter that silently passes broken code is worse than none — the same
argument that gave the verifier its mutation corpus gives the lint
framework this one.  Each :class:`LintCase` is a small module seeding
exactly one violation class, named with the documented code that must
fire on it; the clean cases are the positive controls that must stay
silent (seeded RNGs, locked writes, executor offloads, approved ledger
modules, working suppressions).

``run_corpus()`` is the self-test the ``lint-code --suite`` CLI verb
and CI run before scanning the repo: a dead rule fails the suite even
when the repo itself happens to be clean.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass

from repro.lint.engine import lint_source

__all__ = ["LintCase", "clean_cases", "run_corpus", "violation_cases"]


@dataclass(frozen=True)
class LintCase:
    """One seeded module and the code that must (or must not) fire."""

    name: str
    description: str
    module: str
    source: str
    expected_code: str = ""  # empty for clean cases


def _case(
    name: str,
    description: str,
    module: str,
    source: str,
    expected_code: str = "",
) -> LintCase:
    return LintCase(
        name=name,
        description=description,
        module=module,
        source=textwrap.dedent(source).strip() + "\n",
        expected_code=expected_code,
    )


def violation_cases() -> list[LintCase]:
    """One seeded module per violation class; every rule must fire."""
    return [
        _case(
            "det001-global-random",
            "module-level random.shuffle draws from the process RNG",
            "repro.cluster.example",
            """
            import random

            def scramble(items):
                random.shuffle(items)
                return items
            """,
            "DET001",
        ),
        _case(
            "det001-unseeded-default-rng",
            "default_rng() without a seed draws OS entropy",
            "repro.planning.example",
            """
            import numpy as np

            def jitter(n):
                rng = np.random.default_rng()
                return rng.normal(size=n)
            """,
            "DET001",
        ),
        _case(
            "det002-wallclock-in-planner",
            "a planner stamps plans with time.time()",
            "repro.planning.example",
            """
            import time

            def stamp(plan):
                return {"plan": plan, "built_at": time.time()}
            """,
            "DET002",
        ),
        _case(
            "det002-datetime-now-in-executor",
            "datetime.now() leaks the wall clock into execution",
            "repro.execution.example",
            """
            from datetime import datetime

            def annotate(result):
                result["when"] = datetime.now().isoformat()
                return result
            """,
            "DET002",
        ),
        _case(
            "det004-module-level-generator",
            "a compile-tier module binds a seeded generator at import",
            "repro.compile.example",
            """
            import numpy as np

            _RNG = np.random.default_rng(42)

            def shuffle_ops(ops):
                order = _RNG.permutation(len(ops))
                return [ops[i] for i in order]
            """,
            "DET004",
        ),
        _case(
            "det004-module-level-random-instance",
            "random.Random at module scope is shared RNG state even seeded",
            "repro.core.example",
            """
            import random

            _JITTER = random.Random(7)

            def jitter():
                return _JITTER.random()
            """,
            "DET004",
        ),
        _case(
            "det003-set-iteration",
            "iterating a set literal leaks hash order into output",
            "repro.core.example",
            """
            def names(plan):
                out = []
                for attr in {step.attr for step in plan.steps}:
                    out.append(attr)
                return out
            """,
            "DET003",
        ),
        _case(
            "rc001-unlocked-write",
            "a lock-declaring class mutates shared state lock-free",
            "repro.service.example",
            """
            import threading

            class SharedCounter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def increment(self):
                    self._value += 1
            """,
            "RC001",
        ),
        _case(
            "rc001-unlocked-container-mutation",
            "an unlocked .append to a lock-guarded deque",
            "repro.service.example",
            """
            import threading
            from collections import deque

            class Recent:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = deque(maxlen=16)

                def record(self, event):
                    self._events.append(event)
            """,
            "RC001",
        ),
        _case(
            "rc002-lock-order-cycle",
            "two lock-guarded classes call each other while locked",
            "repro.cluster.example",
            """
            import threading

            class Router:
                def __init__(self, registry):
                    self._lock = threading.Lock()
                    self._registry = Registry(self)

                def route(self, key):
                    with self._lock:
                        return self._registry.lookup(key)

            class Registry:
                def __init__(self, router):
                    self._lock = threading.Lock()
                    self._router = Router(self)

                def lookup(self, key):
                    with self._lock:
                        return self._router.route(key)
            """,
            "RC002",
        ),
        _case(
            "rc003-nested-plain-lock",
            "nested `with self._lock` on a non-reentrant Lock",
            "repro.service.example",
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._names = {}

                def rename(self, old, new):
                    with self._lock:
                        with self._lock:
                            self._names[new] = self._names.pop(old)
            """,
            "RC003",
        ),
        _case(
            "rc003-sibling-reacquire",
            "a locked region calls a sibling method that locks again",
            "repro.service.example",
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._names = {}

                def size(self):
                    with self._lock:
                        return len(self._names)

                def audit(self):
                    with self._lock:
                        return self.size()
            """,
            "RC003",
        ),
        _case(
            "asy001-sleep-on-loop",
            "time.sleep inside an async def stalls every request",
            "repro.cluster.example",
            """
            import time

            async def backoff(attempt):
                time.sleep(0.1 * attempt)
                return attempt + 1
            """,
            "ASY001",
        ),
        _case(
            "asy001-blocking-queue-get",
            "a synchronous queue get(timeout=) on the event loop",
            "repro.cluster.example",
            """
            async def drain(reply_queue):
                replies = []
                while True:
                    replies.append(reply_queue.get(timeout=0.2))
            """,
            "ASY001",
        ),
        _case(
            "asy002-sync-open",
            "synchronous file I/O inside an async def",
            "repro.cluster.example",
            """
            import json

            async def load_config(path):
                with open(path, encoding="utf-8") as handle:
                    return json.load(handle)
            """,
            "ASY002",
        ),
        _case(
            "asy003-get-event-loop",
            "deprecated asyncio.get_event_loop in library code",
            "repro.cluster.example",
            """
            import asyncio

            def schedule(callback):
                loop = asyncio.get_event_loop()
                loop.call_soon(callback)
            """,
            "ASY003",
        ),
        _case(
            "led001-raw-charge",
            "the serving layer computes a charge with raw arithmetic",
            "repro.service.example",
            """
            class Biller:
                def __init__(self):
                    self.total_cost = 0.0

                def bill(self, unit_cost, rows):
                    self.total_cost += unit_cost * rows
            """,
            "LED001",
        ),
        _case(
            "led002-adhoc-derivation",
            "an ad-hoc expression re-derives an Eq. 3 quantity",
            "repro.cli.example",
            """
            def audit(outcome):
                gap = outcome.total_cost - outcome.base_cost
                return gap < 1e-6
            """,
            "LED002",
        ),
        _case(
            "lint001-unknown-code",
            "a suppression naming a code that does not exist",
            "repro.service.example",
            """
            def helper():  # repro-lint: disable=NOPE999
                return 1
            """,
            "LINT001",
        ),
    ]


def clean_cases() -> list[LintCase]:
    """Positive controls: idiomatic code every rule must stay silent on."""
    return [
        _case(
            "clean-seeded-rng",
            "seeded generators are the blessed randomness",
            "repro.planning.example",
            """
            import numpy as np

            def jitter(n, seed):
                rng = np.random.default_rng(seed)
                return rng.normal(size=n)
            """,
        ),
        _case(
            "clean-compile-function-scoped-rng",
            "compile-tier code may build seeded generators inside "
            "functions — only import-time state is banned",
            "repro.compile.example",
            """
            import numpy as np

            def sample_rows(n, seed):
                rng = np.random.default_rng(seed)
                return rng.integers(1, 10, n)
            """,
        ),
        _case(
            "clean-monotonic-durations",
            "perf_counter durations are not wall-clock reads",
            "repro.execution.example",
            """
            import time

            def timed(fn):
                start = time.perf_counter()
                value = fn()
                return value, time.perf_counter() - start
            """,
        ),
        _case(
            "clean-sorted-set",
            "sorted() launders set order into determinism",
            "repro.core.example",
            """
            def names(plan):
                return [a for a in sorted({s.attr for s in plan.steps})]
            """,
        ),
        _case(
            "clean-locked-writes",
            "the PlanCache pattern: every write under the lock, the "
            "_evict helper called only while holding it",
            "repro.service.example",
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._entries = {}
                    self._evictions = 0

                def put(self, key, value):
                    with self._lock:
                        while len(self._entries) > 4:
                            self._evict()
                        self._entries[key] = value

                def _evict(self):
                    self._entries.pop(next(iter(self._entries)))
                    self._evictions += 1

                def get(self, key):
                    with self._lock:
                        return self._entries.get(key)
            """,
        ),
        _case(
            "clean-async-offload",
            "run_in_executor and asyncio.sleep are the blessed waits",
            "repro.cluster.example",
            """
            import asyncio

            async def drain(loop, reply_queue):
                await asyncio.sleep(0)
                return await loop.run_in_executor(None, reply_queue.qsize)
            """,
        ),
        _case(
            "clean-ledger-module",
            "approved ledger modules may do raw Eq. 3 arithmetic",
            "repro.cluster.admission.example",
            """
            class ShedLedger:
                def __init__(self):
                    self.shed_cost_avoided = 0.0

                def charge_shed(self, expected_cost, rows):
                    self.shed_cost_avoided += expected_cost * rows
            """,
        ),
        _case(
            "clean-store-received-cost",
            "storing a received cost is not a new charge",
            "repro.cluster.example",
            """
            class FrontDoor:
                def __init__(self):
                    self._known_cost = {}

                def observe(self, digest, reply):
                    self._known_cost[digest] = reply.expected_where_cost
            """,
        ),
        _case(
            "clean-suppressed-finding",
            "a per-line suppression silences its named code",
            "repro.service.example",
            """
            class Biller:
                def __init__(self):
                    self.total_cost = 0.0

                def bill(self, unit_cost, rows):
                    self.total_cost += unit_cost * rows  # repro-lint: disable=LED001  audited by tests
            """,
        ),
        _case(
            "clean-wallclock-outside-deterministic-paths",
            "the CLI may read the wall clock for banners",
            "repro.cli.example",
            """
            import time

            def banner():
                return f"started at {time.time():.0f}"
            """,
        ),
    ]


def run_corpus() -> list[str]:
    """Run both corpora; returns human-readable failures (empty = ok).

    Every violation case must fire exactly its documented code (other
    codes may legitimately co-fire — a wall-clock read can also be a
    ledger violation — but the named one must be present), and every
    clean case must produce zero findings.
    """
    failures: list[str] = []
    for case in violation_cases():
        report = lint_source(
            case.source, module=case.module, path=f"<{case.name}>"
        )
        if not report.has(case.expected_code):
            failures.append(
                f"violation {case.name!r} did not fire "
                f"{case.expected_code} (got {sorted(report.codes())})"
            )
    for case in clean_cases():
        report = lint_source(
            case.source, module=case.module, path=f"<{case.name}>"
        )
        if report.findings:
            failures.append(
                f"clean case {case.name!r} fired "
                f"{sorted(report.codes())}"
            )
    return failures
