"""ASY rules: nothing blocks the event loop.

The front door (:mod:`repro.cluster.frontdoor`) multiplexes every
request over one asyncio loop; a single blocking call inside an ``async
def`` stalls all of them at once — coalescing windows stretch, watchdog
timers fire late, and tail latency explodes by exactly the blocked
duration.  Three rules:

- ``ASY001`` — known-blocking calls in async bodies: ``time.sleep``,
  synchronous subprocess waits, ``Thread``/``Process``/queue joins,
  queue ``get``/``put`` with a timeout, and nested-loop starters
  (``asyncio.run`` / ``run_until_complete``).  Offload them with
  ``await asyncio.sleep`` / ``loop.run_in_executor``;
- ``ASY002`` — synchronous file I/O (``open``) in async bodies: fine
  on a laptop, a stall on loaded NFS; offload or pre-open;
- ``ASY003`` — ``asyncio.get_event_loop()`` anywhere in the library:
  deprecated, thread-dependent, and a determinism hazard — inside a
  coroutine ``get_running_loop()`` is exact; outside one, the loop
  should be handed in.

Nested synchronous ``def``s inside a coroutine are *not* treated as
async bodies: they run when called, frequently via
``run_in_executor`` — exactly the blessed escape hatch.
"""

from __future__ import annotations

import ast

from repro.lint.base import ModuleContext, iter_with_qualname
from repro.lint.diagnostics import LintFinding, make_finding

__all__ = ["check_asynchrony"]

_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.wait",
        "os.waitpid",
        "asyncio.run",
    }
)

# Attribute spellings that block regardless of the receiver's type.
_BLOCKING_METHODS = frozenset({"run_until_complete"})


def _blocking_reason(
    context: ModuleContext, call: ast.Call
) -> tuple[str, str] | None:
    """(description, hint) when ``call`` is known-blocking, else None."""
    resolved = context.resolve(call.func)
    if resolved in _BLOCKING_CALLS:
        if resolved == "time.sleep":
            return (
                "time.sleep() blocks the event loop",
                "use `await asyncio.sleep(...)`",
            )
        if resolved == "asyncio.run":
            return (
                "asyncio.run() cannot nest inside a running loop",
                "await the coroutine directly",
            )
        return (
            f"{resolved}() blocks the event loop",
            "offload with `await loop.run_in_executor(None, ...)`",
        )
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method in _BLOCKING_METHODS:
            return (
                f".{method}() starts a nested blocking loop",
                "await the coroutine directly",
            )
        keywords = {kw.arg for kw in call.keywords}
        if method in ("get", "put") and "timeout" in keywords:
            return (
                f"synchronous queue .{method}(timeout=...) blocks the "
                "event loop",
                "offload with `await loop.run_in_executor(None, ...)` "
                "or use an asyncio.Queue",
            )
        if method == "join" and (not call.args or "timeout" in keywords):
            return (
                "thread/process .join() blocks the event loop",
                "offload with `await loop.run_in_executor(None, ...)`",
            )
    return None


def check_asynchrony(context: ModuleContext) -> list[LintFinding]:
    findings: list[LintFinding] = []
    config = context.config
    for node, _qualname, in_async in iter_with_qualname(context.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = context.resolve(node.func)
        if (
            config.wants("ASY003")
            and resolved == "asyncio.get_event_loop"
        ):
            findings.append(
                make_finding(
                    "ASY003",
                    context.module,
                    context.path,
                    node.lineno,
                    node.col_offset,
                    "asyncio.get_event_loop() is deprecated and "
                    "thread-dependent",
                    hint="use asyncio.get_running_loop() inside "
                    "coroutines, or accept the loop as a parameter",
                )
            )
        if not in_async:
            continue
        if config.wants("ASY001"):
            blocking = _blocking_reason(context, node)
            if blocking is not None:
                message, hint = blocking
                findings.append(
                    make_finding(
                        "ASY001",
                        context.module,
                        context.path,
                        node.lineno,
                        node.col_offset,
                        message,
                        hint=hint,
                    )
                )
        if config.wants("ASY002") and resolved == "open":
            findings.append(
                make_finding(
                    "ASY002",
                    context.module,
                    context.path,
                    node.lineno,
                    node.col_offset,
                    "synchronous open() inside an async function",
                    hint="offload file I/O with run_in_executor, or do "
                    "it before entering the async path",
                )
            )
    return findings
