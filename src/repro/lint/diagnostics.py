"""Finding records and the stable code catalog for ``repro-lint``.

The source analyzer mirrors the plan verifier's diagnostics model
(:mod:`repro.verify.diagnostics`): every finding is a stable code, a
severity, an anchor (here ``path:line:col`` instead of a plan-node
path), a message, and a fix hint.  Codes are API — the corpus self-test,
the CI gate, and suppression comments match on them — so they live in
one catalog and are never renumbered or reused.  ``docs/LINTING.md``
renders the same catalog for humans.

Rule families:

- ``DET`` — determinism: unseeded RNG, wall-clock reads in
  deterministic paths, unordered-set iteration;
- ``RC``  — race conditions: unlocked writes to lock-guarded shared
  state, lock-order cycles, non-reentrant self-deadlock;
- ``ASY`` — asyncio discipline: blocking calls and sync I/O on the
  event loop, deprecated loop acquisition;
- ``LED`` — ledger discipline: raw Eq. 3 cost/energy arithmetic outside
  the approved ledger helper modules;
- ``LINT`` — meta findings about the lint run itself (bad suppressions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.verify.diagnostics import Severity

__all__ = [
    "LINT_CATALOG",
    "LintFinding",
    "LintReport",
    "make_finding",
]


# code -> (severity, title) for every rule repro-lint implements.
# Stable: codes are never renumbered or reused for a different rule.
LINT_CATALOG: dict[str, tuple[Severity, str]] = {
    # Determinism
    "DET001": (Severity.ERROR, "unseeded random-number generation"),
    "DET002": (Severity.ERROR, "wall-clock read in a deterministic path"),
    "DET003": (Severity.WARNING, "order-sensitive iteration over an unordered set"),
    "DET004": (Severity.ERROR, "module-level RNG state in a deterministic module"),
    # Race conditions / locking discipline
    "RC001": (Severity.ERROR, "unlocked write to lock-guarded shared state"),
    "RC002": (Severity.ERROR, "lock-acquisition-order cycle between classes"),
    "RC003": (Severity.ERROR, "nested acquisition of a non-reentrant lock"),
    # Asyncio discipline
    "ASY001": (Severity.ERROR, "blocking call inside an async function"),
    "ASY002": (Severity.WARNING, "synchronous file I/O inside an async function"),
    "ASY003": (Severity.ERROR, "asyncio.get_event_loop in library code"),
    # Ledger discipline (Equation 3 auditability)
    "LED001": (Severity.ERROR, "ledger field mutated outside the approved ledger modules"),
    "LED002": (Severity.WARNING, "ad-hoc arithmetic over ledger quantities outside the approved ledger modules"),
    # Meta
    "LINT001": (Severity.WARNING, "suppression names an unknown lint code"),
}


@dataclass(frozen=True)
class LintFinding:
    """One source-level finding: stable code, severity, anchor, message.

    ``path``/``line``/``col`` anchor the finding in the file (1-based
    line, 0-based column, as in the CPython ``ast`` module); ``module``
    is the dotted module name the anchor lives in.
    """

    code: str
    severity: Severity
    module: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def format(self) -> str:
        line = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value.upper()} {self.code} {self.message}"
        )
        if self.hint:
            line += f" (hint: {self.hint})"
        return line

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


def make_finding(
    code: str,
    module: str,
    path: str,
    line: int,
    col: int,
    message: str,
    hint: str = "",
) -> LintFinding:
    """Build a finding with the catalog's severity for ``code``."""
    severity, _title = LINT_CATALOG[code]
    return LintFinding(
        code=code,
        severity=severity,
        module=module,
        path=path,
        line=line,
        col=col,
        message=message,
        hint=hint,
    )


@dataclass(frozen=True)
class LintReport:
    """The ordered findings of one lint run."""

    findings: tuple[LintFinding, ...] = field(default_factory=tuple)
    subject: str = "source"
    files: int = 0

    def __iter__(self) -> Iterator[LintFinding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """No ERROR-severity findings (warnings do not block)."""
        return not self.errors

    def codes(self) -> frozenset[str]:
        return frozenset(f.code for f in self.findings)

    def has(self, code: str) -> bool:
        return any(f.code == code for f in self.findings)

    def merged(self, other: "LintReport") -> "LintReport":
        return LintReport.from_findings(
            self.findings + other.findings,
            subject=self.subject,
            files=self.files + other.files,
        )

    def format(self) -> str:
        if not self.findings:
            return (
                f"{self.subject}: clean "
                f"({self.files} file(s), no findings)"
            )
        lines = [
            f"{self.subject}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) across {self.files} file(s)"
        ]
        lines.extend(f.format() for f in self.findings)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "files": self.files,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.as_dict() for f in self.findings],
        }

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[LintFinding],
        subject: str = "source",
        files: int = 0,
    ) -> "LintReport":
        ordered = sorted(
            findings, key=lambda f: (f.path, f.line, f.col, f.code)
        )
        return cls(findings=tuple(ordered), subject=subject, files=files)
