"""Per-line and per-file suppression comments for ``repro-lint``.

A finding is suppressed by a trailing comment on the flagged line::

    value = ad_hoc_cost * rows  # repro-lint: disable=LED002  <reason>

or for a whole file by a comment anywhere before the first statement::

    # repro-lint: disable-file=DET003  <reason>

Suppressions name specific codes — there is deliberately no blanket
``disable=all``: the point of stable codes is that every silenced rule
is visible and greppable, exactly like the verifier's.  A suppression
naming a code the catalog does not know fires ``LINT001`` so typos
cannot silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.diagnostics import LINT_CATALOG, LintFinding, make_finding

__all__ = ["Suppressions", "collect_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)(?:\s\s|#|$)"
)


@dataclass
class Suppressions:
    """The parsed suppression directives of one file."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()
    findings: tuple[LintFinding, ...] = ()

    def silences(self, code: str, line: int) -> bool:
        if code in self.file_wide:
            return True
        return code in self.by_line.get(line, frozenset())


def collect_suppressions(
    source: str, module: str, path: str
) -> Suppressions:
    """Parse every ``repro-lint:`` directive comment in ``source``."""
    by_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    findings: list[LintFinding] = []
    first_code_line = _first_statement_line(source)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:  # half-written file: nothing to parse
        comments = []
    for token in comments:
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        codes = {
            code.strip()
            for code in match.group("codes").split(",")
            if code.strip()
        }
        for code in sorted(codes):
            if code not in LINT_CATALOG:
                findings.append(
                    make_finding(
                        "LINT001",
                        module,
                        path,
                        line,
                        token.start[1],
                        f"suppression names unknown code {code!r}",
                        hint="see LINT_CATALOG / docs/LINTING.md for valid codes",
                    )
                )
        known = {code for code in codes if code in LINT_CATALOG}
        if match.group("scope") == "disable-file":
            if line < first_code_line:
                file_wide.update(known)
            else:
                findings.append(
                    make_finding(
                        "LINT001",
                        module,
                        path,
                        line,
                        token.start[1],
                        "disable-file directive must appear before the "
                        "first statement",
                        hint="move it into the file header, or use a "
                        "per-line disable",
                    )
                )
        else:
            by_line.setdefault(line, set()).update(known)
    return Suppressions(
        by_line={line: frozenset(codes) for line, codes in by_line.items()},
        file_wide=frozenset(file_wide),
        findings=tuple(findings),
    )


def _first_statement_line(source: str) -> int:
    """The line of the first real statement (docstring excluded).

    ``disable-file`` directives belong to the file header: anywhere up
    to the end of the module docstring, before code starts.
    """
    import ast

    try:
        tree = ast.parse(source)
    except SyntaxError:
        return 1
    body = tree.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if not body:
        return len(source.splitlines()) + 1
    return body[0].lineno
