"""``repro-lint``: a domain-aware static analyzer for this codebase.

The plan verifier (:mod:`repro.verify`) checks the *artifacts* the
system produces; this package checks the *source* that produces them.
Four rule families guard the invariants the serving stack's guarantees
rest on — seeded randomness and injectable clocks (``DET``), locking
discipline on shared state (``RC``), a non-blocking event loop
(``ASY``), and ledger-mediated Eq. 3 cost accounting (``LED``) — with
the same stable-error-code and corpus-self-test model the verifier
established.  ``repro lint-code`` is the CLI entry; ``docs/LINTING.md``
is the human-facing rule catalog.
"""

from repro.lint.base import DEFAULT_CONFIG, LintConfig, ModuleContext
from repro.lint.corpus import (
    LintCase,
    clean_cases,
    run_corpus,
    violation_cases,
)
from repro.lint.diagnostics import (
    LINT_CATALOG,
    LintFinding,
    LintReport,
    make_finding,
)
from repro.lint.engine import (
    ReproLinter,
    lint_paths,
    lint_repo,
    lint_source,
)

__all__ = [
    "DEFAULT_CONFIG",
    "LINT_CATALOG",
    "LintCase",
    "LintConfig",
    "LintFinding",
    "LintReport",
    "ModuleContext",
    "ReproLinter",
    "clean_cases",
    "lint_paths",
    "lint_repo",
    "lint_source",
    "make_finding",
    "run_corpus",
    "violation_cases",
]
