"""LED rules: every joule flows through the Eq. 3 ledger helpers.

The paper's cost conservation (Equation 3) is only auditable because
charges happen in a handful of places: the acquisition sources, the
fault injector's charge-before-dice accounting, the retry ledger, and
the admission controller's ``charge_shed``.  The verifier re-derives
Eq. 3 from those ledgers; a stray ``total += cost * rows`` in the
serving layer is a number the audit can never reconcile.

- ``LED001`` — a cost/energy/ledger-named field is *mutated with
  arithmetic* outside the approved ledger modules.  Storing a received
  value (``self._known_cost[k] = reply.cost``) is fine — it creates no
  new charge; computing one is not;
- ``LED002`` — an expression *combines two ledger quantities
  arithmetically* outside the approved modules: an ad-hoc re-derivation
  of an Eq. 3 quantity that should be a helper call (or should live in
  a ledger module) so the audit has one definition to trust.

Ledger-named means the identifier matches ``cost``/``energy``/
``ledger``/``charge``/``spent`` as a whole word between underscores.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import ModuleContext
from repro.lint.diagnostics import LintFinding, make_finding

__all__ = ["check_ledger", "is_ledger_name"]

_LEDGER_WORD = re.compile(
    r"(^|_)(cost|costs|energy|ledger|charge|charged|charges|spent)(_|$)"
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)


def is_ledger_name(name: str) -> bool:
    return bool(_LEDGER_WORD.search(name))


def _terminal_name(node: ast.AST) -> str | None:
    """The identifier a Name/Attribute/Subscript expression ends in."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_ledger_ref(node: ast.AST) -> bool:
    name = _terminal_name(node)
    return name is not None and is_ledger_name(name)


def _contains_arithmetic(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.BinOp)
        and isinstance(child.op, _ARITH_OPS)
        for child in ast.walk(node)
    )


def check_ledger(context: ModuleContext) -> list[LintFinding]:
    config = context.config
    if config.is_ledger_module(context.module):
        return []
    findings: list[LintFinding] = []
    flagged_mutations: set[int] = set()

    for node in ast.walk(context.tree):
        # LED001 — arithmetic mutation of a ledger-named target.
        if config.wants("LED001"):
            target: ast.AST | None = None
            computes = False
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, _ARITH_OPS
            ):
                target, computes = node.target, True
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                computes = _contains_arithmetic(node.value)
            if (
                target is not None
                and computes
                and _is_ledger_ref(target)
            ):
                name = _terminal_name(target)
                findings.append(
                    make_finding(
                        "LED001",
                        context.module,
                        context.path,
                        node.lineno,
                        node.col_offset,
                        f"ledger field {name!r} computed with raw "
                        f"arithmetic outside the ledger modules",
                        hint="route the charge through a ledger helper "
                        "(repro.faults / repro.cluster.admission / "
                        "repro.core.cost) so Eq. 3 stays auditable",
                    )
                )
                for child in ast.walk(node):
                    flagged_mutations.add(id(child))

    # LED002 — ad-hoc arithmetic combining two ledger quantities.
    if config.wants("LED002"):
        for node in ast.walk(context.tree):
            if id(node) in flagged_mutations:
                continue
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, _ARITH_OPS)
            ):
                continue
            if _is_ledger_ref(node.left) and _is_ledger_ref(node.right):
                left = _terminal_name(node.left)
                right = _terminal_name(node.right)
                findings.append(
                    make_finding(
                        "LED002",
                        context.module,
                        context.path,
                        node.lineno,
                        node.col_offset,
                        f"ad-hoc arithmetic combines ledger quantities "
                        f"{left!r} and {right!r}",
                        hint="call (or add) a helper in a ledger module "
                        "so the derivation is auditable in one place",
                    )
                )
    return findings
